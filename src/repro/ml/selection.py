"""Univariate feature selection (Section 4.2.3).

The paper selects the 5 best features "by a univariate test using a quick
linear model" for linear regression and decision trees, and the 60 best for
Bayesian ridge.  This module implements the univariate F-test scores for
regression (squared correlation converted to an F statistic, as sklearn's
``f_regression``) and classification (one-way ANOVA, as ``f_classif``),
plus a ``SelectKBest`` transformer that remembers its chosen columns so
train and test matrices stay aligned.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_X_y, check_array


def f_regression_scores(X, y) -> np.ndarray:
    """Per-feature F statistic of the simple linear fit feature -> target.

    Constant features (zero variance) receive a score of 0.
    """
    X, y = check_X_y(X, y)
    n = X.shape[0]
    if n < 3:
        raise ValueError("need at least 3 samples for an F statistic")
    Xc = X - X.mean(axis=0)
    yc = y - y.mean()
    x_norm = np.sqrt(np.sum(Xc**2, axis=0))
    y_norm = np.sqrt(np.sum(yc**2))
    with np.errstate(divide="ignore", invalid="ignore"):
        corr = (Xc.T @ yc) / (x_norm * y_norm)
    corr = np.nan_to_num(corr, nan=0.0, posinf=0.0, neginf=0.0)
    corr = np.clip(corr, -1.0, 1.0)
    r2 = corr**2
    # Guard against r2 == 1 (perfectly collinear feature): cap the statistic.
    denominator = np.maximum(1.0 - r2, 1e-12)
    return r2 / denominator * (n - 2)


def f_classif_scores(X, y) -> np.ndarray:
    """One-way ANOVA F statistic per feature for a categorical target."""
    X = check_array(X)
    y = np.asarray(y)
    if y.shape[0] != X.shape[0]:
        raise ValueError(f"X has {X.shape[0]} samples but y has {y.shape[0]}")
    classes = np.unique(y)
    if classes.size < 2:
        raise ValueError("need at least two classes")
    n = X.shape[0]
    overall_mean = X.mean(axis=0)
    between = np.zeros(X.shape[1])
    within = np.zeros(X.shape[1])
    for cls in classes:
        members = X[y == cls]
        class_mean = members.mean(axis=0)
        between += members.shape[0] * (class_mean - overall_mean) ** 2
        within += np.sum((members - class_mean) ** 2, axis=0)
    df_between = classes.size - 1
    df_within = n - classes.size
    if df_within <= 0:
        raise ValueError("not enough samples per class for ANOVA")
    with np.errstate(divide="ignore", invalid="ignore"):
        f = (between / df_between) / (within / df_within)
    return np.nan_to_num(f, nan=0.0, posinf=np.finfo(np.float64).max)


class SelectKBest(BaseEstimator):
    """Keep the ``k`` features with the highest univariate scores.

    Parameters
    ----------
    k:
        Number of columns to keep; clamped to the number of available
        features at fit time (the paper's top-5/top-60 selections are used
        on feature families of very different widths).
    score_func:
        ``f_regression_scores`` (default) or ``f_classif_scores``.
    """

    def __init__(self, k: int = 5, score_func=f_regression_scores) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.score_func = score_func
        self.scores_: np.ndarray | None = None
        self.selected_: np.ndarray | None = None

    def fit(self, X, y) -> "SelectKBest":
        X = check_array(X)
        self.scores_ = np.asarray(self.score_func(X, y), dtype=np.float64)
        if self.scores_.shape[0] != X.shape[1]:
            raise ValueError("score_func returned a misaligned score vector")
        k = min(self.k, X.shape[1])
        # argsort is stable, so ties resolve to the lower column index.
        order = np.argsort(-self.scores_, kind="stable")
        self.selected_ = np.sort(order[:k])
        self._fitted = True
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.scores_.shape[0]:
            raise ValueError(
                f"fitted on {self.scores_.shape[0]} features, got {X.shape[1]}"
            )
        return X[:, self.selected_]

    def fit_transform(self, X, y) -> np.ndarray:
        return self.fit(X, y).transform(X)
