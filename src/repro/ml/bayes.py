"""Bayesian ridge regression via evidence maximisation.

One of the four predictive methods of Section 4.2.3.  The model places a
zero-mean isotropic Gaussian prior with precision ``lambda`` on the weights
and Gaussian noise with precision ``alpha`` on the targets; both precisions
are re-estimated from the data with the MacKay fixed-point updates (the same
scheme scikit-learn's ``BayesianRidge`` uses, including the Gamma
hyper-priors ``alpha_1..lambda_2``).

The implementation works in the eigenbasis of ``X^T X`` so each iteration
costs one matrix-vector solve instead of a fresh inversion.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.exceptions import ConvergenceWarning
from repro.ml.base import BaseEstimator, RegressorMixin, check_X_y, check_array


class BayesianRidge(BaseEstimator, RegressorMixin):
    """Bayesian ridge with evidence-maximised hyper-parameters.

    Parameters
    ----------
    max_iter, tol:
        Fixed-point iteration budget and convergence threshold on the
        weight vector.
    alpha_1, alpha_2, lambda_1, lambda_2:
        Gamma hyper-prior parameters for the noise and weight precisions
        (sklearn-compatible defaults of 1e-6).
    fit_intercept:
        Centre the data and recover the intercept afterwards.
    """

    def __init__(
        self,
        max_iter: int = 300,
        tol: float = 1e-3,
        alpha_1: float = 1e-6,
        alpha_2: float = 1e-6,
        lambda_1: float = 1e-6,
        lambda_2: float = 1e-6,
        fit_intercept: bool = True,
    ) -> None:
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.max_iter = max_iter
        self.tol = tol
        self.alpha_1 = alpha_1
        self.alpha_2 = alpha_2
        self.lambda_1 = lambda_1
        self.lambda_2 = lambda_2
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.alpha_: float = 0.0
        self.lambda_: float = 0.0
        self.n_iter_: int = 0

    def fit(self, X, y) -> "BayesianRidge":
        X, y = check_X_y(X, y)
        n, p = X.shape
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(p)
            y_mean = 0.0
            Xc, yc = X, y

        # Eigendecompose the Gram matrix once; every iteration reuses it.
        gram = Xc.T @ Xc
        eigenvalues, eigenvectors = np.linalg.eigh(gram)
        eigenvalues = np.maximum(eigenvalues, 0.0)
        xty = Xc.T @ yc
        projected = eigenvectors.T @ xty

        y_var = float(np.var(yc))
        alpha = 1.0 / y_var if y_var > 0 else 1.0
        lam = 1.0

        coef = np.zeros(p)
        for iteration in range(1, self.max_iter + 1):
            # Posterior mean in the eigenbasis: (lam + alpha * eig)^-1 * alpha * proj
            denom = lam + alpha * eigenvalues
            coef_new = eigenvectors @ (alpha * projected / denom)
            # Effective number of well-determined parameters.
            gamma = float(np.sum(alpha * eigenvalues / denom))
            residual = yc - Xc @ coef_new
            sse = float(residual @ residual)
            coef_norm = float(coef_new @ coef_new)
            lam = (gamma + 2.0 * self.lambda_1) / (coef_norm + 2.0 * self.lambda_2)
            alpha = (n - gamma + 2.0 * self.alpha_1) / (sse + 2.0 * self.alpha_2)
            if np.sum(np.abs(coef_new - coef)) < self.tol:
                coef = coef_new
                self.n_iter_ = iteration
                break
            coef = coef_new
        else:
            self.n_iter_ = self.max_iter
            warnings.warn(
                f"BayesianRidge did not converge in {self.max_iter} iterations",
                ConvergenceWarning,
                stacklevel=2,
            )

        self.coef_ = coef
        self.intercept_ = float(y_mean - x_mean @ coef)
        self.alpha_ = float(alpha)
        self.lambda_ = float(lam)
        # Posterior covariance in factored form for predictive std:
        # Sigma = V diag(1 / (lambda + alpha * eig)) V^T.
        self._x_mean = x_mean
        self._sigma_basis = eigenvectors
        self._sigma_diag = 1.0 / (lam + alpha * eigenvalues)
        self._fitted = True
        return self

    def predict(self, X, return_std: bool = False):
        """Predictive mean, optionally with the predictive standard deviation
        ``sqrt(1/alpha + x^T Sigma x)`` per sample."""
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"fitted on {self.coef_.shape[0]} features, got {X.shape[1]}"
            )
        mean = X @ self.coef_ + self.intercept_
        if not return_std:
            return mean
        centred = X - self._x_mean
        projected = centred @ self._sigma_basis
        variance = 1.0 / self.alpha_ + np.sum(projected**2 * self._sigma_diag, axis=1)
        return mean, np.sqrt(variance)
