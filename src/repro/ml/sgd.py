"""Stochastic-gradient-descent linear models (the paper's other omitted
baseline, Section 4.2.3).

:class:`SGDRegressor` minimises squared loss with L2 penalty via mini-batch
SGD with an inverse-scaling learning rate; :class:`SGDClassifier` does the
same for log loss.  Both match the spirit of scikit-learn's SGD estimators
at the evaluation's scale and exist so the appendix bench can demonstrate
why the paper omitted them (unstable on small, wide feature matrices).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_X_y,
    check_array,
)
from repro.ml.logistic import _sigmoid


class _BaseSGD(BaseEstimator):
    def __init__(
        self,
        alpha: float = 1e-4,
        learning_rate: float = 0.01,
        power_t: float = 0.25,
        max_iter: int = 50,
        batch_size: int = 32,
        random_state: int | None = None,
    ) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.alpha = alpha
        self.learning_rate = learning_rate
        self.power_t = power_t
        self.max_iter = max_iter
        self.batch_size = batch_size
        self.random_state = random_state
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def _loss_gradient(self, Xb, yb, w, b):
        raise NotImplementedError

    def _run_sgd(self, X: np.ndarray, y: np.ndarray) -> None:
        n, p = X.shape
        rng = np.random.default_rng(self.random_state)
        w = np.zeros(p)
        b = 0.0
        step = 0
        for _ in range(self.max_iter):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start: start + self.batch_size]
                grad_w, grad_b = self._loss_gradient(X[batch], y[batch], w, b)
                grad_w = grad_w + self.alpha * w
                step += 1
                eta = self.learning_rate / step**self.power_t
                w -= eta * grad_w
                b -= eta * grad_b
        self.coef_ = w
        self.intercept_ = float(b)

    def _raw_predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"fitted on {self.coef_.shape[0]} features, got {X.shape[1]}"
            )
        return X @ self.coef_ + self.intercept_


class SGDRegressor(_BaseSGD, RegressorMixin):
    """Mini-batch SGD on squared loss with L2 penalty."""

    def _loss_gradient(self, Xb, yb, w, b):
        residual = Xb @ w + b - yb
        grad_w = Xb.T @ residual / len(yb)
        grad_b = float(residual.mean())
        return grad_w, grad_b

    def fit(self, X, y) -> "SGDRegressor":
        X, y = check_X_y(X, y)
        self._run_sgd(X, y)
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        return self._raw_predict(X)


class SGDClassifier(_BaseSGD, ClassifierMixin):
    """Mini-batch SGD on binary log loss with L2 penalty."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.classes_: np.ndarray | None = None

    def _loss_gradient(self, Xb, yb, w, b):
        probability = _sigmoid(Xb @ w + b)
        error = probability - yb
        grad_w = Xb.T @ error / len(yb)
        grad_b = float(error.mean())
        return grad_w, grad_b

    def fit(self, X, y) -> "SGDClassifier":
        X = check_array(X)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        if self.classes_.size != 2:
            raise ValueError(f"binary classifier got {self.classes_.size} classes")
        target = (y == self.classes_[1]).astype(np.float64)
        self._run_sgd(X, target)
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        positive = _sigmoid(self._raw_predict(X))
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        positive = self._raw_predict(X) >= 0.0
        return np.where(positive, self.classes_[1], self.classes_[0])
