"""Random forests by bagging the CART trees of :mod:`repro.ml.tree`.

The paper's strongest rank-prediction method (Section 4.2.3, Figure 3,
Table 1) is a random forest with 300 trees whose impurity importances drive
the discriminative-subgraph analysis of Figure 4.

Each tree trains on a bootstrap sample and considers a random feature
subset at every split (``max_features``).  Defaults follow the era's
scikit-learn: regressors consider all features, classifiers ``sqrt``.  The
experiment pipelines pass ``max_features="sqrt"`` for regressors too when
the subgraph vocabularies are large; that choice is recorded per experiment.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_X_y,
    check_array,
)
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


class _BaseForest(BaseEstimator):
    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        bootstrap: bool = True,
        random_state: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.estimators_: list = []
        self.feature_importances_: np.ndarray | None = None

    def _make_tree(self, seed: int):
        raise NotImplementedError

    def _fit_forest(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]
        self.estimators_ = []
        importances = np.zeros(X.shape[1])
        for _ in range(self.n_estimators):
            seed = int(rng.integers(0, 2**31 - 1))
            tree = self._make_tree(seed)
            if self.bootstrap:
                sample = rng.integers(0, n, size=n)
            else:
                sample = np.arange(n)
            tree.fit(X[sample], y[sample])
            self.estimators_.append(tree)
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances


class RandomForestRegressor(_BaseForest, RegressorMixin):
    """Bagged CART regressors; prediction is the mean over trees."""

    def _make_tree(self, seed: int) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=seed,
        )

    def fit(self, X, y) -> "RandomForestRegressor":
        X, y = check_X_y(X, y)
        self._fit_forest(X, y)
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        predictions = np.stack([tree.predict(X) for tree in self.estimators_])
        return predictions.mean(axis=0)


class RandomForestClassifier(_BaseForest, ClassifierMixin):
    """Bagged CART classifiers; prediction averages class probabilities.

    Trees may see different bootstrap class subsets, so probabilities are
    re-aligned to the forest-level ``classes_`` before averaging.
    """

    def __init__(self, max_features="sqrt", **kwargs) -> None:
        super().__init__(max_features=max_features, **kwargs)
        self.classes_: np.ndarray | None = None

    def _make_tree(self, seed: int) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=seed,
        )

    def fit(self, X, y) -> "RandomForestClassifier":
        X = check_array(X)
        y = np.asarray(y)
        if y.shape[0] != X.shape[0]:
            raise ValueError(f"X has {X.shape[0]} samples but y has {y.shape[0]}")
        self.classes_ = np.unique(y)
        self._fit_forest(X, y)
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        total = np.zeros((X.shape[0], self.classes_.size))
        class_index = {c: i for i, c in enumerate(self.classes_)}
        for tree in self.estimators_:
            probabilities = tree.predict_proba(X)
            columns = [class_index[c] for c in tree.classes_]
            total[:, columns] += probabilities
        return total / len(self.estimators_)

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]
