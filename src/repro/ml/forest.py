"""Random forests by bagging the CART trees of :mod:`repro.ml.tree`.

The paper's strongest rank-prediction method (Section 4.2.3, Figure 3,
Table 1) is a random forest with 300 trees whose impurity importances drive
the discriminative-subgraph analysis of Figure 4.

Each tree trains on a bootstrap sample and considers a random feature
subset at every split (``max_features``).  Defaults follow the era's
scikit-learn: regressors consider all features, classifiers ``sqrt``.  The
experiment pipelines pass ``max_features="sqrt"`` for regressors too when
the subgraph vocabularies are large; that choice is recorded per experiment.

Engines and parallelism
-----------------------
``engine="fast"`` (default) grows all trees level-synchronously through
:mod:`repro.ml.tree_batched`, amortising numpy dispatch across every
same-depth node of the whole forest; ``engine="reference"`` fits each tree
with the plain per-node builder.  Both produce bit-identical estimators.

``n_jobs`` fans tree chunks over a ``ProcessPoolExecutor`` whose
initializer ships ``X, y`` once per worker (the ``_WORKER_STATE`` pattern
of :mod:`repro.core.features`).  Per-tree RNG seeds — one for the split
sampler, one for the bootstrap — are pre-drawn from the sequential stream
of ``random_state`` *before* any fanning, so every worker count (and both
engines) yields exactly the trees that ``n_jobs=1`` would have grown:
predictions and ``feature_importances_`` are bit-identical.  Worker
:class:`~repro.obs.telemetry.Telemetry` snapshots merge back into the
parent registry.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_X_y,
    check_array,
)
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.ml.tree_batched import fit_tree_batch
from repro.obs.telemetry import Telemetry, get_telemetry
from repro.runtime.context import (  # noqa: F401  (resolve_n_jobs re-exported)
    RunContext,
    resolve_n_jobs,
)

ENGINES = ("fast", "reference")


def _draw_tree_tasks(
    random_state: int | None, n_estimators: int
) -> list[tuple[int, int]]:
    """Pre-draw every tree's (split seed, bootstrap seed) sequentially.

    This is the PR 2 rng-sharding pattern: the sequential stream is
    consumed up front, so any partition of the task list across workers
    reproduces the ``n_jobs=1`` forest exactly.
    """
    rng = np.random.default_rng(random_state)
    tasks = []
    for _ in range(n_estimators):
        seed = int(rng.integers(0, 2**31 - 1))
        boot_seed = int(rng.integers(0, 2**31 - 1))
        tasks.append((seed, boot_seed))
    return tasks


def _bootstrap_sample(boot_seed: int, n: int, bootstrap: bool) -> np.ndarray:
    if not bootstrap:
        return np.arange(n)
    return np.random.default_rng(boot_seed).integers(0, n, size=n)


def _fit_tree_tasks(
    X: np.ndarray, y: np.ndarray, spec: dict, tasks: list[tuple[int, int]]
) -> list:
    """Fit the trees for ``tasks`` with the configured engine, in order."""
    n = X.shape[0]
    samples = [
        (seed, _bootstrap_sample(boot_seed, n, spec["bootstrap"]))
        for seed, boot_seed in tasks
    ]
    params = spec["params"]
    classes = spec["classes"]
    if spec["engine"] == "fast":
        if classes is not None:
            y_fit = np.searchsorted(classes, y).astype(np.float64)
            return fit_tree_batch(
                X, y_fit, DecisionTreeClassifier, params, samples, classes=classes
            )
        return fit_tree_batch(X, y, DecisionTreeRegressor, params, samples)
    tree_cls = DecisionTreeClassifier if classes is not None else DecisionTreeRegressor
    trees = []
    for seed, sample in samples:
        tree = tree_cls(**params, random_state=seed)
        tree.fit(X[sample], y[sample])
        trees.append(tree)
    return trees


# Worker-process state: the training matrix and fit spec are shipped once
# per worker via the pool initializer instead of once per chunk.
_WORKER_STATE: dict = {}


def _init_forest_worker(X: np.ndarray, y: np.ndarray, spec: dict) -> None:
    _WORKER_STATE["X"] = X
    _WORKER_STATE["y"] = y
    _WORKER_STATE["spec"] = spec


def _forest_chunk_worker(tasks: list[tuple[int, int]]) -> tuple[list, dict]:
    """Fit one chunk of trees; ship them back plus worker telemetry."""
    telemetry = Telemetry()
    with telemetry.span("forest/chunk"):
        trees = _fit_tree_tasks(
            _WORKER_STATE["X"], _WORKER_STATE["y"], _WORKER_STATE["spec"], tasks
        )
        telemetry.count("forest/trees_fit", len(tasks))
    return trees, telemetry.snapshot()


class _BaseForest(BaseEstimator):
    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        bootstrap: bool = True,
        random_state: int | None = None,
        n_jobs: int | None = 1,
        engine: str | None = None,
        ctx: RunContext | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        ctx = RunContext.ensure(ctx, engine=engine)
        engine = ctx.resolve_engine(ENGINES, default="fast", param="forest engine")
        if ctx.n_jobs is not None and n_jobs == 1:
            n_jobs = ctx.n_jobs
        resolve_n_jobs(n_jobs)  # fail fast on a bad spec; resolved again at fit
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.n_jobs = n_jobs
        self.engine = engine
        self.estimators_: list = []
        self.feature_importances_: np.ndarray | None = None

    def _tree_params(self) -> dict:
        return {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
        }

    def _fit_spec(self) -> dict:
        return {
            "params": self._tree_params(),
            "engine": self.engine,
            "bootstrap": self.bootstrap,
            "classes": getattr(self, "classes_", None),
        }

    def _fit_forest(self, X: np.ndarray, y: np.ndarray) -> None:
        telemetry = get_telemetry()
        n_jobs = resolve_n_jobs(self.n_jobs)
        tasks = _draw_tree_tasks(self.random_state, self.n_estimators)
        spec = self._fit_spec()
        telemetry.annotate("forest/engine", self.engine)
        telemetry.count("forest/trees", self.n_estimators)
        with telemetry.span("forest/fit"):
            if n_jobs == 1 or self.n_estimators < 2 * n_jobs:
                trees = _fit_tree_tasks(X, y, spec, tasks)
            else:
                chunksize = -(-len(tasks) // n_jobs)  # ceil: one chunk per worker
                chunks = [
                    tasks[start : start + chunksize]
                    for start in range(0, len(tasks), chunksize)
                ]
                trees = []
                with ProcessPoolExecutor(
                    max_workers=n_jobs,
                    initializer=_init_forest_worker,
                    initargs=(X, y, spec),
                ) as pool:
                    for chunk_trees, snapshot in pool.map(
                        _forest_chunk_worker, chunks
                    ):
                        trees.extend(chunk_trees)
                        telemetry.merge(snapshot)
        self.estimators_ = trees
        importances = np.zeros(X.shape[1])
        for tree in trees:  # tree order, so any n_jobs sums identically
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances


class RandomForestRegressor(_BaseForest, RegressorMixin):
    """Bagged CART regressors; prediction is the mean over trees."""

    def fit(self, X, y) -> "RandomForestRegressor":
        X, y = check_X_y(X, y)
        self._fit_forest(X, y)
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        predictions = np.stack([tree.predict(X) for tree in self.estimators_])
        return predictions.mean(axis=0)


class RandomForestClassifier(_BaseForest, ClassifierMixin):
    """Bagged CART classifiers; prediction averages class probabilities.

    Trees may see different bootstrap class subsets (reference engine
    derives per-tree class axes; the batched engine fits on the forest
    axis directly), so probabilities are re-aligned to the forest-level
    ``classes_`` before averaging — the two layouts average identically.
    """

    def __init__(self, max_features="sqrt", **kwargs) -> None:
        super().__init__(max_features=max_features, **kwargs)
        self.classes_: np.ndarray | None = None

    def fit(self, X, y) -> "RandomForestClassifier":
        X = check_array(X)
        y = np.asarray(y)
        if y.shape[0] != X.shape[0]:
            raise ValueError(f"X has {X.shape[0]} samples but y has {y.shape[0]}")
        self.classes_ = np.unique(y)
        self._fit_forest(X, y)
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        total = np.zeros((X.shape[0], self.classes_.size))
        class_index = {c: i for i, c in enumerate(self.classes_)}
        for tree in self.estimators_:
            probabilities = tree.predict_proba(X)
            columns = [class_index[c] for c in tree.classes_]
            total[:, columns] += probabilities
        return total / len(self.estimators_)

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]
