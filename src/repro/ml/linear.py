"""Ordinary least squares and ridge regression.

``LinearRegression`` matches the sklearn default used in Section 4.2.3
(plain OLS via a least-squares solve with an intercept).  ``Ridge`` adds an
L2 penalty and is used internally by feature-selection smoke tests and the
Bayesian ridge sanity checks.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, RegressorMixin, check_X_y, check_array


class LinearRegression(BaseEstimator, RegressorMixin):
    """Ordinary least squares with an intercept.

    Solves ``min ||y - Xw - b||^2`` via ``numpy.linalg.lstsq`` on centred
    data, which is robust to rank-deficient feature matrices (the top-5
    selected features can be collinear on small conferences).
    """

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "LinearRegression":
        X, y = check_X_y(X, y)
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = y.mean()
            coef, *_ = np.linalg.lstsq(X - x_mean, y - y_mean, rcond=None)
            self.coef_ = coef
            self.intercept_ = float(y_mean - x_mean @ coef)
        else:
            coef, *_ = np.linalg.lstsq(X, y, rcond=None)
            self.coef_ = coef
            self.intercept_ = 0.0
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"fitted on {self.coef_.shape[0]} features, got {X.shape[1]}"
            )
        return X @ self.coef_ + self.intercept_


class Ridge(BaseEstimator, RegressorMixin):
    """L2-regularised least squares, intercept unpenalised.

    Solves ``(X^T X + alpha I) w = X^T y`` on centred data.
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "Ridge":
        X, y = check_X_y(X, y)
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = y.mean()
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            Xc, yc = X, y
        gram = Xc.T @ Xc
        gram[np.diag_indices_from(gram)] += self.alpha
        try:
            coef = np.linalg.solve(gram, Xc.T @ yc)
        except np.linalg.LinAlgError:
            coef, *_ = np.linalg.lstsq(gram, Xc.T @ yc, rcond=None)
        self.coef_ = coef
        self.intercept_ = float(y_mean - x_mean @ coef)
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"fitted on {self.coef_.shape[0]} features, got {X.shape[1]}"
            )
        return X @ self.coef_ + self.intercept_
