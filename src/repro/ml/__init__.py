"""From-scratch machine-learning substrate.

Implements the estimators, selection, and metrics the paper's evaluation
uses through scikit-learn (which is unavailable in this environment):
linear regression, Bayesian ridge, CART trees, random forests, L2 logistic
regression (one-vs-rest), univariate feature selection, NDCG and macro-F1.
"""

from repro.ml.base import BaseEstimator, check_array, check_X_y
from repro.ml.bayes import BayesianRidge
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.linear import LinearRegression, Ridge
from repro.ml.logistic import (
    LogisticRegression,
    OneVsRestLogisticRegression,
    tune_regularization,
)
from repro.ml.metrics import (
    accuracy,
    micro_f1,
    confusion_matrix,
    dcg,
    macro_f1,
    mean_absolute_error,
    mean_squared_error,
    ndcg_at,
    per_node_f1,
    precision_recall_f1,
    r2_score,
)
from repro.ml.preprocessing import (
    StandardScaler,
    kfold_indices,
    log1p_counts,
    train_test_split,
)
from repro.ml.selection import SelectKBest, f_classif_scores, f_regression_scores
from repro.ml.sgd import SGDClassifier, SGDRegressor
from repro.ml.svm import LinearSVC, LinearSVR
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "BaseEstimator",
    "BayesianRidge",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "LinearRegression",
    "LinearSVC",
    "LinearSVR",
    "SGDClassifier",
    "SGDRegressor",
    "LogisticRegression",
    "OneVsRestLogisticRegression",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "Ridge",
    "SelectKBest",
    "StandardScaler",
    "accuracy",
    "check_X_y",
    "check_array",
    "confusion_matrix",
    "dcg",
    "f_classif_scores",
    "f_regression_scores",
    "kfold_indices",
    "log1p_counts",
    "macro_f1",
    "mean_absolute_error",
    "mean_squared_error",
    "micro_f1",
    "ndcg_at",
    "per_node_f1",
    "precision_recall_f1",
    "r2_score",
    "train_test_split",
    "tune_regularization",
]
