"""L2-regularised logistic regression with a one-vs-rest multiclass wrapper.

Section 4.3.3 trains one binary logistic classifier per label ("one vs all")
and predicts the label with the highest probability score, tuning only the
regularisation strength.  The binary model here minimises the standard
penalised negative log-likelihood with L-BFGS (via scipy), with analytic
gradients; :class:`OneVsRestLogisticRegression` replicates the paper's
multiclass scheme, and :func:`tune_regularization` the strength search.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.ml.base import BaseEstimator, ClassifierMixin, check_array
from repro.ml.preprocessing import train_test_split


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Numerically stable logistic function.
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """Binary logistic regression with L2 penalty.

    Parameters
    ----------
    C:
        Inverse regularisation strength (sklearn convention: smaller is
        stronger).  The intercept is not penalised.
    max_iter:
        L-BFGS iteration cap.
    """

    def __init__(self, C: float = 1.0, max_iter: int = 200) -> None:
        if C <= 0:
            raise ValueError(f"C must be > 0, got {C}")
        self.C = C
        self.max_iter = max_iter
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.classes_: np.ndarray | None = None

    def fit(self, X, y) -> "LogisticRegression":
        X = check_array(X)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        if self.classes_.size != 2:
            raise ValueError(
                f"binary classifier got {self.classes_.size} classes; "
                "use OneVsRestLogisticRegression for multiclass"
            )
        # Map to {0, 1} with classes_[1] as the positive class.
        target = (y == self.classes_[1]).astype(np.float64)
        n, p = X.shape
        penalty = 1.0 / self.C

        def objective(params: np.ndarray) -> tuple[float, np.ndarray]:
            w, b = params[:p], params[p]
            z = X @ w + b
            # log(1 + exp(-|z|)) formulation avoids overflow.
            log_likelihood = np.sum(
                np.where(target == 1.0, -np.logaddexp(0.0, -z), -np.logaddexp(0.0, z))
            )
            loss = -log_likelihood + 0.5 * penalty * (w @ w)
            probability = _sigmoid(z)
            grad_w = X.T @ (probability - target) + penalty * w
            grad_b = float(np.sum(probability - target))
            return loss, np.concatenate([grad_w, [grad_b]])

        start = np.zeros(p + 1)
        result = minimize(
            objective,
            start,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.coef_ = result.x[:p]
        self.intercept_ = float(result.x[p])
        self._fitted = True
        return self

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"fitted on {self.coef_.shape[0]} features, got {X.shape[1]}"
            )
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Probabilities for ``classes_[0]`` and ``classes_[1]`` per row."""
        positive = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        positive = _sigmoid(self.decision_function(X)) >= 0.5
        return np.where(positive, self.classes_[1], self.classes_[0])


class OneVsRestLogisticRegression(BaseEstimator, ClassifierMixin):
    """One classifier per label; predicts the label with the highest score.

    This is exactly the setup of Section 4.3.3: "we train classifiers in a
    one vs. all setting ... for prediction, we then select the label with
    the highest probability score".
    """

    def __init__(self, C: float = 1.0, max_iter: int = 200) -> None:
        self.C = C
        self.max_iter = max_iter
        self.classes_: np.ndarray | None = None
        self.estimators_: list[LogisticRegression] = []

    def fit(self, X, y) -> "OneVsRestLogisticRegression":
        X = check_array(X)
        y = np.asarray(y)
        if y.shape[0] != X.shape[0]:
            raise ValueError(f"X has {X.shape[0]} samples but y has {y.shape[0]}")
        self.classes_ = np.unique(y)
        if self.classes_.size < 2:
            raise ValueError("need at least two classes")
        self.estimators_ = []
        for cls in self.classes_:
            binary = LogisticRegression(C=self.C, max_iter=self.max_iter)
            binary.fit(X, (y == cls).astype(np.int64))
            self.estimators_.append(binary)
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Per-class probability scores, normalised across classes."""
        self._check_fitted()
        scores = np.column_stack(
            [est.predict_proba(X)[:, 1] for est in self.estimators_]
        )
        totals = scores.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return scores / totals

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        scores = np.column_stack(
            [est.predict_proba(X)[:, 1] for est in self.estimators_]
        )
        return self.classes_[np.argmax(scores, axis=1)]


def tune_regularization(
    X,
    y,
    grid=(0.01, 0.1, 1.0, 10.0, 100.0),
    validation_size: float = 0.25,
    rng=0,
    max_iter: int = 200,
) -> "OneVsRestLogisticRegression":
    """Pick ``C`` on a held-out validation split and refit on all data.

    Mirrors the paper's "we tune the regularization strength" without
    specifying the search; a small multiplicative grid with a single
    validation split keeps it deterministic and cheap.
    """
    X, y = check_array(X), np.asarray(y)
    X_train, X_val, y_train, y_val = train_test_split(
        X, y, test_size=validation_size, rng=rng, stratify=y
    )
    best_c, best_score = None, -np.inf
    for c in grid:
        model = OneVsRestLogisticRegression(C=c, max_iter=max_iter)
        model.fit(X_train, y_train)
        score = model.score(X_val, y_val)
        if score > best_score:
            best_c, best_score = c, score
    final = OneVsRestLogisticRegression(C=best_c, max_iter=max_iter)
    final.fit(X, y)
    return final
