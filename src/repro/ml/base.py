"""Shared estimator plumbing for the from-scratch ML substrate.

The paper evaluates with default-configured scikit-learn models; sklearn is
not available here, so :mod:`repro.ml` reimplements the needed estimators on
numpy.  This module holds the conventions they share: a scikit-like
``fit`` / ``predict`` surface, input validation, and the fitted-state check.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError


def check_array(X, name: str = "X", min_samples: int = 1) -> np.ndarray:
    """Coerce to a 2-D float array and validate shape and finiteness.

    Sparse inputs (anything exposing ``toarray``, e.g.
    :class:`repro.core.sparse.CSRMatrix`) are densified here — the single
    model boundary — so estimators stay plain-numpy while the experiment
    pipelines pass sparse matrices around freely.
    """
    if hasattr(X, "toarray"):
        X = X.toarray()
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {X.shape}")
    if X.shape[0] < min_samples:
        raise ValueError(f"{name} needs at least {min_samples} samples, got {X.shape[0]}")
    if X.shape[1] == 0:
        raise ValueError(f"{name} has no features")
    if not np.all(np.isfinite(X)):
        raise ValueError(f"{name} contains NaN or infinity")
    return X


def check_X_y(X, y, classification: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix together with its target vector."""
    X = check_array(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-dimensional, got shape {y.shape}")
    if y.shape[0] != X.shape[0]:
        raise ValueError(f"X has {X.shape[0]} samples but y has {y.shape[0]}")
    if not classification:
        y = y.astype(np.float64)
        if not np.all(np.isfinite(y)):
            raise ValueError("y contains NaN or infinity")
    return X, y


class BaseEstimator:
    """Minimal scikit-style estimator base.

    Subclasses set ``self._fitted = True`` at the end of ``fit`` and call
    :meth:`_check_fitted` at the top of ``predict``.
    """

    _fitted: bool = False

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} is not fitted; call fit(X, y) first"
            )

    def get_params(self) -> dict:
        """Public constructor-style parameters (non-underscore attributes
        that are not fit artefacts)."""
        return {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_") and not key.endswith("_")
        }

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"


class RegressorMixin:
    """Adds the R^2 ``score`` used as a generic regression quality check."""

    def score(self, X, y) -> float:
        from repro.ml.metrics import r2_score

        return r2_score(y, self.predict(X))


class ClassifierMixin:
    """Adds accuracy ``score`` for classifiers."""

    def score(self, X, y) -> float:
        from repro.ml.metrics import accuracy

        return accuracy(y, self.predict(X))
