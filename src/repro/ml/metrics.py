"""Evaluation metrics of the paper plus standard regression diagnostics.

Two metrics carry the evaluation:

* :func:`ndcg_at` — normalised discounted cumulative gain at top-n (Eq. 6),
  used for the institution rank-prediction task of Section 4.2 with n=20;
* :func:`macro_f1` — macro-averaged F1 (Eq. 7), used for the label
  prediction task of Section 4.3.

On macro-F1: the paper's Eq. 7 literally averages per-*node* F1 scores, but
for single-label nodes a per-node F1 is 1 when the prediction is correct and
0 otherwise, which collapses to accuracy.  The reference evaluations the
paper aligns itself with (DeepWalk, node2vec) macro-average per *class*, so
this module implements the per-class definition and exposes the literal
per-node form as :func:`per_node_f1` for completeness.
"""

from __future__ import annotations

import numpy as np


# ---------------------------------------------------------------------------
# Ranking
# ---------------------------------------------------------------------------
def dcg(relevances: np.ndarray) -> float:
    """Discounted cumulative gain of relevances in ranked order."""
    relevances = np.asarray(relevances, dtype=np.float64)
    if relevances.size == 0:
        return 0.0
    discounts = np.log2(np.arange(2, relevances.size + 2))
    return float(np.sum(relevances / discounts))


def ndcg_at(true_relevance, predicted_scores, n: int = 20) -> float:
    """NDCG at top-``n`` (Eq. 6).

    Parameters
    ----------
    true_relevance:
        Ground-truth relevance per item.
    predicted_scores:
        Model scores per item; only their induced ranking matters.
    n:
        Cut-off; the paper evaluates at 20.

    Returns
    -------
    float in [0, 1]; 1 corresponds to a perfect top-``n`` ranking.  When all
    true relevances are zero the metric is defined as 1 (nothing to rank).
    """
    true_relevance = np.asarray(true_relevance, dtype=np.float64)
    predicted_scores = np.asarray(predicted_scores, dtype=np.float64)
    if true_relevance.shape != predicted_scores.shape:
        raise ValueError(
            f"shape mismatch: {true_relevance.shape} vs {predicted_scores.shape}"
        )
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    # Stable sort on negated scores: ties keep input order, deterministic.
    predicted_order = np.argsort(-predicted_scores, kind="stable")[:n]
    ideal_order = np.argsort(-true_relevance, kind="stable")[:n]
    ideal = dcg(true_relevance[ideal_order])
    if ideal == 0.0:
        return 1.0
    return dcg(true_relevance[predicted_order]) / ideal


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------
def _as_labels(y_true, y_pred) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError(
            f"label arrays must be 1-D and equal length, got {y_true.shape} vs {y_pred.shape}"
        )
    classes = np.unique(np.concatenate([y_true, y_pred]))
    return y_true, y_pred, classes


def accuracy(y_true, y_pred) -> float:
    """Fraction of exactly correct predictions."""
    y_true, y_pred, _ = _as_labels(y_true, y_pred)
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return float(np.mean(y_true == y_pred))


def precision_recall_f1(y_true, y_pred, positive) -> tuple[float, float, float]:
    """Precision, recall and F1 of one class (zero when undefined)."""
    y_true, y_pred, _ = _as_labels(y_true, y_pred)
    true_positive = np.sum((y_pred == positive) & (y_true == positive))
    predicted_positive = np.sum(y_pred == positive)
    actual_positive = np.sum(y_true == positive)
    precision = true_positive / predicted_positive if predicted_positive else 0.0
    recall = true_positive / actual_positive if actual_positive else 0.0
    if precision + recall == 0.0:
        return float(precision), float(recall), 0.0
    f1 = 2.0 * precision * recall / (precision + recall)
    return float(precision), float(recall), float(f1)


def macro_f1(y_true, y_pred) -> float:
    """Macro-averaged F1: unweighted mean of per-class F1 scores.

    Classes are the union of true and predicted labels, so a class that the
    model invents (predicts but never occurs) drags the average down, as in
    the reference implementations.
    """
    y_true, y_pred, classes = _as_labels(y_true, y_pred)
    if classes.size == 0:
        raise ValueError("empty label arrays")
    scores = [precision_recall_f1(y_true, y_pred, c)[2] for c in classes]
    return float(np.mean(scores))


def micro_f1(y_true, y_pred) -> float:
    """Micro-averaged F1 over classes.

    With exactly one true and one predicted label per node, micro-F1
    equals accuracy; provided for parity with the embedding papers'
    reporting, which include both averages.
    """
    y_true, y_pred, classes = _as_labels(y_true, y_pred)
    if classes.size == 0:
        raise ValueError("empty label arrays")
    true_positive = predicted = actual = 0
    for cls in classes:
        true_positive += np.sum((y_pred == cls) & (y_true == cls))
        predicted += np.sum(y_pred == cls)
        actual += np.sum(y_true == cls)
    precision = true_positive / predicted if predicted else 0.0
    recall = true_positive / actual if actual else 0.0
    if precision + recall == 0.0:
        return 0.0
    return float(2.0 * precision * recall / (precision + recall))


def per_node_f1(y_true, y_pred) -> float:
    """The literal per-node average of Eq. 7.

    With exactly one true and one predicted label per node this equals
    accuracy; kept to document the equivalence (see module docstring).
    """
    return accuracy(y_true, y_pred)


def confusion_matrix(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(classes, matrix)``; ``matrix[i, j]`` counts true class ``i``
    predicted as class ``j``."""
    y_true, y_pred, classes = _as_labels(y_true, y_pred)
    index = {c: i for i, c in enumerate(classes)}
    matrix = np.zeros((classes.size, classes.size), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return classes, matrix


# ---------------------------------------------------------------------------
# Regression
# ---------------------------------------------------------------------------
def mean_squared_error(y_true, y_pred) -> float:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    return float(np.mean((y_true - y_pred) ** 2))


def mean_absolute_error(y_true, y_pred) -> float:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination; 0 for a constant true signal predicted
    exactly, like sklearn's convention negative values are possible."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    residual = np.sum((y_true - y_pred) ** 2)
    total = np.sum((y_true - np.mean(y_true)) ** 2)
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return float(1.0 - residual / total)
