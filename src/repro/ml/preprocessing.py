"""Feature preprocessing: scaling, count transforms, data splitting.

The subgraph census produces raw occurrence counts whose magnitudes span
orders of magnitude (hub neighbourhoods vs leaves); linear models and
logistic regression behave better on standardised or log-compressed inputs,
while trees are scale-invariant.  The experiment pipelines standardise for
linear/Bayesian/logistic models and feed raw counts to forests.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_array


class StandardScaler(BaseEstimator):
    """Zero-mean, unit-variance scaling with constant-column protection.

    Columns with zero variance are scaled by 1 instead of 0, so constant
    features pass through centred rather than producing NaNs.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True) -> None:
        self.with_mean = with_mean
        self.with_std = with_std
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        X = check_array(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            scale = X.std(axis=0)
            scale[scale == 0.0] = 1.0
            self.scale_ = scale
        else:
            self.scale_ = np.ones(X.shape[1])
        self._fitted = True
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"fitted on {self.mean_.shape[0]} features, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        return X * self.scale_ + self.mean_


def log1p_counts(X):
    """``log(1 + x)`` compression for non-negative count features.

    Sparse count matrices keep their sparsity: ``log1p`` maps 0 to 0, so
    only the stored values are transformed and the pattern is reused.

    Raises
    ------
    ValueError
        If any entry is negative (counts cannot be).
    """
    from repro.core.sparse import CSRMatrix

    if isinstance(X, CSRMatrix):
        if np.any(X.data < 0):
            raise ValueError("log1p_counts expects non-negative counts")
        return X.with_data(np.log1p(X.data))
    X = check_array(X)
    if np.any(X < 0):
        raise ValueError("log1p_counts expects non-negative counts")
    return np.log1p(X)


def train_test_split(
    *arrays,
    test_size: float = 0.25,
    rng: np.random.Generator | int | None = None,
    stratify=None,
):
    """Random split of aligned arrays into train and test parts.

    Parameters
    ----------
    arrays:
        One or more arrays with equal first dimension.
    test_size:
        Fraction in ``(0, 1)`` assigned to the test part.
    rng:
        ``numpy`` generator or seed for reproducibility.
    stratify:
        Optional label array; when given, each class is split separately so
        train and test preserve class proportions (used by the label
        prediction experiments, which sample 250 nodes per label).

    Returns
    -------
    list
        ``[a_train, a_test, b_train, b_test, ...]`` in argument order.
    """
    if not arrays:
        raise ValueError("provide at least one array to split")
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    length = len(arrays[0])
    for array in arrays[1:]:
        if len(array) != length:
            raise ValueError("all arrays must share their first dimension")
    if length < 2:
        raise ValueError("need at least two samples to split")
    rng = np.random.default_rng(rng)

    if stratify is not None:
        stratify = np.asarray(stratify)
        if len(stratify) != length:
            raise ValueError("stratify must align with the arrays")
        test_idx_parts = []
        for cls in np.unique(stratify):
            members = np.flatnonzero(stratify == cls)
            rng.shuffle(members)
            take = int(round(test_size * members.size))
            take = min(max(take, 1), members.size - 1) if members.size > 1 else 0
            test_idx_parts.append(members[:take])
        test_idx = np.concatenate(test_idx_parts) if test_idx_parts else np.array([], int)
        test_mask = np.zeros(length, dtype=bool)
        test_mask[test_idx] = True
    else:
        permutation = rng.permutation(length)
        num_test = int(round(test_size * length))
        num_test = min(max(num_test, 1), length - 1)
        test_mask = np.zeros(length, dtype=bool)
        test_mask[permutation[:num_test]] = True

    result = []
    for array in arrays:
        # Sparse matrices pass through untouched: CSRMatrix supports the
        # boolean row masks used below, and np.asarray would wreck it.
        if not hasattr(array, "toarray"):
            array = np.asarray(array)
        result.extend([array[~test_mask], array[test_mask]])
    return result


def kfold_indices(
    num_samples: int, num_folds: int = 5, rng: np.random.Generator | int | None = None
):
    """Yield ``(train_indices, test_indices)`` pairs for k-fold CV."""
    if num_folds < 2:
        raise ValueError(f"num_folds must be >= 2, got {num_folds}")
    if num_samples < num_folds:
        raise ValueError(f"{num_samples} samples cannot form {num_folds} folds")
    rng = np.random.default_rng(rng)
    permutation = rng.permutation(num_samples)
    folds = np.array_split(permutation, num_folds)
    for i in range(num_folds):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(num_folds) if j != i])
        yield train, test
