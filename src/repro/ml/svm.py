"""Linear support vector machines (the paper's omitted baselines).

Section 4.2.3 notes that SVMs were evaluated for the ranking task but
"performed poorly across all features" and were omitted from the figures.
To reproduce that omission honestly, the repository includes the models:

* :class:`LinearSVR` — epsilon-insensitive regression with L2 penalty,
* :class:`LinearSVC` — binary classification with (squared) hinge loss.

Both use smooth loss variants (squared epsilon-insensitive / squared
hinge), solved with L-BFGS via scipy — the same strategy as liblinear's
dual-free modes and accurate enough at the evaluation's scale.  The
appendix bench ``benchmarks/test_ablation_omitted_models.py`` confirms the
paper's observation on the rank-prediction task.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_X_y,
    check_array,
)


class LinearSVR(BaseEstimator, RegressorMixin):
    """Linear epsilon-insensitive support vector regression.

    Minimises ``0.5 ||w||^2 + C * sum max(0, |y - Xw - b| - epsilon)^2``
    (squared epsilon-insensitive loss, intercept unpenalised).
    """

    def __init__(self, C: float = 1.0, epsilon: float = 0.1, max_iter: int = 300) -> None:
        if C <= 0:
            raise ValueError(f"C must be > 0, got {C}")
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        self.C = C
        self.epsilon = epsilon
        self.max_iter = max_iter
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "LinearSVR":
        X, y = check_X_y(X, y)
        n, p = X.shape

        def objective(params):
            w, b = params[:p], params[p]
            residual = y - X @ w - b
            slack = np.maximum(np.abs(residual) - self.epsilon, 0.0)
            loss = 0.5 * (w @ w) + self.C * np.sum(slack**2)
            # d/d residual of slack^2 = 2 slack * sign(residual) on active set
            grad_residual = -2.0 * self.C * slack * np.sign(residual)
            grad_w = w + X.T @ grad_residual
            grad_b = float(np.sum(grad_residual))
            return loss, np.concatenate([grad_w, [grad_b]])

        start = np.zeros(p + 1)
        result = minimize(
            objective, start, jac=True, method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.coef_ = result.x[:p]
        self.intercept_ = float(result.x[p])
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"fitted on {self.coef_.shape[0]} features, got {X.shape[1]}"
            )
        return X @ self.coef_ + self.intercept_


class LinearSVC(BaseEstimator, ClassifierMixin):
    """Binary linear SVM with squared hinge loss.

    Minimises ``0.5 ||w||^2 + C * sum max(0, 1 - t (Xw + b))^2`` with
    targets ``t in {-1, +1}`` (``classes_[1]`` is positive).
    """

    def __init__(self, C: float = 1.0, max_iter: int = 300) -> None:
        if C <= 0:
            raise ValueError(f"C must be > 0, got {C}")
        self.C = C
        self.max_iter = max_iter
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.classes_: np.ndarray | None = None

    def fit(self, X, y) -> "LinearSVC":
        X = check_array(X)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        if self.classes_.size != 2:
            raise ValueError(
                f"binary classifier got {self.classes_.size} classes"
            )
        target = np.where(y == self.classes_[1], 1.0, -1.0)
        n, p = X.shape

        def objective(params):
            w, b = params[:p], params[p]
            margin = target * (X @ w + b)
            slack = np.maximum(1.0 - margin, 0.0)
            loss = 0.5 * (w @ w) + self.C * np.sum(slack**2)
            grad_margin = -2.0 * self.C * slack
            grad_w = w + X.T @ (grad_margin * target)
            grad_b = float(np.sum(grad_margin * target))
            return loss, np.concatenate([grad_w, [grad_b]])

        start = np.zeros(p + 1)
        result = minimize(
            objective, start, jac=True, method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.coef_ = result.x[:p]
        self.intercept_ = float(result.x[p])
        self._fitted = True
        return self

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"fitted on {self.coef_.shape[0]} features, got {X.shape[1]}"
            )
        return X @ self.coef_ + self.intercept_

    def predict(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        return np.where(scores >= 0, self.classes_[1], self.classes_[0])
