"""CART decision trees (regressor and classifier).

Used directly as the "decision tree" method of Section 4.2.3 and as the base
learner of :mod:`repro.ml.forest`.  Split search is vectorised across the
candidate features of a node: one ``argsort`` per node over the feature
submatrix, then cumulative-sum scans give every possible threshold's
impurity in closed form (variance reduction for regression, Gini for
classification).  Per-node cost is ``O(n_node * log n_node * n_candidates)``
so a fully grown tree costs roughly ``depth`` passes over the data.

The tree is grown breadth-first (level order) and every node's summary
statistics — target sum and sum of squares for regression, per-class counts
for classification — are handed down from the parent's split scan instead of
being recomputed from the raw targets.  This fixes the *semantic contract*
that :mod:`repro.ml.tree_batched` (the level-batched forest engine)
reproduces bit-for-bit: node values, impurities, candidate-feature draws,
split choices and importance accumulation all happen in the same order with
the same floating-point expressions, so ``engine="fast"`` forests equal
``engine="reference"`` forests exactly.  Change a formula here and you must
change it there (the parity tests in tests/test_ml_forest.py will catch a
drift).

Partitioning is positional, as in sklearn: a split sends the first
``row + 1`` sorted samples left and the rest right, and stores the midpoint
threshold for prediction-time routing.  Child index sets are re-sorted
ascending so the next level's stable argsort sees ties in the original row
order regardless of which feature was split on.

Impurity-decrease feature importances follow sklearn's definition: each
split contributes ``(n_node/n) * (impurity - weighted child impurity)`` to
its feature, normalised to sum to one.  These drive Figure 4.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_X_y,
    check_array,
)


@dataclass
class _Node:
    """One tree node; leaves keep ``feature == -1``."""

    value: np.ndarray  # mean (regression, shape ()) or class proportions
    impurity: float
    n_samples: int
    feature: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1


@dataclass
class _Split:
    """A chosen split plus the statistics handed down to the children."""

    feature: int
    threshold: float
    score: float  # total child impurity (lower is better)
    row: int  # split position in the sorted order
    order_col: np.ndarray = field(repr=False)  # sort order of the split column
    left_stats: object = field(repr=False, default=None)
    right_stats: object = field(repr=False, default=None)


def _resolve_max_features(max_features, n_features: int) -> int:
    """Translate the sklearn-style ``max_features`` spec to a count >= 1."""
    if max_features is None:
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features))) if n_features > 1 else 1
    if isinstance(max_features, (bool, np.bool_)):
        raise ValueError(f"unsupported max_features spec {max_features!r}")
    if isinstance(max_features, (float, np.floating)):
        if not 0.0 < max_features <= 1.0:
            raise ValueError(f"max_features fraction must be in (0, 1], got {max_features}")
        # Small fractions on small vocabularies can round to 0 columns;
        # always keep at least one candidate.
        return max(1, int(max_features * n_features))
    if isinstance(max_features, (int, np.integer)):
        if max_features < 1:
            raise ValueError(f"max_features must be >= 1, got {max_features}")
        return min(int(max_features), n_features)
    raise ValueError(f"unsupported max_features spec {max_features!r}")


class _BaseDecisionTree(BaseEstimator):
    """Shared breadth-first builder; subclasses define the statistics."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state: int | None = None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise ValueError(f"min_samples_split must be >= 2, got {min_samples_split}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._nodes: list[_Node] = []
        self.n_features_: int = 0
        self.feature_importances_: np.ndarray | None = None

    # -- subclass hooks: the statistics contract ---------------------------
    # tree_batched.py vectorises exactly these expressions; keep in sync.
    def _root_stats(self, y: np.ndarray):
        raise NotImplementedError

    def _node_summary(self, stats, m: int) -> tuple[np.ndarray, float]:
        """(leaf value, impurity) from the handed-down statistics."""
        raise NotImplementedError

    def _stats_pure(self, stats) -> bool:
        """True when the statistics prove the node is single-valued."""
        raise NotImplementedError

    def _targets_constant(self, y_node: np.ndarray) -> bool:
        """Exact constancy check on the gathered targets (regression)."""
        raise NotImplementedError

    def _prepare_targets(self, y_node: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _split_scan(self, ys_sorted: np.ndarray):
        """(scores, scan) for every split position of every feature.

        ``ys_sorted`` has shape ``(m, f)`` (regression) or ``(m, f, k)``
        (one-hot classification); ``scores`` has shape ``(m - 1, f)`` and
        ``scan`` carries the cumulative sums that :meth:`_child_stats`
        extracts the children's statistics from.
        """
        raise NotImplementedError

    def _child_stats(self, scan, row: int, col: int):
        raise NotImplementedError

    # -- fitting -------------------------------------------------------------
    def _fit_tree(self, X: np.ndarray, y: np.ndarray) -> None:
        n, p = X.shape
        self.n_features_ = p
        self._nodes = []
        importances = np.zeros(p)
        rng = np.random.default_rng(self.random_state)
        n_candidates = _resolve_max_features(self.max_features, p)

        # Breadth-first queue: (row indices, depth, stats, parent id, side).
        queue: deque = deque()
        queue.append((np.arange(n), 0, self._root_stats(y), -1, False))
        while queue:
            indices, depth, stats, parent_id, is_right = queue.popleft()
            m = int(indices.size)
            value, impurity = self._node_summary(stats, m)
            node = _Node(value=value, impurity=impurity, n_samples=m)
            node_id = len(self._nodes)
            self._nodes.append(node)
            if parent_id >= 0:
                parent = self._nodes[parent_id]
                if is_right:
                    parent.right = node_id
                else:
                    parent.left = node_id

            depth_ok = self.max_depth is None or depth < self.max_depth
            if not (depth_ok and m >= self.min_samples_split):
                continue
            if self._stats_pure(stats):
                continue
            y_node = y[indices]
            if self._targets_constant(y_node):
                continue
            split = self._best_split(X, y_node, indices, n_candidates, rng)
            if split is None:
                continue
            node.feature = split.feature
            node.threshold = split.threshold
            # Positional partition; children re-sorted to original row order.
            left_idx = np.sort(indices[split.order_col[: split.row + 1]])
            right_idx = np.sort(indices[split.order_col[split.row + 1 :]])
            queue.append((left_idx, depth + 1, split.left_stats, node_id, False))
            queue.append((right_idx, depth + 1, split.right_stats, node_id, True))
            importances[split.feature] += (impurity * m - split.score) / n

        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        self._compile_nodes()

    def _best_split(
        self,
        X: np.ndarray,
        y_node: np.ndarray,
        indices: np.ndarray,
        n_candidates: int,
        rng: np.random.Generator,
    ) -> _Split | None:
        p = X.shape[1]
        if n_candidates < p:
            features = rng.choice(p, size=n_candidates, replace=False)
        else:
            features = np.arange(p)
        sub = X[np.ix_(indices, features)]
        order = np.argsort(sub, axis=0, kind="stable")
        xs = np.take_along_axis(sub, order, axis=0)
        targets = self._prepare_targets(y_node)
        ys_sorted = targets[order]  # fancy indexing broadcasts any class axis

        scores, scan = self._split_scan(ys_sorted)  # (m - 1, f)

        m = indices.size
        left_sizes = np.arange(1, m)
        size_ok = (left_sizes >= self.min_samples_leaf) & (
            (m - left_sizes) >= self.min_samples_leaf
        )
        distinct = xs[1:] != xs[:-1]
        valid = distinct & size_ok[:, None]
        if not np.any(valid):
            return None
        scores = np.where(valid, scores, np.inf)
        flat_best = int(np.argmin(scores))
        row, col = np.unravel_index(flat_best, scores.shape)
        if not np.isfinite(scores[row, col]):
            return None
        left_stats, right_stats = self._child_stats(scan, int(row), int(col))
        return _Split(
            feature=int(features[col]),
            threshold=float((xs[row, col] + xs[row + 1, col]) / 2.0),
            score=float(scores[row, col]),
            row=int(row),
            order_col=order[:, col],
            left_stats=left_stats,
            right_stats=right_stats,
        )

    def _compile_nodes(self) -> None:
        """Flatten the node list into arrays for vectorised prediction."""
        nodes = self._nodes
        self._feat = np.array([nd.feature for nd in nodes], dtype=np.int64)
        self._thr = np.array([nd.threshold for nd in nodes], dtype=np.float64)
        self._left = np.array([nd.left for nd in nodes], dtype=np.int64)
        self._right = np.array([nd.right for nd in nodes], dtype=np.int64)
        self._values = np.stack(
            [np.asarray(nd.value, dtype=np.float64) for nd in nodes]
        )

    # -- prediction -----------------------------------------------------------
    def _decision_path_values(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(f"fitted on {self.n_features_} features, got {X.shape[1]}")
        current = np.zeros(X.shape[0], dtype=np.int64)
        while True:
            feats = self._feat[current]
            rows = np.flatnonzero(feats >= 0)
            if rows.size == 0:
                break
            at = current[rows]
            go_left = X[rows, feats[rows]] <= self._thr[at]
            current[rows] = np.where(go_left, self._left[at], self._right[at])
        return self._values[current]

    @property
    def tree_depth_(self) -> int:
        """Depth of the fitted tree (root at depth 0)."""
        self._check_fitted()

        def depth(node_id: int) -> int:
            node = self._nodes[node_id]
            if node.feature == -1:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        return depth(0)

    @property
    def n_leaves_(self) -> int:
        self._check_fitted()
        return sum(1 for node in self._nodes if node.feature == -1)


class DecisionTreeRegressor(_BaseDecisionTree, RegressorMixin):
    """CART regressor minimising within-node variance."""

    def _root_stats(self, y: np.ndarray):
        return (float(np.sum(y)), float(np.dot(y, y)))

    def _node_summary(self, stats, m: int) -> tuple[np.ndarray, float]:
        s, sq = stats
        mean = s / m
        impurity = sq / m - mean * mean
        if impurity < 0.0:
            impurity = 0.0
        return np.asarray(mean), float(impurity)

    def _stats_pure(self, stats) -> bool:
        return False  # fp sums can't prove purity; _targets_constant does.

    def _targets_constant(self, y_node: np.ndarray) -> bool:
        return bool(y_node.min() == y_node.max())

    def _prepare_targets(self, y_node: np.ndarray) -> np.ndarray:
        return y_node

    def _split_scan(self, ys_sorted: np.ndarray):
        m = ys_sorted.shape[0]
        csum = np.cumsum(ys_sorted, axis=0)
        csq = np.cumsum(ys_sorted**2, axis=0)
        total = csum[-1]
        total_sq = csq[-1]
        left_n = np.arange(1, m, dtype=np.float64)[:, None]
        right_n = m - left_n
        left_sse = csq[:-1] - csum[:-1] ** 2 / left_n
        right_sse = (total_sq - csq[:-1]) - (total - csum[:-1]) ** 2 / right_n
        return left_sse + right_sse, (csum, csq)

    def _child_stats(self, scan, row: int, col: int):
        csum, csq = scan
        left_s = float(csum[row, col])
        left_sq = float(csq[row, col])
        right_s = float(csum[-1, col]) - left_s
        right_sq = float(csq[-1, col]) - left_sq
        return (left_s, left_sq), (right_s, right_sq)

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X, y = check_X_y(X, y)
        self._fit_tree(X, y)
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        return self._decision_path_values(np.asarray(X, dtype=np.float64))


class DecisionTreeClassifier(_BaseDecisionTree, ClassifierMixin):
    """CART classifier minimising Gini impurity."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.classes_: np.ndarray | None = None

    def _root_stats(self, y: np.ndarray):
        return np.bincount(
            y.astype(np.int64), minlength=self.classes_.size
        ).astype(np.float64)

    def _node_summary(self, stats, m: int) -> tuple[np.ndarray, float]:
        proportion = stats / m
        impurity = 1.0 - float(np.sum(proportion**2))
        return proportion, impurity

    def _stats_pure(self, stats) -> bool:
        return int(np.count_nonzero(stats)) <= 1

    def _targets_constant(self, y_node: np.ndarray) -> bool:
        return False  # class counts already give an exact purity check.

    def _prepare_targets(self, y_node: np.ndarray) -> np.ndarray:
        # y arrives as class indices; one-hot for the cumulative Gini scan.
        return np.eye(self.classes_.size, dtype=np.float64)[y_node.astype(np.int64)]

    def _split_scan(self, ys_sorted: np.ndarray):
        # ys_sorted: (m, f, k) one-hot.
        m = ys_sorted.shape[0]
        ccum = np.cumsum(ys_sorted, axis=0)
        total = ccum[-1]  # (f, k)
        left_counts = ccum[:-1]  # (m-1, f, k)
        right_counts = total[None, :, :] - left_counts
        left_n = np.arange(1, m, dtype=np.float64)[:, None]
        right_n = m - left_n
        left_gini = left_n - np.sum(left_counts**2, axis=2) / left_n
        right_gini = right_n - np.sum(right_counts**2, axis=2) / right_n
        return left_gini + right_gini, ccum

    def _child_stats(self, scan, row: int, col: int):
        left_counts = scan[row, col].copy()
        right_counts = scan[-1, col] - left_counts
        return left_counts, right_counts

    def fit(self, X, y) -> "DecisionTreeClassifier":
        X = check_array(X)
        y = np.asarray(y)
        if y.shape[0] != X.shape[0]:
            raise ValueError(f"X has {X.shape[0]} samples but y has {y.shape[0]}")
        self.classes_, y_indices = np.unique(y, return_inverse=True)
        self._fit_tree(X, y_indices.astype(np.float64))
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        return self._decision_path_values(np.asarray(X, dtype=np.float64))

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]
