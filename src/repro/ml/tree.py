"""CART decision trees (regressor and classifier).

Used directly as the "decision tree" method of Section 4.2.3 and as the base
learner of :mod:`repro.ml.forest`.  Split search is vectorised across the
candidate features of a node: one ``argsort`` per node over the feature
submatrix, then cumulative-sum scans give every possible threshold's
impurity in closed form (variance reduction for regression, Gini for
classification).  Per-node cost is ``O(n_node * log n_node * n_candidates)``
so a fully grown tree costs roughly ``depth`` passes over the data.

Impurity-decrease feature importances follow sklearn's definition: each
split contributes ``(n_node/n) * (impurity - weighted child impurity)`` to
its feature, normalised to sum to one.  These drive Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_X_y,
    check_array,
)


@dataclass
class _Node:
    """One tree node; leaves keep ``feature == -1``."""

    value: np.ndarray  # mean (regression, shape ()) or class counts (classification)
    impurity: float
    n_samples: int
    feature: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1


@dataclass
class _Split:
    feature: int
    threshold: float
    score: float  # total child impurity (lower is better)
    left_mask: np.ndarray = field(repr=False)


def _resolve_max_features(max_features, n_features: int) -> int:
    """Translate the sklearn-style ``max_features`` spec to a count."""
    if max_features is None:
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features))) if n_features > 1 else 1
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ValueError(f"max_features fraction must be in (0, 1], got {max_features}")
        return max(1, int(max_features * n_features))
    if isinstance(max_features, int):
        if max_features < 1:
            raise ValueError(f"max_features must be >= 1, got {max_features}")
        return min(max_features, n_features)
    raise ValueError(f"unsupported max_features spec {max_features!r}")


class _BaseDecisionTree(BaseEstimator):
    """Shared recursive builder; subclasses define impurity and leaf values."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state: int | None = None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise ValueError(f"min_samples_split must be >= 2, got {min_samples_split}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._nodes: list[_Node] = []
        self.n_features_: int = 0
        self.feature_importances_: np.ndarray | None = None

    # -- subclass hooks ----------------------------------------------------
    def _prepare_targets(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _node_impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _split_scores(
        self, ys_sorted: np.ndarray
    ) -> np.ndarray:
        """Total child impurity for every split position of every feature.

        ``ys_sorted`` has shape ``(n, f)`` (regression) or ``(n, f, k)``
        (one-hot classification); the result has shape ``(n - 1, f)``.
        """
        raise NotImplementedError

    # -- fitting -------------------------------------------------------------
    def _fit_tree(self, X: np.ndarray, y: np.ndarray) -> None:
        n, p = X.shape
        self.n_features_ = p
        self._nodes = []
        importances = np.zeros(p)
        rng = np.random.default_rng(self.random_state)
        n_candidates = _resolve_max_features(self.max_features, p)

        def build(indices: np.ndarray, depth: int) -> int:
            y_node = y[indices]
            impurity = self._node_impurity(y_node)
            node = _Node(
                value=self._leaf_value(y_node),
                impurity=impurity,
                n_samples=indices.size,
            )
            node_id = len(self._nodes)
            self._nodes.append(node)

            depth_ok = self.max_depth is None or depth < self.max_depth
            if (
                depth_ok
                and indices.size >= self.min_samples_split
                and impurity > 0.0
            ):
                split = self._best_split(X, y, indices, n_candidates, rng)
                if split is not None:
                    left_idx = indices[split.left_mask]
                    right_idx = indices[~split.left_mask]
                    node.feature = split.feature
                    node.threshold = split.threshold
                    node.left = build(left_idx, depth + 1)
                    node.right = build(right_idx, depth + 1)
                    decrease = impurity * indices.size - split.score
                    importances[split.feature] += decrease / n
            return node_id

        build(np.arange(n), depth=0)
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances

    def _best_split(
        self,
        X: np.ndarray,
        y: np.ndarray,
        indices: np.ndarray,
        n_candidates: int,
        rng: np.random.Generator,
    ) -> _Split | None:
        p = X.shape[1]
        if n_candidates < p:
            features = rng.choice(p, size=n_candidates, replace=False)
        else:
            features = np.arange(p)
        sub = X[np.ix_(indices, features)]
        order = np.argsort(sub, axis=0, kind="stable")
        xs = np.take_along_axis(sub, order, axis=0)
        targets = self._prepare_targets(y[indices])
        if targets.ndim == 1:
            ys_sorted = targets[order]
        else:
            ys_sorted = targets[order]  # fancy indexing broadcasts the class axis

        scores = self._split_scores(ys_sorted)  # (n - 1, f)

        n_node = indices.size
        left_sizes = np.arange(1, n_node)
        size_ok = (left_sizes >= self.min_samples_leaf) & (
            (n_node - left_sizes) >= self.min_samples_leaf
        )
        distinct = xs[1:] != xs[:-1]
        valid = distinct & size_ok[:, None]
        if not np.any(valid):
            return None
        scores = np.where(valid, scores, np.inf)
        flat_best = int(np.argmin(scores))
        row, col = np.unravel_index(flat_best, scores.shape)
        if not np.isfinite(scores[row, col]):
            return None
        feature = int(features[col])
        threshold = float((xs[row, col] + xs[row + 1, col]) / 2.0)
        left_mask = X[indices, feature] <= threshold
        # Guard against midpoints that collapse to one side numerically.
        left_count = int(left_mask.sum())
        if left_count == 0 or left_count == n_node:
            left_mask = X[indices, feature] <= xs[row, col]
            left_count = int(left_mask.sum())
            if left_count == 0 or left_count == n_node:
                return None
            threshold = float(xs[row, col])
        return _Split(feature, threshold, float(scores[row, col]), left_mask)

    # -- prediction -----------------------------------------------------------
    def _decision_path_values(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(f"fitted on {self.n_features_} features, got {X.shape[1]}")
        out = np.empty((X.shape[0],) + np.shape(self._nodes[0].value))
        for i, row in enumerate(X):
            node = self._nodes[0]
            while node.feature != -1:
                node = self._nodes[node.left if row[node.feature] <= node.threshold else node.right]
            out[i] = node.value
        return out

    @property
    def tree_depth_(self) -> int:
        """Depth of the fitted tree (root at depth 0)."""
        self._check_fitted()

        def depth(node_id: int) -> int:
            node = self._nodes[node_id]
            if node.feature == -1:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        return depth(0)

    @property
    def n_leaves_(self) -> int:
        self._check_fitted()
        return sum(1 for node in self._nodes if node.feature == -1)


class DecisionTreeRegressor(_BaseDecisionTree, RegressorMixin):
    """CART regressor minimising within-node variance."""

    def _prepare_targets(self, y: np.ndarray) -> np.ndarray:
        return y

    def _node_impurity(self, y: np.ndarray) -> float:
        return float(np.var(y))

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        return np.asarray(float(np.mean(y)))

    def _split_scores(self, ys_sorted: np.ndarray) -> np.ndarray:
        n = ys_sorted.shape[0]
        csum = np.cumsum(ys_sorted, axis=0)
        csq = np.cumsum(ys_sorted**2, axis=0)
        total = csum[-1]
        total_sq = csq[-1]
        left_n = np.arange(1, n, dtype=np.float64)[:, None]
        right_n = n - left_n
        left_sse = csq[:-1] - csum[:-1] ** 2 / left_n
        right_sse = (total_sq - csq[:-1]) - (total - csum[:-1]) ** 2 / right_n
        return left_sse + right_sse

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X, y = check_X_y(X, y)
        self._fit_tree(X, y)
        self._fitted = True
        return self

    def predict(self, X) -> np.ndarray:
        return self._decision_path_values(np.asarray(X, dtype=np.float64))


class DecisionTreeClassifier(_BaseDecisionTree, ClassifierMixin):
    """CART classifier minimising Gini impurity."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.classes_: np.ndarray | None = None

    def _prepare_targets(self, y: np.ndarray) -> np.ndarray:
        # y arrives as class indices; one-hot for the cumulative Gini scan.
        return np.eye(self.classes_.size, dtype=np.float64)[y.astype(np.int64)]

    def _node_impurity(self, y: np.ndarray) -> float:
        counts = np.bincount(y.astype(np.int64), minlength=self.classes_.size)
        total = counts.sum()
        if total == 0:
            return 0.0
        proportion = counts / total
        return float(1.0 - np.sum(proportion**2))

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y.astype(np.int64), minlength=self.classes_.size)
        return counts / max(counts.sum(), 1)

    def _split_scores(self, ys_sorted: np.ndarray) -> np.ndarray:
        # ys_sorted: (n, f, k) one-hot.
        n = ys_sorted.shape[0]
        ccum = np.cumsum(ys_sorted, axis=0)
        total = ccum[-1]  # (f, k)
        left_counts = ccum[:-1]  # (n-1, f, k)
        right_counts = total[None, :, :] - left_counts
        left_n = np.arange(1, n, dtype=np.float64)[:, None]
        right_n = n - left_n
        left_gini = left_n - np.sum(left_counts**2, axis=2) / left_n
        right_gini = right_n - np.sum(right_counts**2, axis=2) / right_n
        return left_gini + right_gini

    def fit(self, X, y) -> "DecisionTreeClassifier":
        X = check_array(X)
        y = np.asarray(y)
        if y.shape[0] != X.shape[0]:
            raise ValueError(f"X has {X.shape[0]} samples but y has {y.shape[0]}")
        self.classes_, y_indices = np.unique(y, return_inverse=True)
        self._fit_tree(X, y_indices.astype(np.float64))
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        return self._decision_path_values(np.asarray(X, dtype=np.float64))

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]
