"""Level-batched tree growing: the forest ``engine="fast"`` builder.

The reference forest grows each tree node by node: every node pays ~20
numpy dispatches on a shrinking sample, so deep levels with hundreds of
tiny nodes are dominated by interpreter and dispatch overhead, not
arithmetic.  This module grows a whole *chunk of trees simultaneously,
level by level*: all nodes at the current depth — across every tree in the
chunk — are grouped into size buckets, padded to a common width, and their
split scans (stable argsort + cumulative-sum impurity) run as single 3-D/4-D
vectorised operations.  Per-level numpy dispatch is ``O(buckets)`` instead
of ``O(nodes)``.

Bit-identity with :class:`repro.ml.tree._BaseDecisionTree` is a hard
contract (asserted by tests/test_ml_forest.py):

* node creation, candidate-feature draws and importance accumulation all
  happen in breadth-first node order per tree, with each tree using its own
  ``default_rng(seed)`` — so interleaving trees changes nothing;
* every floating-point expression (cumulative sums, SSE/Gini scores,
  midpoint thresholds, ``s/m`` summaries) mirrors the reference formulas
  elementwise — padded slots hold ``+inf`` feature values (sorted to the
  end, masked by size validity) and ``0`` targets (identity under the
  prefix sums that are actually read);
* the flat argmin tie-break is preserved: within a node the padded score
  block keeps the reference's row-major ``row * k + col`` ordering, and
  padded slots are ``inf`` so they never win;
* bootstrap rows are never materialised — node index sets are positions
  into the tree's ``sample`` array and gathers go through
  ``X[sample[positions], features]``, which yields the exact same floats as
  the reference's ``X[sample]`` copy.

Only the forest should call :func:`fit_tree_batch`; it returns fully
fitted tree estimator objects that predict through the shared compiled-node
path.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import _Node, _resolve_max_features

#: Soft cap on ``batch * width * candidates`` cells per scan chunk; keeps
#: peak scratch memory around tens of MB regardless of forest size.
CELL_BUDGET = 1_000_000


class _TreeState:
    """Per-tree growth state shared by all of the tree's live nodes."""

    __slots__ = ("tree", "rng", "sample", "y_boot", "n", "off", "importances")

    def __init__(self, tree, rng, sample, y_boot, off, importances):
        self.tree = tree
        self.rng = rng
        self.sample = sample
        self.y_boot = y_boot
        self.n = int(sample.size)
        self.off = off  # this tree's slice offset in the concatenated arrays
        self.importances = importances


class _Entry:
    """One live node: its tree, sample positions and handed-down stats."""

    __slots__ = (
        "state", "indices", "stats", "parent", "is_right",
        "node", "node_id", "m", "impurity", "gpos", "feats", "split",
    )

    def __init__(self, state, indices, stats, parent, is_right):
        self.state = state
        self.indices = indices
        self.stats = stats
        self.parent = parent
        self.is_right = is_right
        self.split = None


def fit_tree_batch(X, y, tree_cls, params, tasks, classes=None):
    """Fit one tree per ``(seed, sample)`` task, level-synchronously.

    ``X``/``y`` must already be validated float64 arrays (the forest runs
    ``check_X_y`` once).  For classifiers ``classes`` is the forest-level
    class vector and ``y`` holds class indices; every tree is fitted
    against the full class axis, which scores identically to the
    reference's bootstrap-local axis because absent classes contribute
    exact zeros to every sum.
    """
    p = X.shape[1]
    is_classifier = classes is not None
    n_classes = int(classes.size) if is_classifier else 0
    min_samples_split = params.get("min_samples_split", 2)
    min_samples_leaf = params.get("min_samples_leaf", 1)
    max_depth = params.get("max_depth")
    n_candidates = _resolve_max_features(params.get("max_features"), p)
    all_features = np.arange(p)
    eye = np.eye(n_classes, dtype=np.float64) if is_classifier else None

    states = []
    frontier: list[_Entry] = []
    for i, (seed, sample) in enumerate(tasks):
        tree = tree_cls(**params, random_state=seed)
        tree.n_features_ = p
        tree._nodes = []
        if is_classifier:
            tree.classes_ = classes
        y_boot = y[sample]
        state = _TreeState(
            tree, np.random.default_rng(seed), sample, y_boot,
            i * int(sample.size), np.zeros(p),
        )
        states.append(state)
        frontier.append(
            _Entry(state, np.arange(state.n), tree._root_stats(y_boot), -1, False)
        )
    # Concatenated bootstrap row ids / targets: per-level work gathers from
    # these with a single fancy index instead of one small gather per node.
    sample_cat = np.concatenate([s.sample for s in states]).astype(np.int64)
    y_cat = np.concatenate([s.y_boot for s in states])

    level = 0
    while frontier:
        # 1. Materialise this level's nodes in frontier (== BFS) order.
        #    Node summaries (value, impurity) are computed for the whole
        #    level at once with the exact reference formulas.
        m_arr = np.array([e.indices.size for e in frontier], dtype=np.int64)
        if is_classifier:
            counts = np.stack([e.stats for e in frontier])
            values = counts / m_arr[:, None].astype(np.float64)
            impurities = 1.0 - np.sum(values**2, axis=1)
            value_list = list(values)  # one (n_classes,) row view per node
        else:
            s_arr = np.array([e.stats[0] for e in frontier])
            sq_arr = np.array([e.stats[1] for e in frontier])
            values = s_arr / m_arr
            impurities = sq_arr / m_arr - values * values
            impurities[impurities < 0.0] = 0.0  # matches the scalar clamp
            # tolist() is exact for float64; _compile_nodes re-wraps with
            # np.asarray, so a python float here is bit-identical to the
            # reference's 0-d array.
            value_list = values.tolist()
        imp_list = impurities.tolist()
        m_list = m_arr.tolist()
        for i, entry in enumerate(frontier):
            tree = entry.state.tree
            entry.m = m_list[i]
            entry.impurity = imp_list[i]
            node = _Node(
                value=value_list[i],
                impurity=imp_list[i],
                n_samples=entry.m,
            )
            node_id = len(tree._nodes)
            tree._nodes.append(node)
            entry.node = node
            entry.node_id = node_id
            if entry.parent >= 0:
                parent = tree._nodes[entry.parent]
                if entry.is_right:
                    parent.right = node_id
                else:
                    parent.left = node_id

        # 2. Select splittable nodes and draw their candidate features —
        #    still in BFS order, so each tree's rng stream matches the
        #    reference builder draw for draw.  The per-node guards run as
        #    level-wide array ops: class purity straight off the stacked
        #    stats, target constancy as segmented min == max over one
        #    concatenated gather.
        scannable: list[_Entry] = []
        if max_depth is None or level < max_depth:
            splittable = m_arr >= min_samples_split
            if is_classifier:
                splittable &= np.count_nonzero(counts, axis=1) > 1
            candidates = [e for i, e in enumerate(frontier) if splittable[i]]
            if candidates:
                sizes = np.array([e.m for e in candidates], dtype=np.int64)
                offs = np.array(
                    [e.state.off for e in candidates], dtype=np.int64
                )
                gpos = np.concatenate([e.indices for e in candidates])
                gpos += np.repeat(offs, sizes)
                starts = np.zeros(sizes.size, dtype=np.int64)
                np.cumsum(sizes[:-1], out=starts[1:])
                if is_classifier:
                    constant = [False] * sizes.size
                else:
                    yv = y_cat[gpos]
                    constant = (
                        np.minimum.reduceat(yv, starts)
                        == np.maximum.reduceat(yv, starts)
                    ).tolist()
                starts_list = starts.tolist()
                sizes_list = sizes.tolist()
                for i, entry in enumerate(candidates):
                    if constant[i]:
                        continue
                    entry.gpos = gpos[starts_list[i] : starts_list[i] + sizes_list[i]]
                    if n_candidates < p:
                        entry.feats = entry.state.rng.choice(
                            p, size=n_candidates, replace=False
                        )
                    else:
                        entry.feats = all_features
                    scannable.append(entry)

        # 3. Bucket nodes of similar size (power-of-two classes) and run the
        #    vectorised split scans, padding only to each bucket's true max
        #    width — at the root level every node has the same m, so the
        #    biggest scans carry no padding at all.
        buckets: dict[int, list[_Entry]] = {}
        for entry in scannable:
            buckets.setdefault((entry.m - 1).bit_length(), []).append(entry)
        for _, entries in sorted(buckets.items()):
            cap = max(e.m for e in entries)
            _scan_bucket(
                X, entries, cap, sample_cat, y_cat,
                min_samples_leaf, is_classifier, n_classes, eye,
            )

        # 4. Apply the chosen splits in BFS order: record the split on the
        #    node, enqueue children, accumulate importances.
        next_frontier: list[_Entry] = []
        for entry in scannable:
            if entry.split is None:
                continue
            feature, threshold, score, row, order_col, left_stats, right_stats = (
                entry.split
            )
            node = entry.node
            node.feature = feature
            node.threshold = threshold
            # order_col is a permutation of 0..m-1; picking the ascending
            # positions of each side from the ascending entry.indices IS the
            # sorted child partition the reference builds with np.sort.
            left_idx = entry.indices[np.sort(order_col[: row + 1])]
            right_idx = entry.indices[np.sort(order_col[row + 1 : entry.m])]
            next_frontier.append(
                _Entry(entry.state, left_idx, left_stats, entry.node_id, False)
            )
            next_frontier.append(
                _Entry(entry.state, right_idx, right_stats, entry.node_id, True)
            )
            entry.state.importances[feature] += (
                entry.impurity * entry.m - score
            ) / entry.state.n
        frontier = next_frontier
        level += 1

    fitted = []
    for state in states:
        tree = state.tree
        total = state.importances.sum()
        tree.feature_importances_ = (
            state.importances / total if total > 0 else state.importances
        )
        tree._compile_nodes()
        tree._fitted = True
        fitted.append(tree)
    return fitted


def _scan_bucket(
    X, entries, cap, sample_cat, y_cat,
    min_samples_leaf, is_classifier, n_classes, eye,
):
    """Vectorised split scan for same-width nodes; writes ``entry.split``."""
    k = entries[0].feats.size
    width = k * (n_classes if is_classifier else 1)
    chunk = max(1, CELL_BUDGET // max(1, cap * width))
    for start in range(0, len(entries), chunk):
        _scan_chunk(
            X,
            entries[start : start + chunk],
            cap,
            sample_cat,
            y_cat,
            min_samples_leaf,
            is_classifier,
            eye,
        )


def _scan_chunk(X, entries, cap, sample_cat, y_cat, min_samples_leaf,
                is_classifier, eye):
    B = len(entries)
    k = entries[0].feats.size
    m_arr = np.array([e.m for e in entries], dtype=np.int64)
    feats = np.stack([e.feats for e in entries])  # (B, k)
    # One concatenated gather fills every node's rows/targets at once; the
    # boolean scatter through ``fill`` walks row-major, matching the
    # concatenation order exactly.
    gcat = np.concatenate([e.gpos for e in entries])
    pad = np.arange(cap)[None, :] >= m_arr[:, None]
    fill = ~pad
    rows = np.zeros((B, cap), dtype=np.int64)
    rows[fill] = sample_cat[gcat]
    sub = X[rows[:, :, None], feats[:, None, :]]  # (B, cap, k)
    sub[pad] = np.inf  # padding sorts last; masked out by size validity
    order = np.argsort(sub, axis=1, kind="stable")
    b_idx = np.arange(B)[:, None, None]
    xs = sub[b_idx, order, np.arange(k)[None, None, :]]

    # Cumulative scans over the full padded block (zero-padded targets are
    # exact identities under prefix sums)...
    with np.errstate(over="ignore"):
        if is_classifier:
            targets = np.zeros((B, cap, eye.shape[0]))
            targets[fill] = eye[y_cat[gcat].astype(np.int64)]
            ys = targets[b_idx, order]  # (B, cap, k, n_classes)
            ccum = np.cumsum(ys, axis=1)
            scan = ccum
        else:
            ypad = np.zeros((B, cap), dtype=np.float64)
            ypad[fill] = y_cat[gcat]
            ys = ypad[b_idx, order]  # (B, cap, k)
            csum = np.cumsum(ys, axis=1)
            csq = np.cumsum(ys**2, axis=1)
            scan = (csum, csq)

    # ... but impurity scores only at *valid* split positions.  On the
    # heavy-tailed count features most positions sit inside runs of tied
    # values, so this gather-based scoring skips the bulk of the reference
    # formula's arithmetic while reproducing it exactly where it counts.
    left_sizes = np.arange(1, cap)[None, :]
    size_ok = (left_sizes >= min_samples_leaf) & (
        (m_arr[:, None] - left_sizes) >= min_samples_leaf
    )  # padded rows have non-positive right size -> invalid
    distinct = xs[:, 1:, :] != xs[:, :-1, :]
    valid = (distinct & size_ok[:, :, None]).reshape(B, -1)
    batch_ids, flat = np.nonzero(valid)
    if batch_ids.size == 0:
        for entry in entries:
            entry.split = None
        return
    r = flat // k
    c = flat % k
    ln = (r + 1).astype(np.float64)  # == reference's left_n at this row
    rn = m_arr[batch_ids] - ln
    with np.errstate(over="ignore", invalid="ignore"):
        if is_classifier:
            lc = ccum[batch_ids, r, c]  # (V, n_classes)
            rc = ccum[batch_ids, cap - 1, c] - lc
            left_gini = ln - np.sum(lc**2, axis=1) / ln
            right_gini = rn - np.sum(rc**2, axis=1) / rn
            scores_v = left_gini + right_gini
        else:
            ls = csum[batch_ids, r, c]
            lq = csq[batch_ids, r, c]
            ts = csum[batch_ids, cap - 1, c]
            tq = csq[batch_ids, cap - 1, c]
            left_sse = lq - ls**2 / ln
            right_sse = (tq - lq) - (ts - ls) ** 2 / rn
            scores_v = left_sse + right_sse

    # Segment-wise first-minimum: batch_ids/flat arrive in row-major order,
    # so taking the smallest flat position among the minima reproduces the
    # reference's ``argmin`` row*k+col tie-break.  A NaN score (targets
    # astronomically large) makes the reference argmin land on the NaN and
    # fail its isfinite check; mirror that by disqualifying the node.
    counts = np.bincount(batch_ids, minlength=B)
    present = np.flatnonzero(counts)
    starts = np.searchsorted(batch_ids, present)
    min_scores = np.minimum.reduceat(scores_v, starts)
    at_min = scores_v == np.repeat(min_scores, counts[present])
    sentinel = cap * k
    first_at_min = np.minimum.reduceat(np.where(at_min, flat, sentinel), starts)
    nan_any = np.isnan(scores_v)
    best = np.full(B, -1, dtype=np.int64)
    best_scores = np.full(B, np.inf)
    best[present] = first_at_min
    best_scores[present] = min_scores
    usable = (best >= 0) & (best < sentinel) & np.isfinite(best_scores)
    if nan_any.any():
        usable &= ~(np.bincount(batch_ids, weights=nan_any, minlength=B) > 0)
    best = np.where(best >= 0, best, 0)  # placeholder rows; masked by usable
    best_rows = best // k
    best_cols = best % k
    # Vectorised extraction of the per-node winners: thresholds, chosen
    # features and the child statistics read off the cumulative scans.
    batch = np.arange(B)
    thresholds = (
        (xs[batch, best_rows, best_cols] + xs[batch, best_rows + 1, best_cols]) / 2.0
    ).tolist()
    chosen = feats[batch, best_cols].tolist()
    scores_out = best_scores.tolist()
    if is_classifier:
        left_counts = scan[batch, best_rows, best_cols]  # (B, n_classes)
        right_counts = scan[batch, -1, best_cols] - left_counts
    else:
        csum, csq = scan
        left_s = csum[batch, best_rows, best_cols].tolist()
        left_sq = csq[batch, best_rows, best_cols].tolist()
        right_s = (csum[batch, -1, best_cols] - csum[batch, best_rows, best_cols]).tolist()
        right_sq = (csq[batch, -1, best_cols] - csq[batch, best_rows, best_cols]).tolist()

    usable_list = usable.tolist()
    rows_list = best_rows.tolist()
    cols_list = best_cols.tolist()
    for b, entry in enumerate(entries):
        if not usable_list[b]:
            entry.split = None
            continue
        if is_classifier:
            left_stats = left_counts[b]
            right_stats = right_counts[b]
        else:
            left_stats = (left_s[b], left_sq[b])
            right_stats = (right_s[b], right_sq[b])
        entry.split = (
            chosen[b],
            thresholds[b],
            scores_out[b],
            rows_list[b],
            order[b, : entry.m, cols_list[b]],  # padding sorts last; first m real
            left_stats,
            right_stats,
        )
