"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch any failure originating here with a single ``except`` clause while
still distinguishing configuration mistakes from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Raised when a graph is malformed or an operation violates a graph
    invariant (unknown node, self loop, duplicate edge, ...)."""


class LabelError(ReproError):
    """Raised for problems with label alphabets: unknown labels, duplicate
    labels, or mismatched alphabets between graphs and features."""


class EncodingError(ReproError):
    """Raised when a characteristic-sequence encoding cannot be produced or
    parsed (e.g. decoding a corrupted code string)."""


class CensusError(ReproError):
    """Raised for invalid census configurations, such as a non-positive
    maximum edge count."""


class PartitionError(ReproError):
    """Raised for invalid graph-partitioning configurations or for nodes
    routed to a shard that does not contain them (see :mod:`repro.dist`)."""


class RPCError(ReproError):
    """Raised when a distributed run cannot complete over the wire: every
    worker died, a shard could not be shipped, or a worker answered a
    census RPC with a non-retryable protocol error (see
    :mod:`repro.dist.remote`)."""


class FeatureError(ReproError):
    """Raised when feature matrices cannot be constructed or aligned, e.g.
    transforming with an empty vocabulary."""


class NotFittedError(ReproError):
    """Raised when an estimator is used before :meth:`fit` was called."""


class ConvergenceWarning(UserWarning):
    """Issued when an iterative solver stops before reaching its tolerance."""
