"""Labelled edge-list serialisation.

A simple line-oriented text format for heterogeneous graphs:

* node lines: ``v <node-id> <label>``
* edge lines: ``e <node-id> <node-id>``
* ``#`` starts a comment; blank lines are ignored.

Node ids are URL-style percent-escaped so ids containing whitespace
round-trip.  This is the interchange format the examples use to hand
networks to and from external tools.
"""

from __future__ import annotations

from pathlib import Path
from urllib.parse import quote, unquote

from repro.core.graph import HeteroGraph
from repro.core.labels import LabelSet
from repro.exceptions import GraphError


def _escape(token: str) -> str:
    return quote(str(token), safe="")


def _unescape(token: str) -> str:
    return unquote(token)


def write_edgelist(graph: HeteroGraph, path: str | Path) -> None:
    """Write a graph to the labelled edge-list format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write("# heterogeneous labelled edge list\n")
        handle.write(f"# labels: {' '.join(_escape(n) for n in graph.labelset.names)}\n")
        for index, node_id in enumerate(graph.node_ids):
            label = graph.labelset.name(graph.label_of(index))
            handle.write(f"v {_escape(node_id)} {_escape(label)}\n")
        for u, v in graph.edges():
            handle.write(f"e {_escape(graph.node_id(u))} {_escape(graph.node_id(v))}\n")


def iter_edgelist(path: str | Path):
    """Stream parse events from a labelled edge-list file.

    Yields ``("v", line_number, node_id, label)`` and
    ``("e", line_number, u, v)`` tuples one line at a time — never the
    whole file — raising :class:`~repro.exceptions.GraphError` with the
    offending line number on malformed lines.  This is the single parser
    shared by :func:`read_edgelist` (dict-backed graphs) and
    :func:`repro.io.stream.build_mmap_graph` (out-of-core ingestion);
    semantic checks (duplicate nodes, undeclared endpoints) belong to
    the consumers, which keep the line number for their messages.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if parts[0] == "v" and len(parts) == 3:
                yield "v", line_number, _unescape(parts[1]), _unescape(parts[2])
            elif parts[0] == "e" and len(parts) == 3:
                yield "e", line_number, _unescape(parts[1]), _unescape(parts[2])
            else:
                raise GraphError(f"{path}:{line_number}: malformed line {line!r}")


def read_edgelist(path: str | Path, labelset: LabelSet | None = None) -> HeteroGraph:
    """Read a graph from the labelled edge-list format.

    Streams the file in two passes instead of buffering an O(edges)
    list: the first pass collects node labels (and validates that every
    edge endpoint was declared on an earlier line), the second feeds
    edges straight into :meth:`HeteroGraph.from_edges` as a generator,
    so peak memory is the graph being built plus one line.

    Raises
    ------
    GraphError
        On malformed lines, edges before their nodes, or duplicate
        nodes — each reported with its line number.
    """
    path = Path(path)
    node_labels: dict[str, str] = {}
    for kind, line_number, first, second in iter_edgelist(path):
        if kind == "v":
            if first in node_labels:
                raise GraphError(f"{path}:{line_number}: duplicate node {first!r}")
            node_labels[first] = second
        else:
            for node in (first, second):
                if node not in node_labels:
                    raise GraphError(
                        f"{path}:{line_number}: edge references undeclared node {node!r}"
                    )

    def edge_stream():
        for kind, _line_number, u, v in iter_edgelist(path):
            if kind == "e":
                yield u, v

    return HeteroGraph.from_edges(node_labels, edge_stream(), labelset=labelset)
