"""Labelled edge-list serialisation.

A simple line-oriented text format for heterogeneous graphs:

* node lines: ``v <node-id> <label>``
* edge lines: ``e <node-id> <node-id>``
* ``#`` starts a comment; blank lines are ignored.

Node ids are URL-style percent-escaped so ids containing whitespace
round-trip.  This is the interchange format the examples use to hand
networks to and from external tools.
"""

from __future__ import annotations

from pathlib import Path
from urllib.parse import quote, unquote

from repro.core.graph import HeteroGraph
from repro.core.labels import LabelSet
from repro.exceptions import GraphError


def _escape(token: str) -> str:
    return quote(str(token), safe="")


def _unescape(token: str) -> str:
    return unquote(token)


def write_edgelist(graph: HeteroGraph, path: str | Path) -> None:
    """Write a graph to the labelled edge-list format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write("# heterogeneous labelled edge list\n")
        handle.write(f"# labels: {' '.join(_escape(n) for n in graph.labelset.names)}\n")
        for index, node_id in enumerate(graph.node_ids):
            label = graph.labelset.name(graph.label_of(index))
            handle.write(f"v {_escape(node_id)} {_escape(label)}\n")
        for u, v in graph.edges():
            handle.write(f"e {_escape(graph.node_id(u))} {_escape(graph.node_id(v))}\n")


def read_edgelist(path: str | Path, labelset: LabelSet | None = None) -> HeteroGraph:
    """Read a graph from the labelled edge-list format.

    Raises
    ------
    GraphError
        On malformed lines, edges before their nodes, or duplicate nodes.
    """
    path = Path(path)
    node_labels: dict[str, str] = {}
    edges: list[tuple[str, str]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if parts[0] == "v" and len(parts) == 3:
                node_id = _unescape(parts[1])
                if node_id in node_labels:
                    raise GraphError(f"{path}:{line_number}: duplicate node {node_id!r}")
                node_labels[node_id] = _unescape(parts[2])
            elif parts[0] == "e" and len(parts) == 3:
                u, v = _unescape(parts[1]), _unescape(parts[2])
                for node in (u, v):
                    if node not in node_labels:
                        raise GraphError(
                            f"{path}:{line_number}: edge references undeclared node {node!r}"
                        )
                edges.append((u, v))
            else:
                raise GraphError(f"{path}:{line_number}: malformed line {line!r}")
    return HeteroGraph.from_edges(node_labels, edges, labelset=labelset)
