"""JSON serialisation of graphs and extracted feature spaces.

Graphs serialise to a stable ``{"labels": [...], "nodes": [...],
"edges": [...]}`` document.  Feature spaces (census vocabularies) serialise
alongside count matrices so an extraction can be persisted and re-loaded
without re-running the census — useful because the census dominates
end-to-end runtime (Table 3).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.encoding import CanonicalCode, code_to_string, string_to_code
from repro.core.features import FeatureSpace, SubgraphFeatures
from repro.core.graph import HeteroGraph
from repro.core.labels import LabelSet
from repro.exceptions import FeatureError


def graph_to_dict(graph: HeteroGraph) -> dict:
    """Plain-dict form of a graph (JSON-ready)."""
    return {
        "labels": list(graph.labelset.names),
        "nodes": [
            {"id": str(node_id), "label": graph.labelset.name(graph.label_of(i))}
            for i, node_id in enumerate(graph.node_ids)
        ],
        "edges": [
            [str(graph.node_id(u)), str(graph.node_id(v))] for u, v in graph.edges()
        ],
    }


def graph_from_dict(document: dict) -> HeteroGraph:
    """Inverse of :func:`graph_to_dict`."""
    labelset = LabelSet(tuple(document["labels"]))
    node_labels = {node["id"]: node["label"] for node in document["nodes"]}
    edges = [tuple(edge) for edge in document["edges"]]
    return HeteroGraph.from_edges(node_labels, edges, labelset=labelset)


def write_graph_json(graph: HeteroGraph, path: str | Path) -> None:
    Path(path).write_text(json.dumps(graph_to_dict(graph)), encoding="utf-8")


def read_graph_json(path: str | Path) -> HeteroGraph:
    return graph_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def features_to_dict(features: SubgraphFeatures, labelset: LabelSet) -> dict:
    """Serialise a feature matrix with its vocabulary.

    Vocabulary keys must be canonical codes (the census default); they are
    stored in the readable string form of :mod:`repro.core.encoding`.
    """
    keys = []
    for key in features.space.keys:
        if not isinstance(key, tuple):
            raise FeatureError(
                "only canonical-code feature spaces can be serialised; "
                "run the census with key='canonical'"
            )
        keys.append(code_to_string(key, labelset))
    return {
        "labels": list(labelset.names),
        "codes": keys,
        "nodes": list(features.nodes),
        "matrix": features.matrix.tolist(),
    }


def features_from_dict(document: dict) -> SubgraphFeatures:
    """Inverse of :func:`features_to_dict`."""
    labelset = LabelSet(tuple(document["labels"]))
    codes: list[CanonicalCode] = [
        string_to_code(text, labelset) for text in document["codes"]
    ]
    space = FeatureSpace(codes)
    matrix = np.asarray(document["matrix"], dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != len(space):
        raise FeatureError(
            f"matrix shape {matrix.shape} does not match {len(space)} codes"
        )
    return SubgraphFeatures(matrix, space, tuple(int(n) for n in document["nodes"]))


def write_features_json(
    features: SubgraphFeatures, labelset: LabelSet, path: str | Path
) -> None:
    Path(path).write_text(
        json.dumps(features_to_dict(features, labelset)), encoding="utf-8"
    )


def read_features_json(path: str | Path) -> SubgraphFeatures:
    return features_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
