"""GraphML import/export via networkx.

GraphML is the lingua franca of graph tools (Gephi, igraph, yEd); this
adapter lets heterogeneous networks flow in and out of the library with
node labels stored in a configurable attribute (``label`` by default).
"""

from __future__ import annotations

from pathlib import Path

from repro.core.graph import HeteroGraph
from repro.core.labels import LabelSet
from repro.exceptions import GraphError


def write_graphml(graph: HeteroGraph, path: str | Path, label_attr: str = "label") -> None:
    """Write a graph to GraphML with labels in ``label_attr``."""
    import networkx as nx

    nxg = graph.to_networkx()
    if label_attr != "label":
        for _node, data in nxg.nodes(data=True):
            data[label_attr] = data.pop("label")
    nx.write_graphml(nxg, str(path))


def read_graphml(
    path: str | Path,
    label_attr: str = "label",
    labelset: LabelSet | None = None,
) -> HeteroGraph:
    """Read a GraphML file whose nodes carry ``label_attr``.

    Raises
    ------
    GraphError
        If the file contains a directed graph or unlabelled nodes.
    """
    import networkx as nx

    nxg = nx.read_graphml(str(path))
    if nxg.is_directed():
        raise GraphError(
            "GraphML file contains a directed graph; HeteroGraph is "
            "undirected (see repro.extensions for directed features)"
        )
    return HeteroGraph.from_networkx(nxg, label_attr=label_attr, labelset=labelset)
