"""Serialisation of heterogeneous graphs and extracted features."""

from repro.io.edgelist import iter_edgelist, read_edgelist, write_edgelist
from repro.io.graphml import read_graphml, write_graphml
from repro.io.jsongraph import (
    features_from_dict,
    features_to_dict,
    graph_from_dict,
    graph_to_dict,
    read_features_json,
    read_graph_json,
    write_features_json,
    write_graph_json,
)
from repro.io.stream import (
    build_mmap_graph,
    census_stream,
    to_mmap_graph,
    write_mmap_graph,
)

__all__ = [
    "build_mmap_graph",
    "census_stream",
    "features_from_dict",
    "features_to_dict",
    "graph_from_dict",
    "graph_to_dict",
    "iter_edgelist",
    "read_edgelist",
    "read_features_json",
    "read_graph_json",
    "read_graphml",
    "to_mmap_graph",
    "write_edgelist",
    "write_graphml",
    "write_features_json",
    "write_graph_json",
    "write_mmap_graph",
]
