"""Serialisation of heterogeneous graphs and extracted features."""

from repro.io.edgelist import read_edgelist, write_edgelist
from repro.io.graphml import read_graphml, write_graphml
from repro.io.jsongraph import (
    features_from_dict,
    features_to_dict,
    graph_from_dict,
    graph_to_dict,
    read_features_json,
    read_graph_json,
    write_features_json,
    write_graph_json,
)

__all__ = [
    "features_from_dict",
    "features_to_dict",
    "graph_from_dict",
    "graph_to_dict",
    "read_edgelist",
    "read_features_json",
    "read_graph_json",
    "read_graphml",
    "write_edgelist",
    "write_graphml",
    "write_features_json",
    "write_graph_json",
]
