"""Out-of-core graph ingestion and the streaming census pipeline.

Three pieces, composing into a pipeline whose peak RSS is flat in graph
size (the RSS model is asserted end to end by
``benchmarks/test_perf_census_mmap.py``):

* :func:`build_mmap_graph` — a two-pass external-sort ingester turning a
  labelled edge list of arbitrary size into a ``.hmg`` file
  (:mod:`repro.core.mmap_graph`) in bounded memory: edges are spilled to
  sorted chunk runs and k-way merged, so the full adjacency never exists
  in RAM.  Memory is O(nodes) for labels/degrees/id lookup plus
  O(chunk_edges) for the run being sorted — never O(edges).
* :func:`write_mmap_graph` — dumps an in-memory graph to the same
  format (conversion hook for ``--mmap-graph`` on existing pipelines).
* :func:`census_stream` — a chunked root-batch driver: roots are
  censused ``batch_size`` at a time through
  :class:`~repro.core.features.SubgraphFeatureExtractor.census_many`
  (any engine, any ``n_jobs``; results spill into the context's
  :class:`~repro.runtime.store.ArtifactStore` census stage), and the
  generator hands back one batch of rows at a time instead of
  materialising a census list for every root.
"""

from __future__ import annotations

import atexit
import heapq
import os
import tempfile
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.core.census import CensusConfig
from repro.core.features import SubgraphFeatureExtractor
from repro.core.graph import fingerprint_adjacency
from repro.core.labels import LabelSet
from repro.core.mmap_graph import HMG_SUFFIX, HmgWriter, MmapGraph, encode_node_ids
from repro.exceptions import FeatureError, GraphError
from repro.io.edgelist import iter_edgelist
from repro.obs.telemetry import get_telemetry
from repro.runtime.context import RunContext

#: Undirected edges per external-sort run (each run holds both
#: orientations, i.e. ``2 * chunk`` records of four int64s).
DEFAULT_CHUNK_EDGES = 1 << 18

_FLUSH_VALUES = 1 << 16  # buffered int64s before a sequential write


def write_mmap_graph(graph, path, *, store_ids: bool = True) -> Path:
    """Dump an in-memory graph to a ``.hmg`` file.

    Works for any graph exposing the flat-adjacency contract plus
    ``fingerprint()`` (``HeteroGraph``, ``MmapGraph``, partition
    shards).  ``store_ids=False`` skips the external-id sections for
    graphs addressed purely by index.  Returns the written path; open
    it with :class:`~repro.core.mmap_graph.MmapGraph`.
    """
    flat = graph.flat()
    ids_blob_len = None
    offsets = blob = None
    if store_ids:
        try:
            ids = graph.node_ids
        except (AttributeError, GraphError):
            ids = range(graph.num_nodes)
        offsets, blob = encode_node_ids(list(ids))
        ids_blob_len = len(blob)
    writer = HmgWriter(
        path,
        label_names=graph.labelset.names,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        ids_blob_len=ids_blob_len,
    )
    try:
        writer.append("labels", flat.labels)
        writer.append("degrees", flat.degrees)
        writer.append("indptr", flat.indptr)
        writer.append("neighbors", flat.neighbors)
        writer.append("edge_ids", flat.edge_ids)
        writer.append("edge_u", flat.edge_u)
        writer.append("edge_v", flat.edge_v)
        if store_ids:
            writer.append("id_offsets", offsets)
            writer.append_blob("id_blob", blob)
        return writer.finalize(graph.fingerprint())
    except BaseException:
        writer.abort()
        raise


def _unlink_quietly(path: Path) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def to_mmap_graph(graph, out_path=None, *, store_ids: bool = True) -> MmapGraph:
    """Materialise a graph as an opened :class:`MmapGraph`.

    The conversion hook behind the ``--mmap-graph`` CLI flag and the
    rank experiment's ``storage="mmap"`` knob.  With ``out_path=None``
    the ``.hmg`` goes to a temp file that is removed at interpreter
    exit — *not* when the graph is closed, because worker pools re-open
    the mapping by path and must still find the file mid-run.  Returns
    ``graph`` unchanged when it already is an :class:`MmapGraph`.
    """
    if isinstance(graph, MmapGraph):
        return graph
    if out_path is None:
        handle, name = tempfile.mkstemp(prefix="repro-graph-", suffix=HMG_SUFFIX)
        os.close(handle)
        out_path = Path(name)
        atexit.register(_unlink_quietly, out_path)
    return MmapGraph(write_mmap_graph(graph, out_path, store_ids=store_ids))


class _EdgeSpiller:
    """Accumulates directed edge records and spills sorted runs to disk.

    Records are ``(src, dst_label, dst, edge_id)`` — sorting a run by
    its first three fields and k-way merging all runs yields the final
    flat adjacency in exactly the census order (per node, neighbours
    sorted by label then index) in one sequential sweep.
    """

    def __init__(self, tmp_dir: Path, chunk_edges: int) -> None:
        self._dir = tmp_dir
        self._limit = 2 * chunk_edges
        self._src: list[int] = []
        self._lbl: list[int] = []
        self._dst: list[int] = []
        self._eid: list[int] = []
        self.runs: list[Path] = []

    def add(self, src: int, dst: int, dst_label: int, eid: int) -> None:
        self._src.append(src)
        self._lbl.append(dst_label)
        self._dst.append(dst)
        self._eid.append(eid)
        if len(self._src) >= self._limit:
            self.flush()

    def flush(self) -> None:
        if not self._src:
            return
        arr = np.empty((len(self._src), 4), dtype=np.int64)
        arr[:, 0] = self._src
        arr[:, 1] = self._lbl
        arr[:, 2] = self._dst
        arr[:, 3] = self._eid
        order = np.lexsort((arr[:, 2], arr[:, 1], arr[:, 0]))
        run_path = self._dir / f"run-{len(self.runs):06d}.npy"
        np.save(run_path, arr[order])
        self.runs.append(run_path)
        self._src.clear()
        self._lbl.clear()
        self._dst.clear()
        self._eid.clear()

    def merged(self) -> Iterator[list]:
        """All records across runs in ``(src, label, dst)`` order.

        Merge memory is ``O(runs * block)`` decoded records — every run
        keeps one block buffered — so the block is kept small; the runs
        themselves stay on disk behind ``np.load(mmap_mode="r")``.
        """
        self.flush()

        def rows(path: Path, block: int = 2048) -> Iterator[list]:
            arr = np.load(path, mmap_mode="r")
            for start in range(0, arr.shape[0], block):
                yield from arr[start: start + block].tolist()

        return heapq.merge(*(rows(path) for path in self.runs))


def build_mmap_graph(
    edgelist_path,
    out_path,
    *,
    labelset: LabelSet | None = None,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    store_ids: bool = True,
    tmp_dir=None,
) -> Path:
    """Stream a labelled edge list into a ``.hmg`` mmap graph file.

    Two passes, both in bounded memory:

    1. one sweep over the file (via the shared line parser
       :func:`repro.io.edgelist.iter_edgelist`) collects node
       labels/degrees, assigns edge ids in file order, and spills both
       orientations of every edge into lexsorted runs of at most
       ``2 * chunk_edges`` records;
    2. a k-way merge of the runs emits the flat adjacency in census
       order, writing ``neighbors``/``edge_ids`` sequentially while
       folding each row into the graph fingerprint — the same content
       hash the dict-backed graph computes, so both storages share
       ArtifactStore keys.

    Malformed lines, duplicate/undeclared nodes, and self loops are
    reported with their line number; duplicate edges are caught during
    the merge.  The output file appears atomically (temp + rename).
    Returns the written path.
    """
    if chunk_edges < 1:
        raise GraphError(f"chunk_edges must be >= 1, got {chunk_edges}")
    edgelist_path = Path(edgelist_path)
    out_path = Path(out_path)
    telemetry = get_telemetry()

    derive_labels = labelset is None
    label_index: dict[str, int] = (
        {} if derive_labels else {name: i for i, name in enumerate(labelset.names)}
    )
    label_names: list[str] = [] if derive_labels else list(labelset.names)
    ids: list = []
    index_of: dict = {}
    labels: list[int] = []
    degrees: list[int] = []

    with tempfile.TemporaryDirectory(
        prefix="hmg-ingest-", dir=tmp_dir
    ) as scratch_name:
        scratch = Path(scratch_name)
        spiller = _EdgeSpiller(scratch, chunk_edges)
        num_edges = 0
        endpoint_buf: list[int] = []  # interleaved (u, v) pairs
        endpoints_path = scratch / "endpoints.bin"

        with telemetry.span("ingest/scan"), open(endpoints_path, "wb") as endpoints:

            def flush_endpoints() -> None:
                if endpoint_buf:
                    endpoints.write(
                        np.asarray(endpoint_buf, dtype="<i8").tobytes()
                    )
                    endpoint_buf.clear()

            for kind, line_number, first, second in iter_edgelist(edgelist_path):
                if kind == "v":
                    if first in index_of:
                        raise GraphError(
                            f"{edgelist_path}:{line_number}: duplicate node {first!r}"
                        )
                    label = label_index.get(second)
                    if label is None:
                        if not derive_labels:
                            raise GraphError(
                                f"{edgelist_path}:{line_number}: label {second!r} "
                                "is not in the supplied labelset"
                            )
                        label = len(label_names)
                        label_index[second] = label
                        label_names.append(second)
                    index_of[first] = len(ids)
                    ids.append(first)
                    labels.append(label)
                    degrees.append(0)
                    continue
                if first == second:
                    raise GraphError(
                        f"{edgelist_path}:{line_number}: self loop on node "
                        f"{first!r} is not allowed"
                    )
                try:
                    ui, vi = index_of[first], index_of[second]
                except KeyError as exc:
                    raise GraphError(
                        f"{edgelist_path}:{line_number}: edge references "
                        f"undeclared node {exc.args[0]!r}"
                    ) from None
                eid = num_edges
                num_edges += 1
                degrees[ui] += 1
                degrees[vi] += 1
                spiller.add(ui, vi, labels[vi], eid)
                spiller.add(vi, ui, labels[ui], eid)
                lo, hi = (ui, vi) if ui < vi else (vi, ui)
                endpoint_buf.append(lo)
                endpoint_buf.append(hi)
                if len(endpoint_buf) >= _FLUSH_VALUES:
                    flush_endpoints()
            flush_endpoints()

        num_nodes = len(ids)
        labels_arr = np.asarray(labels, dtype=np.int64)
        degrees_arr = np.asarray(degrees, dtype=np.int64)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(degrees_arr, out=indptr[1:])
        del labels, degrees

        ids_blob_len = None
        id_offsets = id_blob = None
        if store_ids:
            id_offsets, id_blob = encode_node_ids(ids)
            ids_blob_len = len(id_blob)

        writer = HmgWriter(
            out_path,
            label_names=label_names,
            num_nodes=num_nodes,
            num_edges=num_edges,
            ids_blob_len=ids_blob_len,
        )
        try:
            writer.append("labels", labels_arr)
            writer.append("degrees", degrees_arr)
            writer.append("indptr", indptr)

            with telemetry.span("ingest/merge"):
                fingerprint = _merge_adjacency(
                    writer, spiller, labels_arr, degrees_arr,
                    LabelSet(tuple(label_names)), ids, num_nodes,
                )

            with open(endpoints_path, "rb") as handle:
                while True:
                    block = np.fromfile(handle, dtype="<i8", count=_FLUSH_VALUES)
                    if block.size == 0:
                        break
                    writer.append("edge_u", block[0::2])
                    writer.append("edge_v", block[1::2])
            if store_ids:
                writer.append("id_offsets", id_offsets)
                writer.append_blob("id_blob", id_blob)
            result = writer.finalize(fingerprint)
        except BaseException:
            writer.abort()
            raise

    telemetry.count("ingest/nodes", num_nodes)
    telemetry.count("ingest/edges", num_edges)
    telemetry.count("ingest/sort_runs", len(spiller.runs))
    return result


def _merge_adjacency(
    writer: HmgWriter,
    spiller: _EdgeSpiller,
    labels_arr: np.ndarray,
    degrees_arr: np.ndarray,
    labelset: LabelSet,
    ids: list,
    num_nodes: int,
) -> str:
    """K-way merge the sorted runs into the CSR sections; return the
    graph fingerprint (folded row by row as the rows are written)."""

    neigh_buf: list[int] = []
    eid_buf: list[int] = []

    def flush() -> None:
        if neigh_buf:
            writer.append("neighbors", neigh_buf)
            neigh_buf.clear()
            writer.append("edge_ids", eid_buf)
            eid_buf.clear()

    def rows() -> Iterator[np.ndarray]:
        current = 0
        row: list[int] = []
        prev_dst = -1
        for src, _dst_label, dst, eid in spiller.merged():
            if src != current:
                while current < src:
                    yield np.asarray(row, dtype=np.int64)
                    row = []
                    prev_dst = -1
                    current += 1
            elif dst == prev_dst:
                raise GraphError(
                    f"duplicate edge ({ids[src]!r}, {ids[dst]!r})"
                )
            row.append(dst)
            prev_dst = dst
            neigh_buf.append(dst)
            eid_buf.append(eid)
            if len(neigh_buf) >= _FLUSH_VALUES:
                flush()
        while current < num_nodes:
            yield np.asarray(row, dtype=np.int64)
            row = []
            prev_dst = -1
            current += 1

    fingerprint = fingerprint_adjacency(labelset, labels_arr, rows())
    flush()
    return fingerprint


def census_stream(
    graph,
    roots: Iterable[int],
    config: CensusConfig | None = None,
    *,
    batch_size: int = 1024,
    ctx: RunContext | None = None,
    engine: str | None = None,
    n_jobs: int | None = None,
    partitions: int | None = None,
    sampled=None,
    mp_context=None,
) -> Iterator[tuple[int, "Counter"]]:
    """Census roots in bounded batches, yielding ``(root, census)`` pairs.

    The item-sampler half of the out-of-core pipeline: ``roots`` may be
    any iterable (a generator over a node range, a file of ids, ...);
    only one ``batch_size`` window of roots and results is ever alive in
    this process.  Each batch runs through
    :meth:`~repro.core.features.SubgraphFeatureExtractor.census_many`,
    so every engine, ``n_jobs`` fan-out, partitioned dispatch, and the
    dedup/cache discipline behave exactly as in the list-at-once path —
    and when ``ctx`` carries an :class:`~repro.runtime.store.ArtifactStore`,
    each batch's rows are spilled into its census stage as they are
    computed, which is what keeps warm re-runs and downstream feature
    builds from re-censusing.

    Pairs are yielded in input order.  With an
    :class:`~repro.core.mmap_graph.MmapGraph` the worker pools re-open
    the mapping per process instead of unpickling a graph, so parallel
    batches neither copy the graph nor grow RSS with graph size.
    """
    if batch_size < 1:
        raise FeatureError(f"batch_size must be >= 1, got {batch_size}")
    extractor = SubgraphFeatureExtractor(
        config,
        sampled=sampled,
        partitions=partitions,
        ctx=RunContext.ensure(ctx, engine=engine, n_jobs=n_jobs),
        mp_context=mp_context,
    )
    telemetry = get_telemetry()
    batch: list[int] = []

    def run_batch() -> Iterator[tuple[int, "Counter"]]:
        telemetry.count("census/stream_batches")
        telemetry.count("census/stream_roots", len(batch))
        return zip(tuple(batch), extractor.census_many(graph, batch))

    for root in roots:
        batch.append(int(root))
        if len(batch) >= batch_size:
            yield from run_batch()
            batch.clear()
    if batch:
        yield from run_batch()
