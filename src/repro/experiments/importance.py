"""Discriminative-subgraph analysis (Section 4.2.5, Figure 4).

Trains the random-forest regressor on subgraph features per conference and
decodes the most important feature columns back into labelled subgraphs —
the analysis that lets the paper observe, e.g., that cross-institution
collaboration structures predict institutional relevance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.census import CensusConfig, effective_labelset
from repro.core.interpret import RankedFeature, rank_features
from repro.datasets.mag import SyntheticMAG
from repro.experiments.rank_prediction import RankPredictionExperiment, RankTaskConfig


@dataclass
class ImportanceReport:
    """Top discriminative subgraphs for one conference."""

    conference: str
    ranking: list[RankedFeature]

    def render(self, labelset) -> str:
        lines = [f"{self.conference}:"]
        for feature in self.ranking:
            lines.append("  " + feature.render(labelset))
        return "\n".join(lines)


def discriminative_subgraphs(
    mag: SyntheticMAG,
    config: RankTaskConfig | None = None,
    conferences=None,
    top: int = 2,
) -> list[ImportanceReport]:
    """Figure 4: the ``top`` most important subgraph features per conference.

    Returns one report per conference with decoded subgraph descriptions
    and random-forest importances.
    """
    experiment = RankPredictionExperiment(mag, config)
    conferences = conferences or experiment.config.conferences or mag.config.conferences
    census_config = CensusConfig(
        max_edges=experiment.config.emax, max_degree=experiment.config.dmax
    )
    reports = []
    for conference in conferences:
        model, space = experiment.fit_forest_on_family(conference, "subgraph")
        graph = experiment._graph(conference, experiment.config.train_years[0] - 1)
        labelset = effective_labelset(graph, census_config)
        ranking = rank_features(
            model.feature_importances_, space, labelset, top=top
        )
        reports.append(ImportanceReport(conference, ranking))
    return reports
