"""Classic engineered features for the rank-prediction task (Section 4.2.2).

The paper pits subgraph features against "classic" features engineered with
domain knowledge: eight publication-history features plus 32 linguistically
motivated title features.  This module computes both families from a
:class:`~repro.datasets.mag.SyntheticMAG` world for a given
``(institution, conference, year)`` — always using only information from
*before* the target year, the temporal discipline the task needs.

Feature inventory (names in :data:`CLASSIC_FEATURE_NAMES`):

* (i)/(ii) previous-year relevance, absolute and normalised by accepted
  full papers, plus two further lags for the longer history the paper uses;
* (iii)/(iv) cumulative full-paper and all-paper counts;
* (v) the authorship score: per-author average papers per year, summed over
  the institution's authors;
* (vi)/(vii) distinct full-paper and short-paper author counts;
* (viii) last-author occurrences.

The 32 linguistic features mirror Section 4.2.2: 4 simple aggregates,
8 word-class features (6 class fractions + word-count distribution
aggregates), and the usage of the conference's overall top-20 title words.
POS classes come from the generator's word lexicon, standing in for a
dictionary POS tagger.
"""

from __future__ import annotations

import re
from collections import Counter

import numpy as np

from repro.datasets.mag import (
    SyntheticMAG,
    _ADJECTIVES,
    _ADVERBS,
    _COMMON_NOUNS,
    _NUMBERS,
    _TOPIC_NOUNS,
    _VERBS,
    stopwords,
)

CLASSIC_FEATURE_NAMES = (
    "relevance_lag1",
    "relevance_lag1_normalized",
    "relevance_lag2",
    "relevance_lag3",
    "full_papers_past",
    "all_papers_past",
    "authorship_score",
    "full_paper_authors",
    "short_paper_authors",
    "last_author_count",
)

_WORD_CLASSES = ("noun", "verb", "adjective", "adverb", "number", "punctuation")


def _build_pos_lexicon() -> dict[str, str]:
    lexicon: dict[str, str] = {}
    for words in _TOPIC_NOUNS.values():
        for word in words:
            lexicon[word] = "noun"
    for word in _COMMON_NOUNS:
        lexicon[word] = "noun"
    for word in _VERBS:
        lexicon[word] = "verb"
    for word in _ADJECTIVES:
        lexicon[word] = "adjective"
    for word in _ADVERBS:
        lexicon[word] = "adverb"
    for word in _NUMBERS:
        lexicon[word] = "number"
    return lexicon


_POS_LEXICON = _build_pos_lexicon()
_TOKEN_PATTERN = re.compile(r"[a-z0-9]+|[^\sa-z0-9]")


def tokenize_title(title: str) -> list[str]:
    """Lowercase tokens; punctuation marks survive as single-char tokens."""
    return _TOKEN_PATTERN.findall(title.lower())


def stem(word: str) -> str:
    """Tiny suffix stemmer sufficient for the synthetic vocabulary."""
    for suffix in ("ing", "s"):
        if word.endswith(suffix) and len(word) > len(suffix) + 2:
            return word[: -len(suffix)]
    return word


def pos_class(token: str) -> str:
    """Word class of a token via the lexicon (punctuation by shape)."""
    if token in _POS_LEXICON:
        return _POS_LEXICON[token]
    if token.isdigit():
        return "number"
    if not token.isalnum():
        return "punctuation"
    return "noun"  # open-class default, like a naive tagger backoff


def top_title_words(mag: SyntheticMAG, conference: str, years, top: int = 20) -> list[str]:
    """The conference's overall top-``top`` stemmed, stopword-free title words."""
    counts: Counter = Counter()
    stop = stopwords()
    for year in years:
        for paper_id in mag.papers_by_conf_year.get((conference, year), ()):
            for token in tokenize_title(mag.papers[paper_id].title):
                if token in stop or not token.isalnum():
                    continue
                counts[stem(token)] += 1
    return [word for word, _ in counts.most_common(top)]


class ClassicFeatureExtractor:
    """Computes the classic + linguistic feature matrix for institutions.

    Parameters
    ----------
    mag:
        The synthetic publication world.
    history_years:
        Years available as history (top-20 word lists are computed on these).
    """

    def __init__(self, mag: SyntheticMAG, history_years) -> None:
        self.mag = mag
        self.history_years = tuple(history_years)
        self._top_words = {
            conference: top_title_words(mag, conference, self.history_years)
            for conference in mag.config.conferences
        }
        self._relevance_cache: dict[tuple[str, int], dict[str, float]] = {}

    @property
    def feature_names(self) -> tuple[str, ...]:
        linguistic = (
            "avg_institutions",
            "avg_keywords",
            "avg_title_words",
            "avg_title_chars",
            *(f"fraction_{cls}" for cls in _WORD_CLASSES),
            "avg_distinct_words",
            "type_token_ratio",
            *(f"top_word_{i}" for i in range(20)),
        )
        return CLASSIC_FEATURE_NAMES + linguistic

    # ------------------------------------------------------------------
    def _relevance(self, conference: str, year: int) -> dict[str, float]:
        key = (conference, year)
        if key not in self._relevance_cache:
            self._relevance_cache[key] = self.mag.relevance(conference, year)
        return self._relevance_cache[key]

    def _papers_before(self, conference: str, year: int):
        for past_year in self.history_years:
            if past_year >= year:
                continue
            for paper_id in self.mag.papers_by_conf_year.get((conference, past_year), ()):
                yield self.mag.papers[paper_id]

    def features_for(self, institution: str, conference: str, year: int) -> np.ndarray:
        """Feature vector for one ``(institution, conference, year)`` sample."""
        classic = self._classic_block(institution, conference, year)
        linguistic = self._linguistic_block(institution, conference, year)
        return np.concatenate([classic, linguistic])

    def matrix(self, institutions, conference: str, year: int) -> np.ndarray:
        """Stacked feature matrix for many institutions of one sample year."""
        return np.vstack(
            [self.features_for(inst, conference, year) for inst in institutions]
        )

    # ------------------------------------------------------------------
    def _classic_block(self, institution: str, conference: str, year: int) -> np.ndarray:
        mag = self.mag
        lags = []
        for lag in (1, 2, 3):
            past = year - lag
            if past in self.history_years:
                lags.append(self._relevance(conference, past).get(institution, 0.0))
            else:
                lags.append(0.0)
        full_last = sum(
            1
            for pid in mag.papers_by_conf_year.get((conference, year - 1), ())
            if mag.papers[pid].is_full
        )
        lag1_normalized = lags[0] / full_last if full_last else 0.0

        full_papers = 0
        all_papers = 0
        full_authors: set[str] = set()
        short_authors: set[str] = set()
        last_author_count = 0
        author_years: dict[str, set[int]] = {}
        author_papers: dict[str, int] = {}
        for paper in self._papers_before(conference, year):
            involved = [
                a for a in paper.authors
                if institution in mag.author_affiliations[a]
            ]
            if not involved:
                continue
            all_papers += 1
            if paper.is_full:
                full_papers += 1
                full_authors.update(involved)
            else:
                short_authors.update(involved)
            if institution in mag.author_affiliations[paper.authors[-1]]:
                last_author_count += 1
            for author in involved:
                author_years.setdefault(author, set()).add(paper.year)
                author_papers[author] = author_papers.get(author, 0) + 1

        authorship_score = sum(
            count / len(author_years[author])
            for author, count in author_papers.items()
        )
        return np.array(
            [
                lags[0],
                lag1_normalized,
                lags[1],
                lags[2],
                float(full_papers),
                float(all_papers),
                float(authorship_score),
                float(len(full_authors)),
                float(len(short_authors)),
                float(last_author_count),
            ]
        )

    def _linguistic_block(self, institution: str, conference: str, year: int) -> np.ndarray:
        mag = self.mag
        stop = stopwords()
        papers = [
            paper
            for paper in self._papers_before(conference, year)
            if paper.year == year - 1
            and any(institution in mag.author_affiliations[a] for a in paper.authors)
        ]
        top_words = self._top_words[conference]
        if not papers:
            return np.zeros(12 + len(top_words))

        institutions_per_paper = []
        keywords_per_paper = []
        words_per_title = []
        chars_per_title = []
        class_counts = Counter()
        total_tokens = 0
        distinct_per_title = []
        all_stems: Counter = Counter()
        top_usage = np.zeros(len(top_words))
        for paper in papers:
            institutions_involved = {
                inst for affils in paper.affiliations for inst in affils
            }
            institutions_per_paper.append(len(institutions_involved))
            keywords_per_paper.append(len(paper.keywords))
            tokens = tokenize_title(paper.title)
            content = [t for t in tokens if t not in stop and t.isalnum()]
            stems = [stem(t) for t in content]
            words_per_title.append(len(stems))
            chars_per_title.append(len(paper.title))
            distinct_per_title.append(len(set(stems)))
            for token in tokens:
                class_counts[pos_class(token)] += 1
                total_tokens += 1
            for s in stems:
                all_stems[s] += 1
            for i, word in enumerate(top_words):
                top_usage[i] += stems.count(word)

        fractions = [
            class_counts.get(cls, 0) / total_tokens if total_tokens else 0.0
            for cls in _WORD_CLASSES
        ]
        total_stems = sum(all_stems.values())
        type_token = len(all_stems) / total_stems if total_stems else 0.0
        simple = [
            float(np.mean(institutions_per_paper)),
            float(np.mean(keywords_per_paper)),
            float(np.mean(words_per_title)),
            float(np.mean(chars_per_title)),
        ]
        aggregates = [float(np.mean(distinct_per_title)), float(type_token)]
        return np.concatenate(
            [simple, fractions, aggregates, top_usage / len(papers)]
        )
