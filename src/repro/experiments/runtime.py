"""Feature-extraction runtime measurement (Section 4.3.5, Table 3).

Times the per-node subgraph census (mean plus 75/90/95th percentiles and
max — the paper reports exactly these, because the census runtime follows
the skewed degree distribution) against the per-node cost of the three
embedding baselines (total training time divided by node count, since
embeddings are trained globally rather than per node).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.cache import CensusCache
from repro.core.census import CensusConfig, EngineMode, subgraph_census
from repro.core.graph import HeteroGraph
from repro.experiments.common import (
    EMBEDDING_METHODS,
    EmbeddingParams,
    embedding_matrix,
    percentile_degree,
)
from repro.obs.telemetry import get_telemetry
from repro.runtime.context import RunContext


@dataclass
class RuntimeReport:
    """Per-dataset timing summary, mirroring Table 3's columns.

    ``embedding_engine`` and ``embedding_n_jobs`` record which pipeline
    produced the embedding columns, so Table 3 reproductions are traceable
    to a specific implementation.
    """

    dataset: str
    census_mean: float
    census_p75: float
    census_p90: float
    census_p95: float
    census_max: float
    embedding_mean: dict[str, float]
    num_nodes_timed: int
    embedding_engine: str = "fast"
    embedding_n_jobs: int = 1

    def row(self) -> str:
        cells = [
            f"{self.dataset:<8}",
            f"{self.census_mean:9.4f}",
            f"{self.census_p75:9.4f}",
            f"{self.census_p90:9.4f}",
            f"{self.census_p95:9.4f}",
            f"{self.census_max:9.4f}",
        ]
        for method in EMBEDDING_METHODS:
            # Partial or failed runs legitimately lack methods; a missing
            # column must not crash the whole Table 3 report.
            mean = self.embedding_mean.get(method)
            cells.append(f"{mean:9.5f}" if mean is not None else f"{'n/a':>9}")
        cells.append(
            f"[engine={self.embedding_engine}, n_jobs={self.embedding_n_jobs}]"
        )
        return " ".join(cells)


def time_census_per_node(
    graph: HeteroGraph,
    nodes,
    emax: int = 3,
    dmax_percentile: float = 90.0,
    mask_start_label: bool = True,
    engine: EngineMode = "fast",
    cache: CensusCache | None = None,
) -> np.ndarray:
    """Wall-clock seconds of the rooted census for each node.

    ``engine`` selects the census implementation so the report can
    compare the incremental engine against the reference path on the
    same roots (the perf benchmarks do exactly that).  When ``cache`` is
    given, cached roots are served (and counted as hits) — their rows
    then time the lookup, i.e. the *memoised* runtime — and fresh
    censuses are written back.  Per-root timing also lands in the
    ``census/root_timed`` telemetry timer.
    """
    dmax = percentile_degree(graph, dmax_percentile)
    config = CensusConfig(
        max_edges=emax, max_degree=dmax, mask_start_label=mask_start_label
    )
    telemetry = get_telemetry()
    telemetry.annotate("census/engine", engine)
    graph.flat()  # warm the adjacency snapshot outside the timed region
    times = np.empty(len(nodes))
    for i, node in enumerate(nodes):
        node = int(node)
        started = time.perf_counter()
        counts = cache.get(graph, config, node) if cache is not None else None
        if counts is None:
            counts = subgraph_census(graph, node, config, engine=engine)
            if cache is not None:
                cache.put(graph, config, node, counts)
                telemetry.count("census/cache_misses")
        elif cache is not None:
            telemetry.count("census/cache_hits")
        times[i] = time.perf_counter() - started
        telemetry.timer("census/root_timed", times[i])
    return times


def time_embeddings_per_node(
    graph: HeteroGraph,
    params: EmbeddingParams,
    seed: int = 0,
    engine: str = "fast",
    n_jobs: int = 1,
    ctx: RunContext | None = None,
) -> dict[str, float]:
    """Total embedding training time divided by node count, per method.

    ``engine`` and ``n_jobs`` select the pipeline being timed; the report
    row records them so runs with different pipelines stay comparable.
    When ``ctx`` carries an artifact store, warm reruns time the memoised
    lookup (same caveat as the census cache).
    """
    telemetry = get_telemetry()
    telemetry.annotate("embed/engine", engine)
    per_node = {}
    probe = [0]
    for method in EMBEDDING_METHODS:
        with telemetry.span(f"phase/embed_{method}") as span:
            embedding_matrix(
                graph,
                probe,
                method,
                params,
                seed=seed,
                engine=engine,
                n_jobs=n_jobs,
                ctx=ctx,
            )
        per_node[method] = span.elapsed / graph.num_nodes
    return per_node


def runtime_report(
    dataset: str,
    graph: HeteroGraph,
    nodes,
    emax: int = 3,
    dmax_percentile: float = 90.0,
    embedding_params: EmbeddingParams | None = None,
    seed: int = 0,
    engine: EngineMode = "fast",
    embedding_engine: str = "fast",
    embedding_n_jobs: int = 1,
    census_cache: CensusCache | None = None,
    ctx: RunContext | None = None,
) -> RuntimeReport:
    """Build one Table 3 row for a dataset.

    ``engine`` selects the census implementation, ``embedding_engine`` and
    ``embedding_n_jobs`` the embedding pipeline; both are recorded.  The
    census and embedding phases land in the ``phase/*`` telemetry timers
    the run manifest reports.  A context store supplies the census cache
    (when ``census_cache`` is not given) and embedding memoisation.
    """
    ctx = RunContext.ensure(ctx)
    if census_cache is None and ctx.store is not None:
        census_cache = CensusCache.over(ctx.store)
    telemetry = get_telemetry()
    with telemetry.span("phase/census"):
        times = time_census_per_node(
            graph, nodes, emax, dmax_percentile, engine=engine, cache=census_cache
        )
    params = embedding_params if embedding_params is not None else EmbeddingParams.fast()
    with telemetry.span("phase/embeddings"):
        embedding_mean = time_embeddings_per_node(
            graph,
            params,
            seed=seed,
            engine=embedding_engine,
            n_jobs=embedding_n_jobs,
            ctx=RunContext(store=ctx.store),
        )
    return RuntimeReport(
        dataset=dataset,
        census_mean=float(times.mean()),
        census_p75=float(np.percentile(times, 75)),
        census_p90=float(np.percentile(times, 90)),
        census_p95=float(np.percentile(times, 95)),
        census_max=float(times.max()),
        embedding_mean=embedding_mean,
        num_nodes_timed=len(nodes),
        embedding_engine=embedding_engine,
        embedding_n_jobs=embedding_n_jobs,
    )
