"""Shared experiment plumbing: embedding parameter presets and helpers.

The paper runs every embedding baseline with its recommended defaults
(``d=128, r=10, l=80, k=10, p=q=1, K=5``).  Those are faithful but slow for
a pure-Python trainer, so experiments accept an :class:`EmbeddingParams`
preset: :meth:`EmbeddingParams.paper` reproduces the defaults,
:meth:`EmbeddingParams.fast` scales them down for bench runs.  Which preset
an experiment used is recorded in its result object.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graph import HeteroGraph
from repro.embeddings import LINE, DeepWalk, Node2Vec
from repro.runtime.context import RunContext
from repro.runtime.store import STAGE_EMBED

EMBEDDING_METHODS = ("node2vec", "deepwalk", "line")


@dataclass(frozen=True)
class EmbeddingParams:
    """Hyper-parameters shared by the three embedding baselines."""

    dim: int = 128
    num_walks: int = 10
    walk_length: int = 80
    window: int = 10
    negative: int = 5
    p: float = 1.0
    q: float = 1.0
    line_samples: int | None = None

    @classmethod
    def paper(cls) -> "EmbeddingParams":
        """The recommended defaults of Section 4.2.2."""
        return cls()

    @classmethod
    def fast(cls) -> "EmbeddingParams":
        """Scaled-down preset for bench harnesses (documented deviation)."""
        return cls(
            dim=32,
            num_walks=4,
            walk_length=15,
            window=5,
            negative=5,
            line_samples=40_000,
        )


def _embed_key(
    method: str, params: EmbeddingParams, seed: int, engine: str, nodes: np.ndarray
) -> tuple:
    """The embed-stage cache config for one trained baseline.

    Includes every value the matrix depends on — method, all preset
    fields, the offset seed, the engine (fast/reference SGNS matrices are
    *not* bit-identical), and the requested node rows.  ``n_jobs`` is
    deliberately absent: every worker count trains the same matrix.
    """
    return (
        method,
        params.dim,
        params.num_walks,
        params.walk_length,
        params.window,
        params.negative,
        params.p,
        params.q,
        params.line_samples,
        int(seed),
        engine,
        tuple(int(n) for n in nodes),
    )


def embedding_matrix(
    graph: HeteroGraph,
    nodes,
    method: str,
    params: EmbeddingParams,
    seed: int = 0,
    engine: str | None = None,
    n_jobs: int | None = None,
    ctx: RunContext | None = None,
) -> np.ndarray:
    """Train one embedding baseline on ``graph`` and return rows for ``nodes``.

    Parameters
    ----------
    method:
        One of ``"node2vec"``, ``"deepwalk"``, ``"line"``.
    engine:
        ``"fast"`` or ``"reference"`` pipeline, forwarded to the model.
    n_jobs:
        Worker processes for corpus generation (walk methods) or order
        training (LINE); never changes the result.
    ctx:
        Optional :class:`~repro.runtime.context.RunContext`; supplies
        engine/n_jobs defaults, and when it carries an artifact store the
        trained matrix is cached under the ``"embed"`` stage so a warm
        rerun skips the walk and SGNS work entirely.
    """
    ctx = RunContext.ensure(ctx, engine=engine, n_jobs=n_jobs)
    engine = ctx.resolve_engine(("fast", "reference"), default="fast")
    n_jobs = ctx.resolved_n_jobs(default=1)
    nodes = np.asarray(nodes, dtype=np.int64)
    # With the paper defaults (p = q = 1) node2vec's walks coincide with
    # DeepWalk's; a per-method seed offset keeps their random streams
    # distinct, as independent reference implementations would be.
    seed = seed + {"deepwalk": 0, "node2vec": 101, "line": 202}.get(method, 0)
    store = ctx.store
    embed_config = None
    if store is not None:
        embed_config = _embed_key(method, params, seed, engine, nodes)
        cached = store.get(graph.fingerprint(), STAGE_EMBED, embed_config)
        if cached is not None:
            return cached
    if method == "deepwalk":
        model = DeepWalk(
            dim=params.dim,
            num_walks=params.num_walks,
            walk_length=params.walk_length,
            window=params.window,
            negative=params.negative,
            seed=seed,
            engine=engine,
            n_jobs=n_jobs,
            ctx=ctx,
        )
    elif method == "node2vec":
        model = Node2Vec(
            dim=params.dim,
            num_walks=params.num_walks,
            walk_length=params.walk_length,
            window=params.window,
            negative=params.negative,
            p=params.p,
            q=params.q,
            seed=seed,
            engine=engine,
            n_jobs=n_jobs,
            ctx=ctx,
        )
    elif method == "line":
        model = LINE(
            dim=params.dim,
            num_samples=params.line_samples,
            negative=params.negative,
            seed=seed,
            engine=engine,
            n_jobs=n_jobs,
            ctx=ctx,
        )
    else:
        raise ValueError(f"unknown embedding method {method!r}")
    matrix = model.fit_transform(graph, nodes)
    if store is not None:
        store.put(graph.fingerprint(), STAGE_EMBED, embed_config, matrix)
    return matrix


def percentile_degree(graph: HeteroGraph, percentile: float) -> int | None:
    """Degree value at a percentile of the degree distribution.

    ``percentile >= 100`` means "no cap" and returns ``None`` — Table 2's
    100% column, where the paper's extraction "did not finish" on the big
    networks.
    """
    if percentile >= 100.0:
        return None
    degrees = graph.degrees()
    return int(np.percentile(degrees, percentile))
