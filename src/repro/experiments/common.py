"""Shared experiment plumbing: embedding parameter presets and helpers.

The paper runs every embedding baseline with its recommended defaults
(``d=128, r=10, l=80, k=10, p=q=1, K=5``).  Those are faithful but slow for
a pure-Python trainer, so experiments accept an :class:`EmbeddingParams`
preset: :meth:`EmbeddingParams.paper` reproduces the defaults,
:meth:`EmbeddingParams.fast` scales them down for bench runs.  Which preset
an experiment used is recorded in its result object.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graph import HeteroGraph
from repro.embeddings import LINE, DeepWalk, Node2Vec

EMBEDDING_METHODS = ("node2vec", "deepwalk", "line")


@dataclass(frozen=True)
class EmbeddingParams:
    """Hyper-parameters shared by the three embedding baselines."""

    dim: int = 128
    num_walks: int = 10
    walk_length: int = 80
    window: int = 10
    negative: int = 5
    p: float = 1.0
    q: float = 1.0
    line_samples: int | None = None

    @classmethod
    def paper(cls) -> "EmbeddingParams":
        """The recommended defaults of Section 4.2.2."""
        return cls()

    @classmethod
    def fast(cls) -> "EmbeddingParams":
        """Scaled-down preset for bench harnesses (documented deviation)."""
        return cls(
            dim=32,
            num_walks=4,
            walk_length=15,
            window=5,
            negative=5,
            line_samples=40_000,
        )


def embedding_matrix(
    graph: HeteroGraph,
    nodes,
    method: str,
    params: EmbeddingParams,
    seed: int = 0,
    engine: str = "fast",
    n_jobs: int = 1,
) -> np.ndarray:
    """Train one embedding baseline on ``graph`` and return rows for ``nodes``.

    Parameters
    ----------
    method:
        One of ``"node2vec"``, ``"deepwalk"``, ``"line"``.
    engine:
        ``"fast"`` or ``"reference"`` pipeline, forwarded to the model.
    n_jobs:
        Worker processes for corpus generation (walk methods) or order
        training (LINE); never changes the result.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    # With the paper defaults (p = q = 1) node2vec's walks coincide with
    # DeepWalk's; a per-method seed offset keeps their random streams
    # distinct, as independent reference implementations would be.
    seed = seed + {"deepwalk": 0, "node2vec": 101, "line": 202}.get(method, 0)
    if method == "deepwalk":
        model = DeepWalk(
            dim=params.dim,
            num_walks=params.num_walks,
            walk_length=params.walk_length,
            window=params.window,
            negative=params.negative,
            seed=seed,
            engine=engine,
            n_jobs=n_jobs,
        )
    elif method == "node2vec":
        model = Node2Vec(
            dim=params.dim,
            num_walks=params.num_walks,
            walk_length=params.walk_length,
            window=params.window,
            negative=params.negative,
            p=params.p,
            q=params.q,
            seed=seed,
            engine=engine,
            n_jobs=n_jobs,
        )
    elif method == "line":
        model = LINE(
            dim=params.dim,
            num_samples=params.line_samples,
            negative=params.negative,
            seed=seed,
            engine=engine,
            n_jobs=n_jobs,
        )
    else:
        raise ValueError(f"unknown embedding method {method!r}")
    return model.fit_transform(graph, nodes)


def percentile_degree(graph: HeteroGraph, percentile: float) -> int | None:
    """Degree value at a percentile of the degree distribution.

    ``percentile >= 100`` means "no cap" and returns ``None`` — Table 2's
    100% column, where the paper's extraction "did not finish" on the big
    networks.
    """
    if percentile >= 100.0:
        return None
    degrees = graph.degrees()
    return int(np.percentile(degrees, percentile))
