"""Rank-prediction evaluation (Section 4.2, Figure 3, Table 1).

Predicts next-year institution relevance per conference from features of
the preceding year and evaluates NDCG\\@20 against the planted KDD-Cup-style
ground truth of :class:`~repro.datasets.mag.SyntheticMAG`.

Temporal protocol: a sample is ``(institution, conference, year)``.  Its
features come from year ``y - 1`` (publication-history features, the
``y - 1`` conference graph for subgraph and embedding features) and its
target is the relevance in year ``y``.  Training uses ``train_years``,
testing the final year — the paper trains on 2007–2014 and predicts 2015.

The four predictive methods follow Section 4.2.3:

* linear regression and decision tree on the 5 best univariate features,
* random forest (300 trees) on all features,
* Bayesian ridge on the 60 best univariate features.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.census import CensusConfig
from repro.core.features import FeatureSpace, SubgraphFeatureExtractor
from repro.core.sampled import SampledCensusConfig
from repro.core.sparse import CSRMatrix
from repro.datasets.mag import SyntheticMAG
from repro.experiments.classic_features import ClassicFeatureExtractor
from repro.experiments.common import EMBEDDING_METHODS, EmbeddingParams, embedding_matrix
from repro.ml import (
    BayesianRidge,
    DecisionTreeRegressor,
    LinearRegression,
    RandomForestRegressor,
    SelectKBest,
    StandardScaler,
    ndcg_at,
)
from repro.ml.forest import resolve_n_jobs
from repro.obs.telemetry import fresh_telemetry, get_telemetry
from repro.runtime.context import RunContext

FEATURE_FAMILIES = ("classic", "subgraph", "combined", "node2vec", "deepwalk", "line")
REGRESSOR_NAMES = ("LinRegr", "DecTree", "RanForest", "BayRidge")


def _hstack_blocks(blocks):
    """Column-concatenate feature blocks, staying sparse if any block is."""
    if any(isinstance(block, CSRMatrix) for block in blocks):
        return CSRMatrix.hstack(blocks)
    return np.hstack(blocks)


# Worker-process state for the parallel grid: the synthetic world and task
# config are shipped once per worker via the pool initializer (the
# ``_WORKER_STATE`` pattern of ``repro.core.features``); each worker keeps
# its own experiment instance so per-conference feature reuse works inside
# its chunk of cells.
_WORKER_STATE: dict = {}


def _init_rank_worker(mag, config) -> None:
    _WORKER_STATE["experiment"] = RankPredictionExperiment(mag, config)


def _rank_chunk_worker(payload):
    """Run one conference's (conference, family) cells; ship results plus
    the worker-side telemetry snapshot for the parent to merge."""
    cells, regressors = payload
    experiment = _WORKER_STATE["experiment"]
    ndcg: dict = {}
    timings: dict = {}
    with fresh_telemetry() as telemetry:
        for conference, family in cells:
            cell_ndcg, cell_timings = experiment._run_cell(
                conference, family, regressors
            )
            ndcg.update(cell_ndcg)
            timings.update(cell_timings)
        snapshot = telemetry.snapshot()
    return ndcg, timings, snapshot


@dataclass
class RankTaskConfig:
    """Parameters of one rank-prediction run.

    ``emax=4`` (instead of the paper's 6) and the ``fast`` embedding preset
    keep the pure-Python run tractable; both deviations are recorded in
    EXPERIMENTS.md and do not change which feature family wins.
    """

    train_years: tuple[int, ...] = tuple(range(2008, 2015))
    test_year: int = 2015
    conferences: tuple[str, ...] | None = None  # None = all in the MAG world
    emax: int = 4
    dmax: int | None = None
    reference_depth: int = 2
    ndcg_n: int = 20
    forest_trees: int = 300
    forest_max_features: str | None = "sqrt"
    select_small: int = 5
    select_large: int = 60
    embedding_params: EmbeddingParams = field(default_factory=EmbeddingParams.fast)
    seed: int = 0
    #: "dense" or "sparse" — matrix layout for the count families.  Models
    #: see identical values either way; sparse skips materialising the
    #: zeros of the heavy-tailed subgraph vocabulary until the model
    #: boundary densifies.
    layout: str = "dense"
    #: Graph storage for the per-conference census graphs: "dict" keeps
    #: the in-memory HeteroGraph; "mmap" converts each graph to
    #: out-of-core mmap storage (see ``docs/out_of_core.md``) so worker
    #: pools re-open the mapping instead of unpickling the graph.
    #: Results are bit-identical either way.
    storage: str = "dict"
    #: Census engine for the subgraph family ("fast"/"reference" exact,
    #: "sampled" approximate).  Classic and embedding families are
    #: unaffected.
    engine: str = "fast"
    #: Estimator knobs when ``engine="sampled"`` (budget, seed, rel_err);
    #: ``None`` with the sampled engine uses ``SampledCensusConfig()``.
    sampled: SampledCensusConfig | None = None
    #: Forest fitting engine ("fast" batched or per-node "reference").
    forest_engine: str = "fast"
    #: Worker processes.  With several conferences the grid runner fans
    #: (conference, family) cells; with one conference the forest takes
    #: the workers instead.  0/None = all cores.
    n_jobs: int | None = 1
    #: Reuse per-conference classic/subgraph matrices across families —
    #: "combined" is then an hstack of cached blocks instead of a second
    #: census of the same graphs.  Scores are identical either way.
    reuse_features: bool = True

    @classmethod
    def small(cls) -> "RankTaskConfig":
        """Bench-sized run: fewer train years, smaller census."""
        return cls(train_years=tuple(range(2011, 2015)), emax=3)


@dataclass
class RankPredictionResult:
    """NDCG scores per (regressor, feature family, conference).

    ``timings`` keeps the per-cell feature wall clock
    (``features/{family}/{conference}``) for existing consumers; the
    same measurements also land in the run telemetry under
    ``rank/features/{family}`` and ``phase/rank_{family}``.
    """

    config: RankTaskConfig
    ndcg: dict[tuple[str, str, str], float]
    timings: dict[str, float]

    def average(self, regressor: str, family: str) -> float:
        """Average NDCG over conferences (the cells of Table 1)."""
        values = [
            score
            for (reg, fam, _conf), score in self.ndcg.items()
            if reg == regressor and fam == family
        ]
        if not values:
            raise KeyError(f"no scores for ({regressor}, {family})")
        return float(np.mean(values))

    def average_table(self) -> dict[tuple[str, str], float]:
        """Table 1: average NDCG per method and feature family."""
        pairs = {(reg, fam) for (reg, fam, _c) in self.ndcg}
        return {pair: self.average(*pair) for pair in sorted(pairs)}

    def conferences(self) -> list[str]:
        return sorted({conf for (_r, _f, conf) in self.ndcg})


class RankPredictionExperiment:
    """End-to-end pipeline producing Figure 3 / Table 1 numbers."""

    def __init__(
        self,
        mag: SyntheticMAG,
        config: RankTaskConfig | None = None,
        ctx: RunContext | None = None,
    ) -> None:
        self.mag = mag
        self.config = config if config is not None else RankTaskConfig()
        if self.config.layout not in ("dense", "sparse"):
            raise ValueError(
                f"layout must be 'dense' or 'sparse', got {self.config.layout!r}"
            )
        self.ctx = RunContext.ensure(ctx)
        # Stages only take the store and census shard count from the
        # context: the experiment's engine/n_jobs policy lives in its
        # config (forest_engine, n_jobs), so a CLI-level engine choice
        # never silently switches the census/embedding pipelines under
        # an experiment.
        self._stage_ctx = RunContext(
            partitions=self.ctx.partitions, store=self.ctx.store
        )
        self._graphs: dict[tuple[str, int], object] = {}
        self._families: dict[tuple[str, str], dict[int, object]] = {}
        history = [y for y in mag.config.years if y < self.config.test_year]
        self._classic = ClassicFeatureExtractor(mag, history_years=history)

    # ------------------------------------------------------------------
    def _graph(self, conference: str, feature_year: int):
        key = (conference, feature_year)
        if key not in self._graphs:
            graph = self.mag.build_rank_graph(
                conference, feature_year, reference_depth=self.config.reference_depth
            )
            if self.config.storage == "mmap":
                from repro.io.stream import to_mmap_graph

                graph = to_mmap_graph(graph)
            elif self.config.storage != "dict":
                raise ValueError(
                    f"unknown graph storage {self.config.storage!r} "
                    "(choices: dict, mmap)"
                )
            self._graphs[key] = graph
        return self._graphs[key]

    def _feature_years(self) -> list[int]:
        return [*self.config.train_years, self.config.test_year]

    # ------------------------------------------------------------------
    # Feature family construction
    # ------------------------------------------------------------------
    def _classic_by_year(self, conference: str) -> dict[int, np.ndarray]:
        institutions = self.mag.institutions
        return {
            year: self._classic.matrix(institutions, conference, year)
            for year in self._feature_years()
        }

    def _subgraph_with_space(
        self, conference: str
    ) -> tuple[dict[int, np.ndarray], FeatureSpace]:
        cfg = self.config
        census_config = CensusConfig(max_edges=cfg.emax, max_degree=cfg.dmax)
        # The census engine comes from the experiment config (the stage
        # context stays engine-free so embeddings keep their own default).
        extractor = SubgraphFeatureExtractor(
            census_config,
            sampled=cfg.sampled,
            ctx=replace(self._stage_ctx, engine=cfg.engine),
        )
        censuses_by_year: dict[int, list] = {}
        for year in self._feature_years():
            graph = self._graph(conference, year - 1)
            roots = [graph.index(inst) for inst in self.mag.institutions]
            censuses_by_year[year] = extractor.census_many(graph, roots)
        space = FeatureSpace()
        for year in self.config.train_years:
            space.fit(censuses_by_year[year])
        by_year = {
            year: space.to_matrix(censuses_by_year[year], layout=cfg.layout)
            for year in self._feature_years()
        }
        return by_year, space

    def _subgraph_by_year(self, conference: str) -> dict[int, np.ndarray]:
        by_year, _space = self._subgraph_with_space(conference)
        return by_year

    def _embedding_by_year(self, conference: str, method: str) -> dict[int, np.ndarray]:
        out = {}
        for year in self._feature_years():
            graph = self._graph(conference, year - 1)
            roots = [graph.index(inst) for inst in self.mag.institutions]
            out[year] = embedding_matrix(
                graph,
                roots,
                method,
                self.config.embedding_params,
                seed=self.config.seed,
                ctx=self._stage_ctx,
            )
        return out

    def _cached_family(self, conference: str, family: str, build):
        if not self.config.reuse_features:
            return build(conference)
        key = (conference, family)
        if key not in self._families:
            self._families[key] = build(conference)
        return self._families[key]

    def feature_family(self, conference: str, family: str) -> dict[int, np.ndarray]:
        """Feature matrices keyed by sample year for one family.

        With ``config.reuse_features`` (default) the classic and subgraph
        blocks are computed once per conference and shared: requesting
        ``combined`` after ``subgraph`` stacks the cached matrices instead
        of re-running the census over the same graphs.
        """
        if family == "classic":
            return self._cached_family(conference, family, self._classic_by_year)
        if family == "subgraph":
            return self._cached_family(conference, family, self._subgraph_by_year)
        if family == "combined":
            classic = self.feature_family(conference, "classic")
            subgraph = self.feature_family(conference, "subgraph")
            return {
                year: _hstack_blocks([classic[year], subgraph[year]])
                for year in self._feature_years()
            }
        if family in EMBEDDING_METHODS:
            return self._embedding_by_year(conference, family)
        raise ValueError(f"unknown feature family {family!r}")

    # ------------------------------------------------------------------
    # Regressors of Section 4.2.3
    # ------------------------------------------------------------------
    def _fit_predict(
        self,
        regressor: str,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_test: np.ndarray,
    ) -> np.ndarray:
        cfg = self.config
        if regressor == "LinRegr":
            selector = SelectKBest(k=cfg.select_small)
            model = LinearRegression()
        elif regressor == "DecTree":
            selector = SelectKBest(k=cfg.select_small)
            model = DecisionTreeRegressor(random_state=cfg.seed)
        elif regressor == "RanForest":
            selector = None
            model = RandomForestRegressor(
                n_estimators=cfg.forest_trees,
                max_features=cfg.forest_max_features,
                random_state=cfg.seed,
                engine=cfg.forest_engine,
                n_jobs=cfg.n_jobs,
            )
        elif regressor == "BayRidge":
            selector = SelectKBest(k=cfg.select_large)
            model = BayesianRidge()
        else:
            raise ValueError(f"unknown regressor {regressor!r}")

        if selector is not None:
            X_train = selector.fit_transform(X_train, y_train)
            X_test = selector.transform(X_test)
        if regressor in ("LinRegr", "BayRidge"):
            scaler = StandardScaler().fit(X_train)
            X_train = scaler.transform(X_train)
            X_test = scaler.transform(X_test)
        model.fit(X_train, y_train)
        return model.predict(X_test)

    def fit_forest_on_family(self, conference: str, family: str) -> tuple:
        """Train the random forest on one family and return it with its
        feature context — used by the Figure 4 importance analysis.

        Returns ``(model, space_or_None)`` where ``space`` is the subgraph
        :class:`FeatureSpace` when the family is ``"subgraph"``.
        """
        cfg = self.config
        space = None
        if family == "subgraph":
            by_year, space = self._subgraph_with_space(conference)
        else:
            by_year = self.feature_family(conference, family)
        X_train, y_train = self._stack_training(conference, by_year)
        model = RandomForestRegressor(
            n_estimators=cfg.forest_trees,
            max_features=cfg.forest_max_features,
            random_state=cfg.seed,
            engine=cfg.forest_engine,
            n_jobs=cfg.n_jobs,
        )
        model.fit(X_train, y_train)
        return model, space

    # ------------------------------------------------------------------
    def _targets(self, conference: str, year: int) -> np.ndarray:
        relevance = self.mag.relevance(conference, year)
        return np.array([relevance[inst] for inst in self.mag.institutions])

    def _stack_training(self, conference: str, by_year) -> tuple[np.ndarray, np.ndarray]:
        blocks = [by_year[year] for year in self.config.train_years]
        if any(isinstance(block, CSRMatrix) for block in blocks):
            X = CSRMatrix.vstack(
                [
                    b if isinstance(b, CSRMatrix) else CSRMatrix.from_dense(b)
                    for b in blocks
                ]
            )
        else:
            X = np.vstack(blocks)
        y = np.concatenate(
            [self._targets(conference, year) for year in self.config.train_years]
        )
        return X, y

    def _run_cell(
        self, conference: str, family: str, regressors
    ) -> tuple[dict[tuple[str, str, str], float], dict[str, float]]:
        """One (conference, family) grid cell: features, fits, NDCG."""
        cfg = self.config
        telemetry = get_telemetry()
        ndcg: dict[tuple[str, str, str], float] = {}
        timings: dict[str, float] = {}
        with telemetry.span("experiment/cell"):
            with telemetry.span("phase/rank_" + family):
                with telemetry.span(f"rank/features/{family}") as span:
                    by_year = self.feature_family(conference, family)
                timings[f"features/{family}/{conference}"] = span.elapsed
                X_train, y_train = self._stack_training(conference, by_year)
                X_test = by_year[cfg.test_year]
                y_test = self._targets(conference, cfg.test_year)
                for regressor in regressors:
                    with telemetry.span(f"rank/fit/{regressor}"):
                        predictions = self._fit_predict(
                            regressor, X_train, y_train, X_test
                        )
                    ndcg[(regressor, family, conference)] = ndcg_at(
                        y_test, predictions, n=cfg.ndcg_n
                    )
        return ndcg, timings

    def run(
        self,
        families=FEATURE_FAMILIES,
        regressors=REGRESSOR_NAMES,
    ) -> RankPredictionResult:
        """Run the full grid and collect NDCG\\@n per cell.

        With ``config.n_jobs > 1`` and several conferences, the
        (conference, family) cells fan out over a process pool — one chunk
        per conference so the per-conference feature reuse keeps working
        inside each worker — and results are restored in the sequential
        grid order.  Cell scores are independent of the fan-out (each cell
        seeds its own models), so any worker count matches ``n_jobs=1``.
        """
        cfg = self.config
        telemetry = get_telemetry()
        conferences = tuple(cfg.conferences or self.mag.config.conferences)
        n_jobs = resolve_n_jobs(cfg.n_jobs)
        ndcg: dict[tuple[str, str, str], float] = {}
        timings: dict[str, float] = {}
        if n_jobs > 1 and len(conferences) > 1:
            # The grid consumes the workers; cells run forests sequentially
            # (no nested pools).
            worker_config = replace(cfg, n_jobs=1, conferences=None)
            chunks = [
                [(conference, family) for family in families]
                for conference in conferences
            ]
            with ProcessPoolExecutor(
                max_workers=min(n_jobs, len(conferences)),
                initializer=_init_rank_worker,
                initargs=(self.mag, worker_config),
            ) as pool:
                for cell_ndcg, cell_timings, snapshot in pool.map(
                    _rank_chunk_worker, [(chunk, regressors) for chunk in chunks]
                ):
                    ndcg.update(cell_ndcg)
                    timings.update(cell_timings)
                    telemetry.merge(snapshot)
        else:
            for conference in conferences:
                for family in families:
                    cell_ndcg, cell_timings = self._run_cell(
                        conference, family, regressors
                    )
                    ndcg.update(cell_ndcg)
                    timings.update(cell_timings)
        ordered = {
            (regressor, family, conference): ndcg[(regressor, family, conference)]
            for conference in conferences
            for family in families
            for regressor in regressors
        }
        return RankPredictionResult(cfg, ordered, timings)
