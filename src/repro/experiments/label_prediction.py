"""Label-prediction evaluation (Section 4.3, Figure 5, Tables 2–3 inputs).

For each evaluation network: sample up to 250 nodes per label, extract
subgraph features (with the start-node label masked, Section 4.3.2) and the
three embedding baselines, train one-vs-rest logistic regression with tuned
L2 strength, and score macro-F1 over repeated random train/test splits.

Two experiment axes map to Figure 5:

* :meth:`LabelPredictionExperiment.run_training_sweep` — macro-F1 as the
  training fraction varies (Figure 5A–C);
* :meth:`LabelPredictionExperiment.run_label_removal` — macro-F1 as node
  labels are replaced by an ``unlabeled`` label in the graph while the
  evaluation targets keep their true labels (Figure 5D–F).  Embeddings are
  structure-only and therefore invariant, exactly as the paper notes.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.census import CensusConfig
from repro.core.features import FeatureSpace, SubgraphFeatureExtractor
from repro.core.graph import HeteroGraph
from repro.core.labels import LabelSet
from repro.core.sampled import SampledCensusConfig
from repro.datasets.load import sample_nodes_per_label
from repro.experiments.common import (
    EMBEDDING_METHODS,
    EmbeddingParams,
    embedding_matrix,
    percentile_degree,
)
from repro.ml import StandardScaler, macro_f1, train_test_split, tune_regularization
from repro.ml.forest import resolve_n_jobs
from repro.ml.preprocessing import log1p_counts
from repro.obs.telemetry import fresh_telemetry, get_telemetry
from repro.runtime.context import EXACT_ENGINES, RunContext

FEATURE_TYPES = ("subgraph", *EMBEDDING_METHODS)

#: Label name standing in for removed node labels (Figure 5D–F).
UNLABELED = "unlabeled"

#: Per-worker state for the training-sweep fan-out, populated by the pool
#: initializer so the graph and config ship once per worker process.
_WORKER_STATE: dict = {}


def _draw_split_seeds(rng: np.random.Generator, count: int) -> list[int]:
    """Pre-draw ``count`` split seeds from the sequential RNG stream.

    Drawing seeds up front (in the exact order the sequential loop would
    consume them) is what makes the training-sweep fan-out bit-identical
    for every worker count.
    """
    return [int(rng.integers(0, 2**31 - 1)) for _ in range(count)]


def _init_label_worker(graph, config) -> None:
    _WORKER_STATE["experiment"] = LabelPredictionExperiment(graph, config)


def _label_feature_worker(payload):
    """Score every (fraction, seeds) cell of one feature type.

    Runs under a fresh telemetry registry; the snapshot is merged back into
    the parent so counters and spans survive the process boundary.
    """
    feature, cells = payload
    experiment = _WORKER_STATE["experiment"]
    scores = {}
    with fresh_telemetry() as telemetry:
        X = experiment.feature_matrix(feature)
        for fraction, seeds in cells:
            scores[(feature, fraction)] = experiment._score_splits(X, fraction, seeds)
        snapshot = telemetry.snapshot()
    return scores, snapshot


@dataclass
class LabelTaskConfig:
    """Parameters of one label-prediction run.

    Paper values: ``per_label=250``, ``emax=5``, ``dmax_percentile=90``,
    100 split repetitions.  Defaults here are bench-sized; pass paper
    values explicitly for a full run.
    """

    per_label: int = 40
    emax: int = 3
    dmax_percentile: float = 90.0
    #: Never sample roots above this global degree percentile (Section
    #: 4.3.5: skipping the top 5% of degrees leaves prediction performance
    #: intact and removes the runtime tail).  ``None`` disables the filter.
    root_degree_percentile: float | None = 95.0
    train_fractions: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9)
    n_repeats: int = 10
    removal_fractions: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75)
    removal_train_fraction: float = 0.9
    embedding_params: EmbeddingParams = field(default_factory=EmbeddingParams.fast)
    logreg_grid: tuple[float, ...] = (0.01, 0.1, 1.0, 10.0)
    seed: int = 0
    #: Matrix layout for the subgraph count features ("dense" or "sparse").
    layout: str = "dense"
    #: Census/embedding implementation ("fast"/"reference" exact, or
    #: "sampled" for an approximate census) — the label pipeline has no
    #: forest, so its engine choice selects the feature extraction
    #: pipelines (CLI parity with ``repro rank --engine``).  Embeddings
    #: have no sampled path, so ``"sampled"`` applies to the census only
    #: and the embedding pipelines keep their default engine.
    engine: str = "fast"
    #: Estimator knobs when ``engine="sampled"`` (budget, seed, rel_err);
    #: ``None`` with the sampled engine uses ``SampledCensusConfig()``.
    sampled: SampledCensusConfig | None = None
    #: Worker processes for the training sweep's per-feature fan-out;
    #: split seeds are pre-drawn so any count matches ``n_jobs=1``.
    n_jobs: int | None = 1


@dataclass
class SweepResult:
    """Macro-F1 per (feature type, x-axis value), with per-repeat scores."""

    scores: dict[tuple[str, float], list[float]]

    def mean(self, feature: str, x: float) -> float:
        return float(np.mean(self.scores[(feature, x)]))

    def std(self, feature: str, x: float) -> float:
        return float(np.std(self.scores[(feature, x)]))

    def xs(self) -> list[float]:
        return sorted({x for (_f, x) in self.scores})

    def features(self) -> list[str]:
        return sorted({f for (f, _x) in self.scores})


def with_removed_labels(
    graph: HeteroGraph,
    fraction: float,
    rng: np.random.Generator | int | None = None,
) -> HeteroGraph:
    """Replace the label of a random node fraction with ``unlabeled``.

    The returned graph has the same nodes and edges over an alphabet
    extended by the ``unlabeled`` label, mirroring the paper's protocol of
    replacing labels "with an unlabeled-label".
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if fraction == 0.0:
        return graph
    rng = np.random.default_rng(rng)
    extended = LabelSet(graph.labelset.names + (UNLABELED,))
    num_removed = int(round(fraction * graph.num_nodes))
    removed = set(rng.choice(graph.num_nodes, size=num_removed, replace=False).tolist())
    node_labels = {}
    for index, node_id in enumerate(graph.node_ids):
        if index in removed:
            node_labels[node_id] = UNLABELED
        else:
            node_labels[node_id] = graph.labelset.name(graph.label_of(index))
    edges = [
        (graph.node_id(u), graph.node_id(v)) for u, v in graph.edges()
    ]
    return HeteroGraph.from_edges(node_labels, edges, labelset=extended)


class LabelPredictionExperiment:
    """End-to-end pipeline producing Figure 5 (and Table 2 inputs)."""

    def __init__(
        self,
        graph: HeteroGraph,
        config: LabelTaskConfig | None = None,
        ctx: RunContext | None = None,
    ) -> None:
        self.graph = graph
        self.config = config if config is not None else LabelTaskConfig()
        if self.config.layout not in ("dense", "sparse"):
            raise ValueError(
                f"layout must be 'dense' or 'sparse', got {self.config.layout!r}"
            )
        self.ctx = RunContext.ensure(ctx)
        # Feature stages take the config's engine and the context's store
        # (plus the census shard count); n_jobs stays with the sweep
        # fan-out, not the extractors.  The census gets the configured
        # engine verbatim; the embedding pipelines only implement the
        # exact engines, so "sampled" leaves them on their default.
        self._census_ctx = RunContext(
            engine=self.config.engine,
            partitions=self.ctx.partitions,
            store=self.ctx.store,
        )
        self._stage_ctx = RunContext(
            engine=(
                self.config.engine
                if self.config.engine in EXACT_ENGINES
                else None
            ),
            partitions=self.ctx.partitions,
            store=self.ctx.store,
        )
        rng = np.random.default_rng(self.config.seed)
        self.nodes, self.targets = sample_nodes_per_label(
            graph,
            self.config.per_label,
            rng=rng,
            max_degree_percentile=self.config.root_degree_percentile,
        )
        if self.nodes.size == 0:
            raise ValueError("graph has no non-isolated nodes to sample")
        self._embedding_cache: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Feature extraction
    # ------------------------------------------------------------------
    def subgraph_matrix(
        self,
        graph: HeteroGraph | None = None,
        dmax_percentile: float | None = None,
        emax: int | None = None,
        max_subgraphs: int | None = None,
    ) -> np.ndarray:
        """Masked subgraph count matrix for the sampled nodes.

        ``graph`` may be a relabelled variant of the experiment graph (for
        the label-removal sweep); it must preserve node ids.
        ``max_subgraphs`` forwards the census's per-root guard — used by the
        Table 2 bench to mirror the paper's "did not finish" at 100%.
        """
        cfg = self.config
        graph = graph if graph is not None else self.graph
        percentile = dmax_percentile if dmax_percentile is not None else cfg.dmax_percentile
        dmax = percentile_degree(graph, percentile)
        census_config = CensusConfig(
            max_edges=emax if emax is not None else cfg.emax,
            max_degree=dmax,
            mask_start_label=True,
            max_subgraphs=max_subgraphs,
        )
        extractor = SubgraphFeatureExtractor(
            census_config, sampled=cfg.sampled, ctx=self._census_ctx
        )
        with get_telemetry().span("phase/label_features_subgraph"):
            censuses = extractor.census_many(graph, self.nodes)
            space = FeatureSpace().fit(censuses)
            return log1p_counts(space.to_matrix(censuses, layout=cfg.layout))

    def embedding_features(self, method: str) -> np.ndarray:
        """Embedding rows for the sampled nodes (cached: structure-only)."""
        if method not in self._embedding_cache:
            with get_telemetry().span(f"phase/label_features_{method}"):
                self._embedding_cache[method] = embedding_matrix(
                    self.graph,
                    self.nodes,
                    method,
                    self.config.embedding_params,
                    seed=self.config.seed,
                    ctx=self._stage_ctx,
                )
        return self._embedding_cache[method]

    def feature_matrix(self, feature: str) -> np.ndarray:
        if feature == "subgraph":
            return self.subgraph_matrix()
        if feature in EMBEDDING_METHODS:
            return self.embedding_features(feature)
        raise ValueError(f"unknown feature type {feature!r}")

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _score_splits(
        self, X: np.ndarray, train_fraction: float, split_seeds: list[int]
    ) -> list[float]:
        """Macro-F1 over one random stratified split per seed.

        Seeds are pre-drawn by the caller (see :func:`_draw_split_seeds`)
        so cells can be scored in any process without perturbing the RNG
        stream.  Each fold is timed into the ``label/fold`` telemetry
        timer, so a sweep's manifest shows where the wall clock went.
        """
        cfg = self.config
        telemetry = get_telemetry()
        scores = []
        for split_seed in split_seeds:
            with telemetry.span("label/fold"):
                X_train, X_test, y_train, y_test = train_test_split(
                    X,
                    self.targets,
                    test_size=1.0 - train_fraction,
                    rng=split_seed,
                    stratify=self.targets,
                )
                scaler = StandardScaler().fit(X_train)
                model = tune_regularization(
                    scaler.transform(X_train),
                    y_train,
                    grid=cfg.logreg_grid,
                    rng=split_seed,
                )
                predictions = model.predict(scaler.transform(X_test))
                scores.append(macro_f1(y_test, predictions))
        return scores

    def run_training_sweep(self, features=FEATURE_TYPES) -> SweepResult:
        """Figure 5A–C: macro-F1 vs training fraction.

        With ``config.n_jobs > 1`` the per-feature cells fan out over a
        process pool.  All split seeds are pre-drawn from the sequential
        stream first, so results are bit-identical for any worker count.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + 1)
        plan = [
            (
                feature,
                [
                    (fraction, _draw_split_seeds(rng, cfg.n_repeats))
                    for fraction in cfg.train_fractions
                ],
            )
            for feature in features
        ]
        n_jobs = resolve_n_jobs(cfg.n_jobs)
        scores: dict[tuple[str, float], list[float]] = {}
        if n_jobs > 1 and len(plan) > 1:
            telemetry = get_telemetry()
            worker_config = replace(cfg, n_jobs=1)
            with ProcessPoolExecutor(
                max_workers=min(n_jobs, len(plan)),
                initializer=_init_label_worker,
                initargs=(self.graph, worker_config),
            ) as pool:
                for cell_scores, snapshot in pool.map(_label_feature_worker, plan):
                    scores.update(cell_scores)
                    telemetry.merge(snapshot)
        else:
            for feature, cells in plan:
                X = self.feature_matrix(feature)
                for fraction, seeds in cells:
                    scores[(feature, fraction)] = self._score_splits(X, fraction, seeds)
        # Rebuild in grid order: pool results arrive per feature chunk,
        # and callers expect the same iteration order as the inline loop.
        ordered = {
            (feature, fraction): scores[(feature, fraction)]
            for feature in features
            for fraction in cfg.train_fractions
        }
        return SweepResult(ordered)

    def run_label_removal(self, features=FEATURE_TYPES) -> SweepResult:
        """Figure 5D–F: macro-F1 vs fraction of removed node labels.

        Embedding scores are computed once (they ignore labels) and repeated
        across the x-axis, exactly how the paper plots them as flat lines.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + 2)
        scores: dict[tuple[str, float], list[float]] = {}
        embedding_scores: dict[str, list[float]] = {}
        for feature in features:
            if feature in EMBEDDING_METHODS:
                X = self.feature_matrix(feature)
                embedding_scores[feature] = self._score_splits(
                    X,
                    cfg.removal_train_fraction,
                    _draw_split_seeds(rng, cfg.n_repeats),
                )
        for fraction in cfg.removal_fractions:
            if "subgraph" in features:
                relabelled = with_removed_labels(
                    self.graph, fraction, rng=cfg.seed + int(fraction * 1000)
                )
                X = self.subgraph_matrix(graph=relabelled)
                scores[("subgraph", fraction)] = self._score_splits(
                    X,
                    cfg.removal_train_fraction,
                    _draw_split_seeds(rng, cfg.n_repeats),
                )
            for feature, values in embedding_scores.items():
                scores[(feature, fraction)] = list(values)
        return SweepResult(scores)

    def run_dmax_sweep(
        self,
        percentiles=(90, 92, 94, 96, 98, 100),
        max_subgraphs: int | None = None,
    ) -> dict[float, float]:
        """Table 2: mean macro-F1 per ``d_max`` percentile level.

        Uses a single mid-size training fraction per the table's setup.
        When ``max_subgraphs`` is set and a level trips the census guard,
        that level maps to ``nan`` — the paper's "extraction did not
        finish" dashes for the 100% column on large networks.
        """
        from repro.exceptions import CensusError

        rng = np.random.default_rng(self.config.seed + 3)
        result = {}
        for percentile in percentiles:
            try:
                X = self.subgraph_matrix(
                    dmax_percentile=percentile, max_subgraphs=max_subgraphs
                )
            except CensusError:
                result[float(percentile)] = float("nan")
                continue
            scores = self._score_splits(
                X,
                self.config.removal_train_fraction,
                _draw_split_seeds(rng, self.config.n_repeats),
            )
            result[float(percentile)] = float(np.mean(scores))
        return result
