"""Text renderers for the paper's tables and figures.

Every bench prints its reproduced artefact through these helpers so the
output reads like the paper: Table 1's regressor-by-feature grid, Table 2's
d_max sweep, Table 3's runtime rows, and Figure 3/5 series as aligned text
columns (this is a terminal reproduction; no plotting dependencies).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.experiments.common import EMBEDDING_METHODS
from repro.experiments.rank_prediction import (
    FEATURE_FAMILIES,
    REGRESSOR_NAMES,
    RankPredictionResult,
)


def render_table(
    title: str,
    column_names: Sequence[str],
    rows: Sequence[tuple[str, Sequence[float]]],
    width: int = 10,
    precision: int = 2,
) -> str:
    """Generic fixed-width table: ``rows`` are ``(label, values)`` pairs."""
    header = " " * 12 + "".join(f"{name:>{width}}" for name in column_names)
    lines = [title, header]
    for label, values in rows:
        cells = "".join(f"{value:>{width}.{precision}f}" for value in values)
        lines.append(f"{label:<12}{cells}")
    return "\n".join(lines)


def render_table1(result: RankPredictionResult, families=FEATURE_FAMILIES) -> str:
    """Table 1: average NDCG per predictive method and feature type."""
    table = result.average_table()
    regressors = [r for r in REGRESSOR_NAMES if any(reg == r for (reg, _f) in table)]
    rows = []
    for family in families:
        values = [table.get((regressor, family), float("nan")) for regressor in regressors]
        rows.append((family, values))
    return render_table(
        "Table 1: average NDCG over conferences", regressors, rows
    )


def render_figure3(result: RankPredictionResult, families=FEATURE_FAMILIES) -> str:
    """Figure 3: per-conference NDCG grids, one block per regressor."""
    conferences = result.conferences()
    blocks = []
    for regressor in REGRESSOR_NAMES:
        rows = []
        for family in families:
            values = [
                result.ndcg.get((regressor, family, conference), float("nan"))
                for conference in conferences
            ]
            rows.append((family, values))
        blocks.append(render_table(f"Figure 3 ({regressor})", conferences, rows))
    return "\n\n".join(blocks)


def render_table2(scores_by_dataset: Mapping[str, Mapping[float, float]]) -> str:
    """Table 2: macro-F1 per dataset and d_max percentile level."""
    percentiles = sorted(
        {p for scores in scores_by_dataset.values() for p in scores}
    )
    rows = []
    for dataset, scores in scores_by_dataset.items():
        rows.append(
            (dataset, [scores.get(p, float("nan")) for p in percentiles])
        )
    return render_table(
        "Table 2: macro-F1 by d_max percentile",
        [f"{p:.0f}%" for p in percentiles],
        rows,
    )


def render_table3(reports) -> str:
    """Table 3: per-node extraction time rows."""
    header = (
        f"{'dataset':<8} {'mean':>9} {'p75':>9} {'p90':>9} {'p95':>9} {'max':>9} "
        + " ".join(f"{m:>9}" for m in EMBEDDING_METHODS)
        + " pipeline"
    )
    lines = ["Table 3: extraction seconds per node", header]
    lines.extend(report.row() for report in reports)
    return "\n".join(lines)


def render_sweep(title: str, sweep, x_format: str = "{:.0%}") -> str:
    """Figure 5 style: one row per feature type, one column per x value."""
    xs = sweep.xs()
    rows = []
    for feature in sweep.features():
        rows.append((feature, [sweep.mean(feature, x) for x in xs]))
    return render_table(title, [x_format.format(x) for x in xs], rows)


def render_telemetry(telemetry=None) -> str:
    """Human-readable dump of a run's telemetry registry.

    Counters and gauges as ``name = value`` lines, timers as a
    count/total/mean/max table — the CLI logs this at debug level after
    every command, and it mirrors what ``--telemetry-out`` writes as JSON.
    """
    from repro.obs.telemetry import get_telemetry

    telemetry = telemetry if telemetry is not None else get_telemetry()
    data = telemetry.as_dict()
    lines = ["telemetry:"]
    for section in ("counters", "gauges", "annotations"):
        for name in sorted(data[section]):
            lines.append(f"  {name} = {data[section][name]}")
    if data["timers"]:
        lines.append(
            f"  {'timer':<32} {'count':>7} {'total':>10} {'mean':>10} {'max':>10}"
        )
        for name in sorted(data["timers"]):
            stat = data["timers"][name]
            lines.append(
                f"  {name:<32} {stat['count']:>7} {stat['total_sec']:>10.4f} "
                f"{stat['mean_sec']:>10.4f} {stat['max_sec']:>10.4f}"
            )
    return "\n".join(lines)
