"""Evaluation pipelines reproducing every table and figure of Section 4.

* :mod:`~repro.experiments.rank_prediction` — Figure 3 and Table 1.
* :mod:`~repro.experiments.importance` — Figure 4.
* :mod:`~repro.experiments.label_prediction` — Figure 5 and Table 2 inputs.
* :mod:`~repro.experiments.runtime` — Table 3.
* :mod:`~repro.experiments.classic_features` — the engineered baseline of 4.2.2.
* :mod:`~repro.experiments.reporting` — text renderers for all artefacts.
"""

from repro.experiments.classic_features import ClassicFeatureExtractor
from repro.experiments.common import (
    EMBEDDING_METHODS,
    EmbeddingParams,
    embedding_matrix,
    percentile_degree,
)
from repro.experiments.importance import ImportanceReport, discriminative_subgraphs
from repro.experiments.label_prediction import (
    FEATURE_TYPES,
    LabelPredictionExperiment,
    LabelTaskConfig,
    SweepResult,
    UNLABELED,
    with_removed_labels,
)
from repro.experiments.rank_prediction import (
    FEATURE_FAMILIES,
    REGRESSOR_NAMES,
    RankPredictionExperiment,
    RankPredictionResult,
    RankTaskConfig,
)
from repro.experiments.reporting import (
    render_figure3,
    render_sweep,
    render_table,
    render_table1,
    render_table2,
    render_table3,
)
from repro.experiments.runtime import (
    RuntimeReport,
    runtime_report,
    time_census_per_node,
    time_embeddings_per_node,
)

__all__ = [
    "ClassicFeatureExtractor",
    "EMBEDDING_METHODS",
    "EmbeddingParams",
    "FEATURE_FAMILIES",
    "FEATURE_TYPES",
    "ImportanceReport",
    "LabelPredictionExperiment",
    "LabelTaskConfig",
    "REGRESSOR_NAMES",
    "RankPredictionExperiment",
    "RankPredictionResult",
    "RankTaskConfig",
    "RuntimeReport",
    "SweepResult",
    "UNLABELED",
    "discriminative_subgraphs",
    "embedding_matrix",
    "percentile_degree",
    "render_figure3",
    "render_sweep",
    "render_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "runtime_report",
    "time_census_per_node",
    "time_embeddings_per_node",
    "with_removed_labels",
]
