"""Sampled census engine: budgeted DFS-branch probes with error bounds.

Exact rooted censuses blow up combinatorially at ``e_max = 4, 5`` and on
hub roots — exactly the regimes the paper says carry the most signal.
``engine="sampled"`` trades bounded estimation error for order-of-
magnitude speedups: instead of enumerating the DFS tree of the exclusion
discipline (see :mod:`repro.core.census`), it walks a fixed budget of
random root-to-leaf *probes* through that same tree and reweights what
each probe sees.

The estimator is Knuth's classic tree-size sampler with per-key
Horvitz–Thompson weights.  One probe starts at the empty subgraph and
repeatedly picks one of the ``m`` valid branches uniformly at random,
multiplying a running weight by ``m`` at each step; every state the
probe passes through contributes its subgraph key with the current
weight.  A state at depth ``d`` reached through branching factors
``m_1..m_d`` is visited with probability ``1 / (m_1 * ... * m_d)`` and
contributes exactly that product, so averaging the accumulated weights
over the number of draws gives an unbiased estimate of every per-key
count simultaneously (and of the total).

Crucially, the probe replays the *exclusion discipline* of the exact
engines: choosing branch ``j`` of a state bans branches ``0..j-1`` for
the rest of the probe, exactly as the exact DFS bans a candidate edge
once its branch has completed.  Without those bans a deeper state could
re-expose an earlier sibling's edge and the probe would walk a *larger*
tree than the one being counted — a biased estimate.  The ``d_max`` hub
cut-off (root exempt) and start-label masking apply unchanged.

Confidence intervals come from the per-probe totals: the probe totals
are i.i.d. with mean equal to the true total subgraph count, so a
normal-approximation interval ``mean ± z * s / sqrt(n)`` (Welford
variance, ``z`` from the configured confidence level) bounds the total
estimate.  With ``rel_err`` set, sampling stops early once the half
width undercuts ``rel_err * mean`` (after ``min_draws`` draws), which is
what makes easy roots cheap and keeps stragglers bounded by ``budget``.

Determinism contract: the probe RNG is seeded from ``(seed, root_key)``
where ``root_key`` defaults to the root's node index, so a fixed
:class:`SampledCensusConfig` yields bit-identical estimates at any
``n_jobs``.  The sharded driver passes the *global* root id as
``root_key`` (shard-local indices differ per partition count), and the
halo-complete shards preserve neighbour order and global degrees, so the
same estimates come back at any partition count too.

``max_subgraphs`` is ignored by this engine: the sample budget already
bounds per-root work, which is the very explosion the cap guards
against in the exact engines.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from math import sqrt
from statistics import NormalDist

from repro.core.census import CensusConfig, effective_labelset
from repro.core.encoding import code_to_string
from repro.core.graph import HeteroGraph
from repro.core.hashing import RollingSubgraphHash
from repro.exceptions import CensusError


@dataclass(frozen=True)
class SampledCensusConfig:
    """Configuration of the sampled census estimator.

    Attributes
    ----------
    budget:
        Maximum number of probes (draws) per root.  This is the main
        accuracy-vs-speed knob; see ``docs/sampled_census.md`` for
        guidance.
    seed:
        Base RNG seed.  The per-root stream is derived from
        ``(seed, root_key)``, so estimates are bit-identical at any
        worker or partition count.
    rel_err:
        Optional relative-error target for the *total* estimate.  When
        set, sampling stops as soon as the CI half width is at most
        ``rel_err * mean`` (checked after ``min_draws`` draws); when
        the budget runs out first, the root is recorded as a straggler.
        ``None`` always spends the full budget.
    confidence:
        Confidence level of the reported interval (default 0.95).
    min_draws:
        Draws required before the early-stop check may fire (a variance
        estimate from too few probes is noise).
    """

    budget: int = 2000
    seed: int = 0
    rel_err: float | None = None
    confidence: float = 0.95
    min_draws: int = 32

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise CensusError(f"sample budget must be >= 1, got {self.budget}")
        if self.rel_err is not None and self.rel_err <= 0:
            raise CensusError(f"rel_err must be > 0, got {self.rel_err}")
        if not 0.0 < self.confidence < 1.0:
            raise CensusError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.min_draws < 2:
            raise CensusError(f"min_draws must be >= 2, got {self.min_draws}")


def sampled_config_key(sampled: SampledCensusConfig) -> tuple:
    """Flatten a sampled config to the plain tuple used in cache keys.

    Budget and seed change the returned estimates, so they (and every
    other estimator knob) must be part of the artifact-store key — a
    sampled census must never collide with an exact one, nor with a
    sampled one under a different budget or seed.
    """
    return (
        "sampled",
        sampled.budget,
        sampled.seed,
        sampled.rel_err,
        sampled.confidence,
        sampled.min_draws,
    )


@dataclass(frozen=True)
class SampledCensusReport:
    """Per-root accuracy report of one sampled census.

    Attributes
    ----------
    root:
        The root the estimate is for (the *global* node id when the
        census ran inside a shard).
    draws:
        Probes actually spent (``< budget`` when early-stopped).
    budget:
        The configured probe budget.
    total_estimate:
        Estimated total subgraph count around the root (the sampled
        counterpart of :func:`~repro.core.census.census_total`).
    half_width:
        Normal-approximation CI half width for ``total_estimate`` at
        ``confidence``.
    confidence:
        The configured confidence level.
    early_stopped:
        Whether the ``rel_err`` contract was met before the budget ran
        out.
    """

    root: int
    draws: int
    budget: int
    total_estimate: float
    half_width: float
    confidence: float
    early_stopped: bool


def _rebuild_sampled(counts: dict, report) -> "SampledCensus":
    return SampledCensus(counts, report=report)


class SampledCensus(Counter):
    """A census estimate: per-key floats plus a confidence report.

    Drop-in for the exact engines' ``Counter`` everywhere downstream
    (the feature extractor writes values into float matrices unchanged);
    the extra :attr:`report` carries the CI contract.  ``copy()`` and
    pickling preserve the report, so duplicate-root fan-out and process
    pools cannot silently strip it.
    """

    def __init__(self, *args, report: SampledCensusReport | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.report = report

    def copy(self) -> "SampledCensus":
        return SampledCensus(self, report=self.report)

    def __reduce__(self):
        return (_rebuild_sampled, (dict(self), self.report))


def _probe_seed(seed: int, root_key: int) -> int:
    """Deterministic 64-bit mix of the config seed and the root key."""
    return ((seed * 0x9E3779B97F4A7C15) ^ (root_key * 0xBF58476D1CE4E5B9)) & (
        (1 << 64) - 1
    )


class _SampledCensusRun:
    """One rooted estimation: budgeted probes over the flat CSR snapshot."""

    __slots__ = (
        "config",
        "sampled",
        "root",
        "root_key",
        "labelset",
        "num_labels",
        "labels",
        "root_label",
        "degrees",
        "indptr",
        "edge_ids",
        "edge_u",
        "edge_v",
        "dmax",
        "in_sub",
        "banned",
        "members",
        "use_hash",
        "hash_mod",
        "hash_deltas",
    )

    def __init__(
        self,
        graph: HeteroGraph,
        root: int,
        config: CensusConfig,
        sampled: SampledCensusConfig,
        root_key: int,
    ) -> None:
        flat = graph.flat()
        self.config = config
        self.sampled = sampled
        self.root = root
        self.root_key = root_key
        labelset = effective_labelset(graph, config)
        self.labelset = labelset
        num_labels = len(labelset)
        self.num_labels = num_labels
        self.labels = flat.labels
        self.root_label = (
            labelset.mask_index if config.mask_start_label else flat.labels[root]
        )
        self.degrees = flat.degrees
        self.indptr = flat.indptr
        self.edge_ids = flat.edge_ids
        self.edge_u = flat.edge_u
        self.edge_v = flat.edge_v
        self.dmax = config.max_degree
        num_edges = len(flat.edge_u)
        self.in_sub = bytearray(num_edges)
        self.banned = bytearray(num_edges)
        self.members: dict[int, list[int]] = {}
        self.use_hash = config.key == "hash"
        if self.use_hash:
            hasher = RollingSubgraphHash(num_labels)
            self.hash_mod = hasher.modulus
            self.hash_deltas = [
                hasher.edge_delta(lu, lv)
                for lu in range(num_labels)
                for lv in range(num_labels)
            ]
        else:
            self.hash_mod = 0
            self.hash_deltas = []

    def _expansion(self, node: int) -> list[int]:
        """Candidate edge ids exposed by ``node`` — identical filter to
        the exact engines (``d_max`` hubs capped, root exempt)."""
        dmax = self.dmax
        if dmax is not None and node != self.root and self.degrees[node] > dmax:
            return []
        lo = self.indptr[node]
        hi = self.indptr[node + 1]
        in_sub = self.in_sub
        banned = self.banned
        return [
            eid
            for eid in self.edge_ids[lo:hi]
            if not in_sub[eid] and not banned[eid]
        ]

    def run(self) -> SampledCensus:
        import random

        config = self.config
        sampled = self.sampled
        max_edges = config.max_edges
        stringify = config.key == "string"
        hashing = self.use_hash
        labelset = self.labelset
        num_labels = self.num_labels
        labels = self.labels
        root = self.root
        root_label = self.root_label
        zeros = [0] * num_labels
        members = self.members
        banned = self.banned
        in_sub = self.in_sub
        edge_u = self.edge_u
        edge_v = self.edge_v
        hash_deltas = self.hash_deltas
        hash_mod = self.hash_mod

        rng = random.Random(_probe_seed(sampled.seed, self.root_key))
        randrange = rng.randrange

        root_row = [root_label] + zeros
        # The trivial (root-only) subgraph is deterministic, so it is
        # counted exactly: a constant 1.0 per probe averages to 1.0 and
        # adds zero variance.
        trivial_key = None
        trivial_offset = 0.0
        if config.include_trivial:
            trivial_offset = 1.0
            if hashing:
                trivial_key = 0
            else:
                trivial_key = ((root_label, *zeros),)
                if stringify:
                    trivial_key = code_to_string(trivial_key, labelset)

        # Probe-invariant: the root's expansion never depends on probe
        # state (no bans, no sub edges at probe start).
        root_candidates = self._expansion(root)

        acc: dict = {}
        strings: dict = {}
        # Welford accumulators over per-probe totals.
        n = 0
        mean = 0.0
        m2 = 0.0
        z = NormalDist().inv_cdf(0.5 + sampled.confidence / 2.0)
        rel_err = sampled.rel_err
        min_draws = sampled.min_draws
        budget = sampled.budget
        early_stopped = False
        half_width = 0.0

        while n < budget:
            weight = 1.0
            probe_total = trivial_offset
            members[root] = root_row
            current_hash = 0
            applied: list[int] = []
            probe_bans: list[int] = []
            added_nodes: list[int] = []
            candidates = root_candidates
            depth = 0
            while depth < max_edges:
                valid = [
                    eid
                    for eid in candidates
                    if not banned[eid] and not in_sub[eid]
                ]
                m = len(valid)
                if m == 0:
                    break
                j = randrange(m)
                weight *= m
                # Exclusion discipline: the chosen branch corresponds to
                # the exact DFS state in which branches 0..j-1 completed
                # first — so their edges are banned for the rest of the
                # probe (undone at probe end).
                for eid in valid[:j]:
                    banned[eid] = 1
                probe_bans.extend(valid[:j])
                eid = valid[j]
                a = edge_u[eid]
                b = edge_v[eid]
                new_node = -1
                counts_a = members.get(a)
                if counts_a is None:
                    counts_a = members[a] = [
                        root_label if a == root else labels[a]
                    ] + zeros
                    new_node = a
                    added_nodes.append(a)
                counts_b = members.get(b)
                if counts_b is None:
                    counts_b = members[b] = [
                        root_label if b == root else labels[b]
                    ] + zeros
                    new_node = b
                    added_nodes.append(b)
                counts_a[counts_b[0] + 1] += 1
                counts_b[counts_a[0] + 1] += 1
                in_sub[eid] = 1
                applied.append(eid)
                depth += 1

                if hashing:
                    current_hash = (
                        current_hash
                        + hash_deltas[counts_a[0] * num_labels + counts_b[0]]
                    ) % hash_mod
                    key = current_hash
                else:
                    key = tuple(
                        sorted(
                            (tuple(row) for row in members.values()),
                            reverse=True,
                        )
                    )
                    if stringify:
                        rendered = strings.get(key)
                        if rendered is None:
                            rendered = strings[key] = code_to_string(
                                key, labelset
                            )
                        key = rendered
                acc[key] = acc.get(key, 0.0) + weight
                probe_total += weight

                if depth < max_edges:
                    remaining = valid[j + 1:]
                    exposed = (
                        self._expansion(new_node) if new_node >= 0 else ()
                    )
                    if exposed:
                        remaining_set = set(remaining)
                        candidates = remaining + [
                            e for e in exposed if e not in remaining_set
                        ]
                    else:
                        candidates = remaining
                    if not candidates:
                        break

            # Probe end: undo every mutation (edges, bans, member rows).
            for eid in applied:
                in_sub[eid] = 0
            for eid in probe_bans:
                banned[eid] = 0
            for node in added_nodes:
                del members[node]
            del members[root]
            for idx in range(1, num_labels + 1):
                root_row[idx] = 0

            n += 1
            delta = probe_total - mean
            mean += delta / n
            m2 += delta * (probe_total - mean)
            if rel_err is not None and n >= min_draws:
                half_width = z * sqrt(m2 / (n - 1) / n)
                if half_width <= rel_err * mean:
                    early_stopped = True
                    break

        if n >= 2:
            half_width = z * sqrt(m2 / (n - 1) / n)
        else:
            half_width = 0.0
        report = SampledCensusReport(
            root=self.root_key,
            draws=n,
            budget=budget,
            total_estimate=mean,
            half_width=half_width,
            confidence=sampled.confidence,
            early_stopped=early_stopped,
        )
        estimates = {key: total / n for key, total in acc.items()}
        if trivial_key is not None:
            estimates[trivial_key] = estimates.get(trivial_key, 0.0) + 1.0
        return SampledCensus(estimates, report=report)


def run_sampled_census(
    graph: HeteroGraph,
    root: int,
    config: CensusConfig,
    sampled: SampledCensusConfig,
    *,
    root_key: int | None = None,
) -> SampledCensus:
    """Estimate the rooted census by budgeted DFS-branch sampling.

    ``root_key`` seeds the per-root RNG stream (defaults to ``root``);
    the sharded driver passes the *global* node id so estimates are
    bit-identical at any partition count.
    """
    key = root if root_key is None else int(root_key)
    return _SampledCensusRun(graph, root, config, sampled, key).run()
