"""Rooted heterogeneous subgraph census (Section 3.2).

For a root node ``v`` the census counts, for every isomorphism class of
connected subgraphs with at most ``e_max`` edges that contain ``v``, how
often that class occurs around ``v`` (Eq. 3/4).  Classes are identified by
the characteristic-sequence encoding, so the isomorphism test degenerates to
a dictionary lookup.

The enumeration follows the paper's design:

* subgraphs are grown incrementally by adding one edge at a time, starting
  from the root's incident edges (depth-first with backtracking);
* each connected edge set is generated exactly once via the classic
  exclusion discipline — once a candidate edge has been branched on, it is
  banned for all later branches at the same or deeper levels;
* the ``d_max`` hub heuristic stops exploration *beyond* newly discovered
  high-degree nodes while still recording the edge to the hub itself; the
  root is exempt (which is why hubs as start nodes dominate the runtime
  tail, cf. Table 3);
* the heterogeneous grouping heuristic reuses the encoding computed for the
  first new leaf of a given ``(anchor, label)`` group for the whole group;
* the rolling hash of Section 3.2 is available as an alternative keying
  mode (``key="hash"``) and is compared against tuple and string keys by
  the hashing ablation bench.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Literal

from repro.core.encoding import CanonicalCode, code_to_string
from repro.core.graph import HeteroGraph
from repro.core.hashing import RollingSubgraphHash
from repro.core.labels import LabelSet
from repro.exceptions import CensusError

Edge = tuple[int, int]
KeyMode = Literal["canonical", "string", "hash"]


@dataclass(frozen=True)
class CensusConfig:
    """Configuration of a rooted subgraph census.

    Attributes
    ----------
    max_edges:
        ``e_max`` of the paper — the largest subgraph edge count.  The paper
        uses 6 for rank prediction and 5 for label prediction.
    max_degree:
        ``d_max`` of the paper, or ``None`` to disable the hub heuristic.
        Nodes discovered with a degree strictly above this value are added
        to subgraphs but never expanded.
    mask_start_label:
        Replace the root's label with the artificial mask label in every
        encoding (Section 4.3.2) so rooted counts cannot leak the root's
        own label into a label-prediction feature.
    key:
        Dictionary key mode: ``"canonical"`` (exact tuple, default),
        ``"string"`` (rendered code string), or ``"hash"`` (rolling hash —
        fastest, but different classes may collide into one bucket).
    group_by_label:
        Enable the heterogeneous grouping heuristic (reuse the encoding
        computed for the first same-label leaf of each group).
    include_trivial:
        Also count the single-node subgraph consisting of only the root.
    max_subgraphs:
        Optional safety cap; the census raises :class:`CensusError` when a
        single root exceeds it (mirrors the paper's observation that the
        full extraction "did not finish" on hubs without ``d_max``).
    """

    max_edges: int = 5
    max_degree: int | None = None
    mask_start_label: bool = False
    key: KeyMode = "canonical"
    group_by_label: bool = True
    include_trivial: bool = False
    max_subgraphs: int | None = None

    def __post_init__(self) -> None:
        if self.max_edges < 1:
            raise CensusError(f"max_edges must be >= 1, got {self.max_edges}")
        if self.max_degree is not None and self.max_degree < 0:
            raise CensusError(f"max_degree must be >= 0, got {self.max_degree}")
        if self.key not in ("canonical", "string", "hash"):
            raise CensusError(f"unknown key mode {self.key!r}")
        if self.max_subgraphs is not None and self.max_subgraphs < 1:
            raise CensusError("max_subgraphs must be positive")


def effective_labelset(graph: HeteroGraph, config: CensusConfig) -> LabelSet:
    """The alphabet census keys are expressed in (mask-extended if needed)."""
    if config.mask_start_label:
        return graph.labelset.with_mask()
    return graph.labelset


class _CensusRun:
    """Mutable state of one rooted enumeration."""

    __slots__ = (
        "graph",
        "config",
        "root",
        "labelset",
        "num_labels",
        "eff_labels",
        "counts",
        "member_counts",
        "sub_edges",
        "banned",
        "hasher",
        "current_hash",
        "emitted",
    )

    def __init__(self, graph: HeteroGraph, root: int, config: CensusConfig) -> None:
        self.graph = graph
        self.config = config
        self.root = root
        labelset = effective_labelset(graph, config)
        self.labelset = labelset
        self.num_labels = len(labelset)
        # Effective label per node: the root may be masked.
        self.eff_labels: Callable[[int], int]
        if config.mask_start_label:
            mask = labelset.mask_index

            def eff(node: int, _mask: int = mask, _root: int = root) -> int:
                return _mask if node == _root else graph.label_of(node)

            self.eff_labels = eff
        else:
            self.eff_labels = graph.label_of
        self.counts: Counter = Counter()
        self.member_counts: dict[int, list[int]] = {root: [0] * self.num_labels}
        self.sub_edges: set[Edge] = set()
        self.banned: set[Edge] = set()
        self.hasher = (
            RollingSubgraphHash(self.num_labels) if config.key == "hash" else None
        )
        self.current_hash = 0
        self.emitted = 0

    # -- subgraph mutation ------------------------------------------------
    def _add_edge(self, edge: Edge) -> int | None:
        """Apply an edge; return the newly added node index, if any."""
        a, b = edge
        new_node = None
        if a not in self.member_counts:
            self.member_counts[a] = [0] * self.num_labels
            new_node = a
        if b not in self.member_counts:
            self.member_counts[b] = [0] * self.num_labels
            new_node = b
        label_a, label_b = self.eff_labels(a), self.eff_labels(b)
        self.member_counts[a][label_b] += 1
        self.member_counts[b][label_a] += 1
        self.sub_edges.add(edge)
        if self.hasher is not None:
            self.current_hash = self.hasher.add_edge(self.current_hash, label_a, label_b)
        return new_node

    def _remove_edge(self, edge: Edge, new_node: int | None) -> None:
        a, b = edge
        label_a, label_b = self.eff_labels(a), self.eff_labels(b)
        self.member_counts[a][label_b] -= 1
        self.member_counts[b][label_a] -= 1
        self.sub_edges.discard(edge)
        if new_node is not None:
            del self.member_counts[new_node]
        if self.hasher is not None:
            self.current_hash = self.hasher.remove_edge(
                self.current_hash, label_a, label_b
            )

    # -- emission ----------------------------------------------------------
    def _current_code(self) -> CanonicalCode:
        return tuple(
            sorted(
                (
                    (self.eff_labels(node), *counts)
                    for node, counts in self.member_counts.items()
                ),
                reverse=True,
            )
        )

    def _emit(self, key) -> None:
        self.counts[key] += 1
        self.emitted += 1
        cap = self.config.max_subgraphs
        if cap is not None and self.emitted > cap:
            raise CensusError(
                f"census for root {self.root} exceeded max_subgraphs={cap}; "
                "set a d_max or raise the cap"
            )

    def _key_for_current(self) -> object:
        if self.config.key == "hash":
            return self.current_hash
        code = self._current_code()
        if self.config.key == "string":
            return code_to_string(code, self.labelset)
        return code

    # -- candidate generation ----------------------------------------------
    def _expansion_edges(self, node: int) -> list[Edge]:
        """Candidate edges exposed by ``node``, unless it is a capped hub.

        The root is exempt from the ``d_max`` check, matching the paper
        ("the degree heuristic does not apply" to start nodes).
        """
        dmax = self.config.max_degree
        if (
            dmax is not None
            and node != self.root
            and self.graph.degree(node) > dmax
        ):
            return []
        edges = []
        for neighbour in self.graph.neighbors(node):
            neighbour = int(neighbour)
            edge = (node, neighbour) if node < neighbour else (neighbour, node)
            if edge not in self.sub_edges and edge not in self.banned:
                edges.append(edge)
        return edges

    # -- the enumeration ----------------------------------------------------
    def run(self) -> Counter:
        if self.config.include_trivial:
            self._emit(self._key_for_current())
        self._grow(self._expansion_edges(self.root))
        return self.counts

    def _grow(self, candidates: list[Edge]) -> None:
        """Branch on each candidate in order; ban it afterwards (exclusion
        discipline: supersets using an earlier candidate were enumerated in
        that candidate's branch)."""
        config = self.config
        group_key: object | None = None
        group_anchor: tuple[int, int] | None = None
        local_bans: list[Edge] = []
        for index, edge in enumerate(candidates):
            if edge in self.banned or edge in self.sub_edges:
                continue
            new_node = self._add_edge(edge)

            # Heterogeneous grouping heuristic: consecutive candidates that
            # attach a fresh leaf of the same label to the same anchor yield
            # encoding-identical subgraphs, so reuse the computed key.
            if config.group_by_label and new_node is not None:
                anchor = edge[0] if edge[1] == new_node else edge[1]
                this_anchor = (anchor, self.eff_labels(new_node))
                if this_anchor == group_anchor and group_key is not None:
                    key = group_key
                else:
                    key = self._key_for_current()
                    group_anchor = this_anchor
                    group_key = key
            else:
                key = self._key_for_current()
                group_anchor = None
                group_key = None

            self._emit(key)

            if len(self.sub_edges) < config.max_edges:
                if new_node is not None:
                    exposed = self._expansion_edges(new_node)
                else:
                    exposed = []
                remaining = candidates[index + 1:]
                if exposed:
                    remaining_set = set(remaining)
                    child = remaining + [e for e in exposed if e not in remaining_set]
                else:
                    child = remaining
                if child:
                    self._grow(child)

            self._remove_edge(edge, new_node)
            self.banned.add(edge)
            local_bans.append(edge)
        for edge in local_bans:
            self.banned.discard(edge)


def subgraph_census(
    graph: HeteroGraph,
    root: int,
    config: CensusConfig | None = None,
) -> Counter:
    """Count rooted heterogeneous subgraphs around one node.

    Parameters
    ----------
    graph:
        The heterogeneous network.
    root:
        Internal node index of the start node.
    config:
        Census parameters; defaults to ``CensusConfig()``.

    Returns
    -------
    Counter
        Maps subgraph keys (canonical codes, strings, or hash values,
        depending on ``config.key``) to occurrence counts around ``root``.
    """
    if config is None:
        config = CensusConfig()
    if not 0 <= root < graph.num_nodes:
        raise CensusError(f"root index {root} out of range")
    return _CensusRun(graph, root, config).run()


def census_total(counts: Counter) -> int:
    """Total number of rooted subgraphs in a census result."""
    return sum(counts.values())


@dataclass
class CensusStats:
    """Aggregate statistics over per-root censuses (used by Table 3)."""

    roots: int = 0
    total_subgraphs: int = 0
    distinct_codes: set = field(default_factory=set)

    def update(self, counts: Counter) -> None:
        self.roots += 1
        self.total_subgraphs += census_total(counts)
        self.distinct_codes.update(counts)

    @property
    def vocabulary_size(self) -> int:
        return len(self.distinct_codes)
