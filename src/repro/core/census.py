"""Rooted heterogeneous subgraph census (Section 3.2).

For a root node ``v`` the census counts, for every isomorphism class of
connected subgraphs with at most ``e_max`` edges that contain ``v``, how
often that class occurs around ``v`` (Eq. 3/4).  Classes are identified by
the characteristic-sequence encoding, so the isomorphism test degenerates to
a dictionary lookup.

The enumeration follows the paper's design:

* subgraphs are grown incrementally by adding one edge at a time, starting
  from the root's incident edges (depth-first with backtracking);
* each connected edge set is generated exactly once via the classic
  exclusion discipline — once a candidate edge has been branched on, it is
  banned for all later branches at the same or deeper levels;
* the ``d_max`` hub heuristic stops exploration *beyond* newly discovered
  high-degree nodes while still recording the edge to the hub itself; the
  root is exempt (which is why hubs as start nodes dominate the runtime
  tail, cf. Table 3);
* the heterogeneous grouping heuristic reuses the encoding computed for the
  first new leaf of a given ``(anchor, label)`` group for the whole group;
* the rolling hash of Section 3.2 is available as an alternative keying
  mode (``key="hash"``) and is compared against tuple and string keys by
  the hashing ablation bench.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Literal

from repro.core.encoding import CanonicalCode, code_to_string
from repro.core.graph import HeteroGraph
from repro.core.hashing import RollingSubgraphHash
from repro.core.labels import LabelSet
from repro.exceptions import CensusError
from repro.obs.telemetry import get_telemetry
from repro.runtime.context import ENGINE_SAMPLED, VALID_ENGINES, RunContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.sampled import SampledCensusConfig

Edge = tuple[int, int]
KeyMode = Literal["canonical", "string", "hash"]
EngineMode = Literal["fast", "reference", "sampled"]

#: Valid census engine names — the census implements every engine the
#: shared runtime registry knows about (``fast``/``reference`` exact,
#: ``sampled`` approximate with confidence bounds).
ENGINES = VALID_ENGINES


@dataclass(frozen=True)
class CensusConfig:
    """Configuration of a rooted subgraph census.

    Attributes
    ----------
    max_edges:
        ``e_max`` of the paper — the largest subgraph edge count.  The paper
        uses 6 for rank prediction and 5 for label prediction.
    max_degree:
        ``d_max`` of the paper, or ``None`` to disable the hub heuristic.
        Nodes discovered with a degree strictly above this value are added
        to subgraphs but never expanded.
    mask_start_label:
        Replace the root's label with the artificial mask label in every
        encoding (Section 4.3.2) so rooted counts cannot leak the root's
        own label into a label-prediction feature.
    key:
        Dictionary key mode: ``"canonical"`` (exact tuple, default),
        ``"string"`` (rendered code string), or ``"hash"`` (rolling hash —
        fastest, but different classes may collide into one bucket).
    group_by_label:
        Enable the heterogeneous grouping heuristic (reuse the encoding
        computed for the first same-label leaf of each group).
    include_trivial:
        Also count the single-node subgraph consisting of only the root.
    max_subgraphs:
        Optional safety cap; the census raises :class:`CensusError` when a
        single root exceeds it (mirrors the paper's observation that the
        full extraction "did not finish" on hubs without ``d_max``).
    """

    max_edges: int = 5
    max_degree: int | None = None
    mask_start_label: bool = False
    key: KeyMode = "canonical"
    group_by_label: bool = True
    include_trivial: bool = False
    max_subgraphs: int | None = None

    def __post_init__(self) -> None:
        if self.max_edges < 1:
            raise CensusError(f"max_edges must be >= 1, got {self.max_edges}")
        if self.max_degree is not None and self.max_degree < 0:
            raise CensusError(f"max_degree must be >= 0, got {self.max_degree}")
        if self.key not in ("canonical", "string", "hash"):
            raise CensusError(f"unknown key mode {self.key!r}")
        if self.max_subgraphs is not None and self.max_subgraphs < 1:
            raise CensusError("max_subgraphs must be positive")


def effective_labelset(graph: HeteroGraph, config: CensusConfig) -> LabelSet:
    """The alphabet census keys are expressed in (mask-extended if needed)."""
    if config.mask_start_label:
        return graph.labelset.with_mask()
    return graph.labelset


def _cap_exceeded(root: int, cap) -> CensusError:
    """The shared ``max_subgraphs`` overflow error, naming the offending root.

    Both engines raise through here so the wording (and the root id the
    user needs in order to set a ``d_max``) can never drift apart.
    """
    return CensusError(
        f"census for root {root} exceeded max_subgraphs={cap}; "
        "set a d_max or raise the cap"
    )


class _CensusRun:
    """Mutable state of one rooted enumeration (reference engine).

    This is the straightforward implementation kept as the parity oracle
    for :class:`_FastCensusRun`; `subgraph_census(..., engine="reference")`
    selects it."""

    __slots__ = (
        "graph",
        "config",
        "root",
        "labelset",
        "num_labels",
        "eff_labels",
        "counts",
        "member_counts",
        "sub_edges",
        "banned",
        "hasher",
        "current_hash",
        "emitted",
    )

    def __init__(self, graph: HeteroGraph, root: int, config: CensusConfig) -> None:
        self.graph = graph
        self.config = config
        self.root = root
        labelset = effective_labelset(graph, config)
        self.labelset = labelset
        self.num_labels = len(labelset)
        # Effective label per node: the root may be masked.
        self.eff_labels: Callable[[int], int]
        if config.mask_start_label:
            mask = labelset.mask_index

            def eff(node: int, _mask: int = mask, _root: int = root) -> int:
                return _mask if node == _root else graph.label_of(node)

            self.eff_labels = eff
        else:
            self.eff_labels = graph.label_of
        self.counts: Counter = Counter()
        self.member_counts: dict[int, list[int]] = {root: [0] * self.num_labels}
        self.sub_edges: set[Edge] = set()
        self.banned: set[Edge] = set()
        self.hasher = (
            RollingSubgraphHash(self.num_labels) if config.key == "hash" else None
        )
        self.current_hash = 0
        self.emitted = 0

    # -- subgraph mutation ------------------------------------------------
    def _add_edge(self, edge: Edge) -> int | None:
        """Apply an edge; return the newly added node index, if any."""
        a, b = edge
        new_node = None
        if a not in self.member_counts:
            self.member_counts[a] = [0] * self.num_labels
            new_node = a
        if b not in self.member_counts:
            self.member_counts[b] = [0] * self.num_labels
            new_node = b
        label_a, label_b = self.eff_labels(a), self.eff_labels(b)
        self.member_counts[a][label_b] += 1
        self.member_counts[b][label_a] += 1
        self.sub_edges.add(edge)
        if self.hasher is not None:
            self.current_hash = self.hasher.add_edge(self.current_hash, label_a, label_b)
        return new_node

    def _remove_edge(self, edge: Edge, new_node: int | None) -> None:
        a, b = edge
        label_a, label_b = self.eff_labels(a), self.eff_labels(b)
        self.member_counts[a][label_b] -= 1
        self.member_counts[b][label_a] -= 1
        self.sub_edges.discard(edge)
        if new_node is not None:
            del self.member_counts[new_node]
        if self.hasher is not None:
            self.current_hash = self.hasher.remove_edge(
                self.current_hash, label_a, label_b
            )

    # -- emission ----------------------------------------------------------
    def _current_code(self) -> CanonicalCode:
        return tuple(
            sorted(
                (
                    (self.eff_labels(node), *counts)
                    for node, counts in self.member_counts.items()
                ),
                reverse=True,
            )
        )

    def _emit(self, key) -> None:
        self.counts[key] += 1
        self.emitted += 1
        cap = self.config.max_subgraphs
        if cap is not None and self.emitted > cap:
            raise _cap_exceeded(self.root, cap)

    def _key_for_current(self) -> object:
        if self.config.key == "hash":
            return self.current_hash
        code = self._current_code()
        if self.config.key == "string":
            return code_to_string(code, self.labelset)
        return code

    # -- candidate generation ----------------------------------------------
    def _expansion_edges(self, node: int) -> list[Edge]:
        """Candidate edges exposed by ``node``, unless it is a capped hub.

        The root is exempt from the ``d_max`` check, matching the paper
        ("the degree heuristic does not apply" to start nodes).
        """
        dmax = self.config.max_degree
        if (
            dmax is not None
            and node != self.root
            and self.graph.degree(node) > dmax
        ):
            return []
        edges = []
        for neighbour in self.graph.neighbors(node):
            neighbour = int(neighbour)
            edge = (node, neighbour) if node < neighbour else (neighbour, node)
            if edge not in self.sub_edges and edge not in self.banned:
                edges.append(edge)
        return edges

    # -- the enumeration ----------------------------------------------------
    def run(self) -> Counter:
        if self.config.include_trivial:
            self._emit(self._key_for_current())
        self._grow(self._expansion_edges(self.root))
        return self.counts

    def _grow(self, candidates: list[Edge]) -> None:
        """Branch on each candidate in order; ban it afterwards (exclusion
        discipline: supersets using an earlier candidate were enumerated in
        that candidate's branch)."""
        config = self.config
        group_key: object | None = None
        group_anchor: tuple[int, int] | None = None
        local_bans: list[Edge] = []
        for index, edge in enumerate(candidates):
            if edge in self.banned or edge in self.sub_edges:
                continue
            new_node = self._add_edge(edge)

            # Heterogeneous grouping heuristic: consecutive candidates that
            # attach a fresh leaf of the same label to the same anchor yield
            # encoding-identical subgraphs, so reuse the computed key.
            if config.group_by_label and new_node is not None:
                anchor = edge[0] if edge[1] == new_node else edge[1]
                this_anchor = (anchor, self.eff_labels(new_node))
                if this_anchor == group_anchor and group_key is not None:
                    key = group_key
                else:
                    key = self._key_for_current()
                    group_anchor = this_anchor
                    group_key = key
            else:
                key = self._key_for_current()
                group_anchor = None
                group_key = None

            self._emit(key)

            if len(self.sub_edges) < config.max_edges:
                if new_node is not None:
                    exposed = self._expansion_edges(new_node)
                else:
                    exposed = []
                remaining = candidates[index + 1:]
                if exposed:
                    remaining_set = set(remaining)
                    child = remaining + [e for e in exposed if e not in remaining_set]
                else:
                    child = remaining
                if child:
                    self._grow(child)

            self._remove_edge(edge, new_node)
            self.banned.add(edge)
            local_bans.append(edge)
        for edge in local_bans:
            self.banned.discard(edge)


class _FastCensusRun:
    """Fast census engine: flat snapshot, incremental code, iterative DFS.

    Three changes over the reference engine, none of which alter the
    emitted keys or counts:

    * **Flat per-run arrays.** The graph is snapshotted once per process
      (``HeteroGraph.flat()``) into plain-int CSR adjacency with dense edge
      ids, so the inner loop does list indexing and bytearray flag tests
      instead of numpy scalar extraction, ``(u, v)`` tuple hashing, and
      ``graph.degree()`` calls.
    * **Incremental canonical code.** One cached row tuple per member node
      plus a sorted row container.  An edge add/remove only *marks* its two
      endpoints dirty; the container is repaired for exactly those nodes
      when a key is actually needed.  Combined with the grouping heuristic
      (which reuses keys outright) most emissions never materialise a code,
      and no emission re-sorts more than the touched rows.  The per-node
      state is one list ``[label, t_0, ..., t_k]`` so a row tuple is a
      single C-level ``tuple()`` call.
    * **Explicit-stack DFS.** The recursive ``_grow`` becomes a frame stack,
      removing Python call overhead per branch and the recursion limit.
    """

    __slots__ = (
        "config",
        "root",
        "labelset",
        "num_labels",
        "labels",
        "root_label",
        "degrees",
        "indptr",
        "edge_ids",
        "edge_u",
        "edge_v",
        "dmax",
        "in_sub",
        "banned",
        "num_in_sub",
        "counts",
        "members",
        "hash_mod",
        "hash_deltas",
        "use_hash",
        "current_hash",
        "row_of",
        "rows",
        "dirty",
        "emitted",
    )

    def __init__(self, graph: HeteroGraph, root: int, config: CensusConfig) -> None:
        flat = graph.flat()
        self.config = config
        self.root = root
        labelset = effective_labelset(graph, config)
        self.labelset = labelset
        num_labels = len(labelset)
        self.num_labels = num_labels
        self.labels = flat.labels
        self.root_label = (
            labelset.mask_index if config.mask_start_label else flat.labels[root]
        )
        self.degrees = flat.degrees
        self.indptr = flat.indptr
        self.edge_ids = flat.edge_ids
        self.edge_u = flat.edge_u
        self.edge_v = flat.edge_v
        self.dmax = config.max_degree
        num_edges = len(flat.edge_u)
        self.in_sub = bytearray(num_edges)
        self.banned = bytearray(num_edges)
        self.num_in_sub = 0
        self.counts: Counter = Counter()
        # Per-member state: [effective label, t_0, ..., t_k] — the row
        # tuple of Eq. 1/2 is exactly tuple(list).
        self.members: dict[int, list[int]] = {
            root: [self.root_label] + [0] * num_labels
        }
        self.use_hash = config.key == "hash"
        if self.use_hash:
            hasher = RollingSubgraphHash(num_labels)
            self.hash_mod = hasher.modulus
            # Flat (label_u * k + label_v) -> per-edge hash delta table,
            # replacing two method calls per edge with one list index.
            self.hash_deltas = [
                hasher.edge_delta(lu, lv)
                for lu in range(num_labels)
                for lv in range(num_labels)
            ]
        else:
            self.hash_mod = 0
            self.hash_deltas = []
        self.current_hash = 0
        row = (self.root_label, *([0] * num_labels))
        self.row_of: dict[int, tuple] = {root: row}
        self.rows: list[tuple] = [row]
        self.dirty: set[int] = set()
        self.emitted = 0

    # -- candidate generation ----------------------------------------------
    def _expansion(self, node: int) -> list[int]:
        """Candidate edge ids exposed by ``node``, unless it is a capped hub."""
        dmax = self.dmax
        if dmax is not None and node != self.root and self.degrees[node] > dmax:
            return []
        lo = self.indptr[node]
        hi = self.indptr[node + 1]
        in_sub = self.in_sub
        banned = self.banned
        return [
            eid
            for eid in self.edge_ids[lo:hi]
            if not in_sub[eid] and not banned[eid]
        ]

    def _flush_rows(self) -> list[tuple]:
        """Repair the sorted row container for the dirty nodes only."""
        rows = self.rows
        row_of = self.row_of
        members = self.members
        for node in self.dirty:
            row = tuple(members[node])
            old = row_of.get(node)
            if old is not None:
                if old == row:
                    continue
                del rows[bisect_left(rows, old)]
            insort(rows, row)
            row_of[node] = row
        self.dirty.clear()
        return rows

    def _key(self):
        if self.use_hash:
            return self.current_hash
        rows = self._flush_rows() if self.dirty else self.rows
        code = tuple(rows[::-1])
        if self.config.key == "string":
            return code_to_string(code, self.labelset)
        return code

    # -- the enumeration ----------------------------------------------------
    def run(self) -> Counter:
        # The DFS body is deliberately one flat loop with every piece of
        # run state held in locals: at ~1e5 edge applications per hub root,
        # attribute lookups and method-call frames are the dominant cost in
        # CPython, so edge add/remove are inlined rather than factored out.
        config = self.config
        counts = self.counts
        cap = config.max_subgraphs
        max_edges = config.max_edges
        grouping = config.group_by_label
        hashing = self.use_hash
        stringify = config.key == "string"
        labelset = self.labelset
        num_labels = self.num_labels
        labels = self.labels
        root = self.root
        root_label = self.root_label
        zeros = [0] * num_labels
        members = self.members
        row_of = self.row_of
        rows = self.rows
        dirty = self.dirty
        dirty_add = dirty.add
        banned = self.banned
        in_sub = self.in_sub
        edge_u = self.edge_u
        edge_v = self.edge_v
        hash_deltas = self.hash_deltas
        hash_mod = self.hash_mod
        current_hash = 0
        num_in_sub = 0
        flush = self._flush_rows
        # Per-run memo tables: single-edge leaf rows by (leaf, anchor)
        # label pair, and rendered strings by canonical code (the paper's
        # "conversion to strings can be costly" — render each class once).
        leaf_rows: dict[int, tuple] = {}
        strings: dict = {}
        emitted = 0

        if config.include_trivial:
            counts[self._key()] += 1
            emitted += 1
            if cap is not None and emitted > cap:
                self.emitted = emitted
                self._raise_cap()

        root_candidates = self._expansion(root)
        # Frame layout: [candidates, next index, local bans, group anchor,
        # batch key, batch count, pending edge id (-1 = none), pending new
        # node].  "Batch" is the Counter-update batch: consecutive
        # emissions of one reused key are counted locally and flushed to
        # the Counter in one update (hashing a canonical tuple key is not
        # free, and grouped runs reuse the same key many times).
        stack = (
            [[root_candidates, 0, [], None, None, 0, -1, -1]]
            if root_candidates
            else []
        )
        while stack:
            frame = stack[-1]
            pending = frame[6]
            if pending >= 0:
                # A child branch just finished: backtrack its edge and ban
                # it for the remaining siblings (exclusion discipline).
                a = edge_u[pending]
                b = edge_v[pending]
                counts_a = members[a]
                counts_b = members[b]
                counts_a[counts_b[0] + 1] -= 1
                counts_b[counts_a[0] + 1] -= 1
                in_sub[pending] = 0
                num_in_sub -= 1
                new_node = frame[7]
                if hashing:
                    current_hash = (
                        current_hash
                        - hash_deltas[counts_a[0] * num_labels + counts_b[0]]
                    ) % hash_mod
                else:
                    dirty_add(a)
                    dirty_add(b)
                    if new_node >= 0:
                        old = row_of.pop(new_node, None)
                        if old is not None:
                            del rows[bisect_left(rows, old)]
                        dirty.discard(new_node)
                if new_node >= 0:
                    del members[new_node]
                banned[pending] = 1
                frame[2].append(pending)
                frame[6] = -1
            candidates = frame[0]
            i = frame[1]
            n = len(candidates)
            batch_key = frame[4]
            batch_count = frame[5]
            pushed = False
            while i < n:
                eid = candidates[i]
                i += 1
                if banned[eid] or in_sub[eid]:
                    continue
                a = edge_u[eid]
                b = edge_v[eid]

                # ---- mutation-free leaf path ----
                # At the last edge slot no descent can follow, so when the
                # edge attaches a *new* leaf node the subgraph state never
                # needs to change: either the grouping heuristic reuses the
                # previous key outright, or the key is synthesized from the
                # clean parent rows (leaf row from a memo table, anchor row
                # bumped by one count) — no add/remove churn either way.
                # (Every candidate has >= 1 endpoint in the subgraph, so
                # the new node — if any — is the endpoint that is not.)
                if num_in_sub + 1 == max_edges:
                    if a in members:
                        leaf = -1 if b in members else b
                    else:
                        leaf = a
                    if leaf >= 0:
                        anchor = a if leaf == b else b
                        leaf_label = labels[leaf]
                        anchor_state = frame[3]
                        if (
                            grouping
                            and batch_count
                            and anchor_state is not None
                            and anchor_state[1] == leaf_label
                            and anchor_state[0] == anchor
                        ):
                            batch_count += 1
                        else:
                            if batch_count:
                                counts[batch_key] += batch_count
                            anchor_label = members[anchor][0]
                            if hashing:
                                batch_key = (
                                    current_hash
                                    + hash_deltas[
                                        anchor_label * num_labels + leaf_label
                                    ]
                                ) % hash_mod
                            else:
                                if dirty:
                                    flush()
                                old_row = row_of[anchor]
                                idx = leaf_label + 1
                                new_row = (
                                    old_row[:idx]
                                    + (old_row[idx] + 1,)
                                    + old_row[idx + 1:]
                                )
                                pair = leaf_label * num_labels + anchor_label
                                leaf_row = leaf_rows.get(pair)
                                if leaf_row is None:
                                    template = [leaf_label] + zeros
                                    template[anchor_label + 1] = 1
                                    leaf_row = leaf_rows[pair] = tuple(template)
                                work = rows.copy()
                                del work[bisect_left(work, old_row)]
                                insort(work, new_row)
                                insort(work, leaf_row)
                                batch_key = tuple(work[::-1])
                                if stringify:
                                    rendered = strings.get(batch_key)
                                    if rendered is None:
                                        rendered = strings[batch_key] = (
                                            code_to_string(batch_key, labelset)
                                        )
                                    batch_key = rendered
                            batch_count = 1
                            frame[3] = (anchor, leaf_label) if grouping else None
                        emitted += 1
                        if cap is not None and emitted > cap:
                            counts[batch_key] += batch_count
                            self.emitted = emitted
                            self._raise_cap()
                        banned[eid] = 1
                        frame[2].append(eid)
                        continue

                # ---- apply edge (inline _add_edge) ----
                new_node = -1
                counts_a = members.get(a)
                if counts_a is None:
                    counts_a = members[a] = [
                        root_label if a == root else labels[a]
                    ] + zeros
                    new_node = a
                counts_b = members.get(b)
                if counts_b is None:
                    counts_b = members[b] = [
                        root_label if b == root else labels[b]
                    ] + zeros
                    new_node = b
                counts_a[counts_b[0] + 1] += 1
                counts_b[counts_a[0] + 1] += 1
                in_sub[eid] = 1
                num_in_sub += 1
                if hashing:
                    current_hash = (
                        current_hash
                        + hash_deltas[counts_a[0] * num_labels + counts_b[0]]
                    ) % hash_mod
                else:
                    dirty_add(a)
                    dirty_add(b)

                # ---- emission key (grouping heuristic + batching) ----
                if (
                    grouping
                    and new_node >= 0
                    and batch_count
                    and frame[3] is not None
                    and frame[3][1] == labels[new_node]
                    and frame[3][0] == (a if b == new_node else b)
                ):
                    batch_count += 1
                else:
                    if batch_count:
                        counts[batch_key] += batch_count
                    if hashing:
                        batch_key = current_hash
                    else:
                        if dirty:
                            flush()
                        batch_key = tuple(rows[::-1])
                        if stringify:
                            rendered = strings.get(batch_key)
                            if rendered is None:
                                rendered = strings[batch_key] = code_to_string(
                                    batch_key, labelset
                                )
                            batch_key = rendered
                    batch_count = 1
                    if grouping and new_node >= 0:
                        frame[3] = ((a if b == new_node else b), labels[new_node])
                    else:
                        frame[3] = None
                emitted += 1
                if cap is not None and emitted > cap:
                    counts[batch_key] += batch_count
                    self.emitted = emitted
                    self._raise_cap()

                if num_in_sub < max_edges:
                    exposed = self._expansion(new_node) if new_node >= 0 else ()
                    remaining = candidates[i:]
                    if exposed:
                        remaining_set = set(remaining)
                        child = remaining + [
                            e for e in exposed if e not in remaining_set
                        ]
                    else:
                        child = remaining
                    if child:
                        frame[1] = i
                        frame[4] = batch_key
                        frame[5] = batch_count
                        frame[6] = eid
                        frame[7] = new_node
                        stack.append([child, 0, [], None, None, 0, -1, -1])
                        pushed = True
                        break

                # ---- backtrack (inline _remove_edge) ----
                counts_a[counts_b[0] + 1] -= 1
                counts_b[counts_a[0] + 1] -= 1
                in_sub[eid] = 0
                num_in_sub -= 1
                if hashing:
                    current_hash = (
                        current_hash
                        - hash_deltas[counts_a[0] * num_labels + counts_b[0]]
                    ) % hash_mod
                else:
                    dirty_add(a)
                    dirty_add(b)
                    if new_node >= 0:
                        old = row_of.pop(new_node, None)
                        if old is not None:
                            del rows[bisect_left(rows, old)]
                        dirty.discard(new_node)
                if new_node >= 0:
                    del members[new_node]
                banned[eid] = 1
                frame[2].append(eid)
            if pushed:
                continue
            if batch_count:
                counts[batch_key] += batch_count
            for eid in frame[2]:
                banned[eid] = 0
            stack.pop()
        self.emitted = emitted
        return counts

    def _raise_cap(self) -> None:
        raise _cap_exceeded(self.root, self.config.max_subgraphs)


def subgraph_census(
    graph: HeteroGraph,
    root: int,
    config: CensusConfig | None = None,
    *,
    engine: EngineMode | None = None,
    sampled: "SampledCensusConfig | None" = None,
    sample_root_key: int | None = None,
    ctx: RunContext | None = None,
) -> Counter:
    """Count rooted heterogeneous subgraphs around one node.

    Parameters
    ----------
    graph:
        The heterogeneous network.
    root:
        Internal node index of the start node.
    config:
        Census parameters; defaults to ``CensusConfig()``.
    engine:
        ``"fast"`` (default) runs the incremental flat-adjacency engine;
        ``"reference"`` runs the straightforward implementation kept as
        the parity oracle (both return bit-identical Counters);
        ``"sampled"`` runs the budgeted probe estimator of
        :mod:`repro.core.sampled` and returns a
        :class:`~repro.core.sampled.SampledCensus` of per-key float
        estimates carrying a confidence report.
    sampled:
        Estimator knobs for ``engine="sampled"`` (budget, seed,
        relative-error target); defaults to ``SampledCensusConfig()``.
        Rejected for the exact engines.
    sample_root_key:
        Seed key for the per-root probe RNG (defaults to ``root``).  The
        sharded driver passes the *global* node id here so estimates are
        bit-identical at any partition count.
    ctx:
        Optional :class:`~repro.runtime.context.RunContext`; its engine
        applies when the ``engine`` keyword is not given explicitly.

    Returns
    -------
    Counter
        Maps subgraph keys (canonical codes, strings, or hash values,
        depending on ``config.key``) to occurrence counts around ``root``
        (exact ints, or float estimates from the sampled engine).
    """
    if config is None:
        config = CensusConfig()
    root = int(root)
    if not 0 <= root < graph.num_nodes:
        raise CensusError(f"root index {root} out of range")
    ctx = RunContext.ensure(ctx, engine=engine)
    engine = ctx.resolve_engine(
        ENGINES, default="fast", param="census engine", error=CensusError
    )
    telemetry = get_telemetry()
    if engine == ENGINE_SAMPLED:
        from repro.core.sampled import SampledCensusConfig, run_sampled_census

        if sampled is None:
            sampled = SampledCensusConfig()
        counts = run_sampled_census(
            graph, root, config, sampled, root_key=sample_root_key
        )
        report = counts.report
        telemetry.count("census/sampled_roots")
        telemetry.count("census/sampled_draws", report.draws)
        # The straggler budget: the largest number of draws any single
        # root spent this run (== budget unless early stops fired).
        telemetry.gauge_max("census/sampled_draws_max", report.draws)
        if report.early_stopped:
            telemetry.count("census/sampled_early_stops")
        elif sampled.rel_err is not None:
            # Budget ran dry before the rel_err contract was met — the
            # straggler roots a budget bump would help.
            telemetry.count("census/sampled_budget_exhausted")
        # ``timer`` doubles as a count/total/max stat aggregator here:
        # the "seconds" are achieved CI half widths, not wall clock.
        telemetry.timer("census/sampled_half_width", report.half_width)
        telemetry.gauge_max(
            "census/sampled_half_width_max", report.half_width
        )
    else:
        if sampled is not None:
            raise CensusError(
                "sampled= is only valid with engine='sampled', "
                f"got engine={engine!r}"
            )
        if engine == "fast":
            counts = _FastCensusRun(graph, root, config).run()
        else:
            counts = _CensusRun(graph, root, config).run()
    # Coarse per-call accounting only — the enumeration inner loop stays
    # untouched so the engine perf gates keep measuring real work.
    telemetry.count("census/calls")
    telemetry.count("census/subgraphs", sum(counts.values()))
    telemetry.annotate(
        "census/storage", getattr(graph, "storage_kind", "dict")
    )
    return counts


def census_total(counts: Counter) -> int:
    """Total number of rooted subgraphs in a census result."""
    return sum(counts.values())


@dataclass
class CensusStats:
    """Aggregate statistics over per-root censuses (used by Table 3)."""

    roots: int = 0
    total_subgraphs: int = 0
    distinct_codes: set = field(default_factory=set)

    def update(self, counts: Counter) -> None:
        self.roots += 1
        self.total_subgraphs += census_total(counts)
        self.distinct_codes.update(counts)

    @property
    def vocabulary_size(self) -> int:
        return len(self.distinct_codes)
