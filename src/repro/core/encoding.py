"""Characteristic-sequence encoding of labelled subgraphs (Section 3.1).

Given a subgraph ``H`` over a label alphabet of size ``k``, every node ``v``
contributes the sequence ``s_v = (t_0, t_1, ..., t_k)`` where ``t_0`` is the
integer label of ``v`` and ``t_l`` counts the neighbours of ``v`` *inside H*
that carry label ``l`` (Eq. 1).  The characteristic sequence of ``H`` is the
concatenation of all node sequences sorted in decreasing lexicographic order
(Eq. 2).  Two small subgraphs are isomorphic iff their characteristic
sequences are equal; collisions only appear beyond the ``e_max`` bounds
analysed in :mod:`repro.core.collisions`.

This module represents codes in two interchangeable forms:

* the *canonical tuple*: a tuple of per-node tuples, sorted descending —
  hashable, compact, and the census's dictionary key;
* the *code string*: a human-readable rendering such as ``"z0.1.0|y0.0.2"``
  used in reports and for (de)serialisation.  It deviates from the paper's
  compact ``z010`` notation by separating counts, so multi-digit degrees and
  multi-character label names round-trip safely.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.labels import LabelSet
from repro.exceptions import EncodingError

#: A per-node sequence ``(t_0, t_1, ..., t_k)``.
NodeSequence = tuple[int, ...]
#: The canonical code of a subgraph: node sequences sorted descending.
CanonicalCode = tuple[NodeSequence, ...]

_NODE_SEPARATOR = "|"
_COUNT_SEPARATOR = "."


def node_sequence(label: int, neighbour_labels: Iterable[int], num_labels: int) -> NodeSequence:
    """Build the sequence ``s_v`` for one node from its in-subgraph neighbours."""
    counts = [0] * num_labels
    for neighbour_label in neighbour_labels:
        counts[neighbour_label] += 1
    return (label, *counts)


def canonical_code(node_sequences: Iterable[NodeSequence]) -> CanonicalCode:
    """Sort node sequences into the canonical (descending) order of Eq. 2."""
    return tuple(sorted(node_sequences, reverse=True))


def encode_subgraph(
    labels: Sequence[int],
    edges: Iterable[tuple[int, int]],
    num_labels: int,
) -> CanonicalCode:
    """Encode an explicit subgraph given node labels and its edge list.

    Parameters
    ----------
    labels:
        Integer label of each subgraph node; node ``i`` of the subgraph is
        position ``i`` here.
    edges:
        Edges as index pairs into ``labels``.
    num_labels:
        Size of the label alphabet (defines sequence width).

    Raises
    ------
    EncodingError
        If an edge references a node outside ``labels`` or a label is out of
        the alphabet's range.
    """
    n = len(labels)
    for label in labels:
        if not 0 <= label < num_labels:
            raise EncodingError(f"label {label} outside alphabet of size {num_labels}")
    counts = [[0] * num_labels for _ in range(n)]
    for u, v in edges:
        if not (0 <= u < n and 0 <= v < n):
            raise EncodingError(f"edge ({u}, {v}) references a node outside the subgraph")
        counts[u][labels[v]] += 1
        counts[v][labels[u]] += 1
    return canonical_code((labels[i], *counts[i]) for i in range(n))


def code_to_string(code: CanonicalCode, labelset: LabelSet) -> str:
    """Render a canonical code as a readable string.

    Each node becomes ``<label name><t_1>.<t_2>...<t_k>`` and nodes are
    joined with ``|``, e.g. ``"z0.1.0|z0.1.0|y0.0.2"`` for the paper's
    ``z010 z010 y002`` example.
    """
    parts = []
    for seq in code:
        label, *counts = seq
        name = labelset.name(label)
        parts.append(name + _COUNT_SEPARATOR.join(str(c) for c in counts))
    return _NODE_SEPARATOR.join(parts)


def string_to_code(text: str, labelset: LabelSet) -> CanonicalCode:
    """Parse a string produced by :func:`code_to_string` back to a code.

    Raises
    ------
    EncodingError
        If the string does not round-trip: unknown label prefix, wrong count
        arity, or non-numeric counts.
    """
    if not text:
        raise EncodingError("empty code string")
    sequences: list[NodeSequence] = []
    # Longest-first so a label name that prefixes another resolves correctly.
    names_by_length = sorted(labelset.names, key=len, reverse=True)
    for part in text.split(_NODE_SEPARATOR):
        name = next((n for n in names_by_length if part.startswith(n)), None)
        if name is None:
            raise EncodingError(f"no known label prefixes code part {part!r}")
        rest = part[len(name):]
        try:
            counts = [int(c) for c in rest.split(_COUNT_SEPARATOR)]
        except ValueError:
            raise EncodingError(f"non-numeric counts in code part {part!r}") from None
        if len(counts) != len(labelset):
            raise EncodingError(
                f"code part {part!r} has {len(counts)} counts, expected {len(labelset)}"
            )
        sequences.append((labelset.index(name), *counts))
    return canonical_code(sequences)


def code_num_nodes(code: CanonicalCode) -> int:
    """Number of nodes in the subgraph a code describes."""
    return len(code)


def code_num_edges(code: CanonicalCode) -> int:
    """Number of edges, via the handshake lemma over in-subgraph degrees.

    Raises
    ------
    EncodingError
        If the total label-degree sum is odd, which no valid code can have.
    """
    total = sum(sum(seq[1:]) for seq in code)
    if total % 2:
        raise EncodingError(f"degree sum {total} is odd; corrupted code {code!r}")
    return total // 2


def validate_code(code: CanonicalCode, num_labels: int) -> None:
    """Check structural sanity of a canonical code.

    Verifies sequence width, label ranges, descending order, and an even
    degree sum.  Raises :class:`EncodingError` on the first violation.  Note
    that passing this check does not guarantee the code is *realisable* as a
    graph; use :func:`repro.core.interpret.realize_code` for that.
    """
    if not code:
        raise EncodingError("empty code")
    previous = None
    for seq in code:
        if len(seq) != num_labels + 1:
            raise EncodingError(
                f"sequence {seq!r} has width {len(seq)}, expected {num_labels + 1}"
            )
        if not 0 <= seq[0] < num_labels:
            raise EncodingError(f"sequence {seq!r} has label outside the alphabet")
        if any(c < 0 for c in seq[1:]):
            raise EncodingError(f"sequence {seq!r} has a negative count")
        if previous is not None and seq > previous:
            raise EncodingError("node sequences are not in descending order")
        previous = seq
    code_num_edges(code)
