"""Subgraph feature extraction and matrix building (Section 3.2 / 4).

The census of :mod:`repro.core.census` yields one ``Counter`` per root node.
To feed machine-learning models, those sparse counters must be aligned into
a single feature space: each distinct subgraph code is one feature column,
and a node's value in that column is its rooted count (Eq. 4).

:class:`FeatureSpace` owns the code→column vocabulary (fit on training
nodes, reused on test nodes so the matrices align), and
:class:`SubgraphFeatureExtractor` drives the per-node censuses, optionally
in parallel — the census is trivially parallelisable by start node because
the graph is shared read-only, exactly as the paper argues for its
``O(tV + E)`` memory bound.
"""

from __future__ import annotations

from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.cache import CensusCache, census_config_key
from repro.core.census import CensusConfig, subgraph_census
from repro.core.graph import HeteroGraph
from repro.core.sampled import SampledCensusConfig
from repro.core.sparse import CSRMatrix
from repro.exceptions import FeatureError
from repro.obs.telemetry import Telemetry, get_telemetry
from repro.runtime.context import ENGINE_SAMPLED, RunContext
from repro.runtime.store import STAGE_FEATURES, ArtifactStore


class FeatureSpace:
    """An ordered vocabulary of subgraph codes.

    Columns are assigned in first-seen order, so fitting on the same data in
    the same order is deterministic.
    """

    __slots__ = ("_index", "_keys")

    def __init__(self, keys: Iterable = ()) -> None:
        self._keys: list = []
        self._index: dict = {}
        for key in keys:
            self.add(key)

    def add(self, key) -> int:
        """Register ``key`` (idempotent) and return its column index."""
        column = self._index.get(key)
        if column is None:
            column = len(self._keys)
            self._index[key] = column
            self._keys.append(key)
        return column

    def fit(self, censuses: Iterable[Counter]) -> "FeatureSpace":
        """Absorb every key occurring in the given censuses."""
        for census in censuses:
            for key in census:
                self.add(key)
        return self

    def index(self, key) -> int:
        """Column of ``key``; raises :class:`FeatureError` when unknown."""
        try:
            return self._index[key]
        except KeyError:
            raise FeatureError(f"unknown feature key {key!r}") from None

    def __contains__(self, key) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def keys(self) -> tuple:
        """All codes in column order."""
        return tuple(self._keys)

    def key_at(self, column: int):
        """The code occupying ``column``."""
        if not 0 <= column < len(self._keys):
            raise FeatureError(f"column {column} out of range")
        return self._keys[column]

    def merged(self, other: "FeatureSpace") -> "FeatureSpace":
        """A new space containing this vocabulary followed by ``other``'s
        novel keys — used to union train-time vocabularies from several
        extractions without disturbing existing column assignments."""
        merged = FeatureSpace(self._keys)
        for key in other.keys:
            merged.add(key)
        return merged

    def prune(
        self, censuses: "Sequence[Counter] | CSRMatrix", min_nodes: int = 2
    ) -> "FeatureSpace":
        """A new space keeping only codes observed around at least
        ``min_nodes`` distinct roots.

        Rare subgraph classes are one-hot noise for most models; pruning
        them shrinks matrices substantially on heavy-tailed vocabularies
        while keeping the informative mass.

        ``censuses`` may be the raw counters or a :class:`CSRMatrix` built
        by ``to_matrix(..., layout="sparse")`` *from this space*: its
        stored entries are exactly the indexed (key, root) observations,
        so support is one ``bincount`` over the CSR columns instead of a
        re-iteration of every counter.  Keys absent from this space's own
        index never count toward support either way (masked censuses can
        carry codes the vocabulary dropped).
        """
        if min_nodes < 1:
            raise FeatureError(f"min_nodes must be >= 1, got {min_nodes}")
        if isinstance(censuses, CSRMatrix):
            if censuses.shape[1] != len(self):
                raise FeatureError(
                    f"matrix has {censuses.shape[1]} columns, space has {len(self)}"
                )
            support_per_column = censuses.column_support()
            return FeatureSpace(
                key
                for column, key in enumerate(self._keys)
                if support_per_column[column] >= min_nodes
            )
        support: Counter = Counter()
        for census in censuses:
            for key in census:
                if key in self._index:
                    support[key] += 1
        return FeatureSpace(
            key for key in self._keys if support[key] >= min_nodes
        )

    def to_matrix(
        self, censuses: Sequence[Counter], layout: str = "dense"
    ) -> "np.ndarray | CSRMatrix":
        """Stack censuses into a ``(len(censuses), len(self))`` matrix.

        ``layout="dense"`` returns the float64 ndarray; ``layout="sparse"``
        builds a :class:`CSRMatrix` directly from the counters without ever
        materialising the zeros — same values at the same positions, so
        models fed either layout are bit-identical.

        Keys absent from the vocabulary are silently dropped — that is the
        correct behaviour for *test* nodes whose neighbourhood contains
        subgraph types never seen during training.
        """
        if not len(self):
            raise FeatureError("cannot build a matrix from an empty feature space")
        if layout == "sparse":
            return CSRMatrix.from_counters(censuses, self._index, len(self))
        if layout != "dense":
            raise FeatureError(f"layout must be 'dense' or 'sparse', got {layout!r}")
        matrix = np.zeros((len(censuses), len(self)), dtype=np.float64)
        index = self._index
        for row, census in enumerate(censuses):
            for key, count in census.items():
                column = index.get(key)
                if column is not None:
                    matrix[row, column] = count
        return matrix


@dataclass
class SubgraphFeatures:
    """Aligned feature matrix for a set of root nodes.

    Attributes
    ----------
    matrix:
        ``(num_nodes, num_features)`` count matrix — dense ndarray or
        :class:`~repro.core.sparse.CSRMatrix` depending on the extraction
        ``layout``; both carry identical values.
    space:
        The vocabulary mapping columns back to subgraph codes.
    nodes:
        Root node indices, aligned with matrix rows.
    """

    matrix: "np.ndarray | CSRMatrix"
    space: FeatureSpace
    nodes: tuple[int, ...]

    @property
    def num_features(self) -> int:
        return self.matrix.shape[1]


# Worker-process state for parallel extraction: the graph and config are
# shipped once per worker via the pool initializer instead of once per
# task, which matters because the graph dominates the payload (the paper's
# shared-edge-list argument, in pickle form).
_WORKER_STATE: dict = {}


def _init_census_worker(
    graph: HeteroGraph,
    config: CensusConfig,
    engine: str | None = None,
    sampled: SampledCensusConfig | None = None,
) -> None:
    _WORKER_STATE["graph"] = graph
    _WORKER_STATE["config"] = config
    _WORKER_STATE["engine"] = engine
    _WORKER_STATE["sampled"] = sampled


def _census_chunk_worker(chunk: list[int]) -> tuple[list[Counter], dict]:
    """Census one chunk of roots; ship results plus worker telemetry.

    The worker records per-root and per-chunk timing into its own local
    :class:`~repro.obs.telemetry.Telemetry` and returns the picklable
    snapshot alongside the counters, so the dispatching parent can merge
    the stats that would otherwise die with the pool.
    """
    graph = _WORKER_STATE["graph"]
    config = _WORKER_STATE["config"]
    engine = _WORKER_STATE.get("engine")
    sampled = _WORKER_STATE.get("sampled")
    telemetry = Telemetry()
    censuses = []
    with telemetry.span("census/chunk"):
        for root in chunk:
            with telemetry.span("census/root"):
                censuses.append(
                    subgraph_census(
                        graph, root, config, engine=engine, sampled=sampled
                    )
                )
    return censuses, telemetry.snapshot()


class SubgraphFeatureExtractor:
    """Extracts heterogeneous subgraph features for sets of root nodes.

    Parameters
    ----------
    config:
        Census parameters (``e_max``, ``d_max``, masking, ...).
    n_jobs:
        Number of worker processes; 1 (default) runs in-process.  Workers
        each receive the read-only graph, mirroring the paper's shared
        edge-list parallelisation.
    cache:
        Optional :class:`~repro.core.cache.CensusCache` or
        :class:`~repro.runtime.store.ArtifactStore` (wrapped into its
        census view automatically).  Cached roots are served without
        recomputation and fresh censuses are written back, so ablation
        grids that re-census overlapping node sets under one config pay
        for each root once.
    partitions:
        Shard count for the partitioned census (see :mod:`repro.dist`).
        When set, uncached roots are routed through halo-complete graph
        shards instead of fanning individual roots over the whole graph;
        results stay bit-identical.  ``None`` (default) keeps the
        root-fanning path.
    sampled:
        Estimator knobs for the sampled engine (budget, seed, rel_err).
        Requires the context engine to resolve to ``"sampled"``;
        conversely, ``engine="sampled"`` with no explicit knobs uses
        ``SampledCensusConfig()``.  Estimates flow through the matrix
        pipeline unchanged (float counts instead of ints).
    ctx:
        Optional :class:`~repro.runtime.context.RunContext`; supplies
        ``n_jobs``, ``partitions``, and the artifact store when the
        legacy keywords are not given explicitly.  A context store also
        enables feature-matrix caching in :meth:`fit_transform`.
    mp_context:
        Multiprocessing start method for the worker pool (``"fork"``,
        ``"spawn"``, ``"forkserver"``, or a ready context object);
        ``None`` keeps the platform default.  With an
        :class:`~repro.core.mmap_graph.MmapGraph` the initializer ships
        only the file path and workers re-open the mapping, so even
        ``"spawn"`` pools start without serialising the graph.
    """

    def __init__(
        self,
        config: CensusConfig | None = None,
        n_jobs: int | None = None,
        cache: "CensusCache | ArtifactStore | None" = None,
        *,
        partitions: int | None = None,
        sampled: SampledCensusConfig | None = None,
        ctx: RunContext | None = None,
        mp_context=None,
    ) -> None:
        if n_jobs is not None and n_jobs < 1:
            raise FeatureError(f"n_jobs must be >= 1, got {n_jobs}")
        if isinstance(cache, ArtifactStore):
            cache = CensusCache.over(cache)
        ctx = RunContext.ensure(ctx, n_jobs=n_jobs, partitions=partitions)
        if cache is None and ctx.store is not None:
            cache = CensusCache.over(ctx.store)
        self.config = config if config is not None else CensusConfig()
        self.n_jobs = ctx.resolved_n_jobs(default=1)
        self.partitions = ctx.resolved_partitions()
        self.cache = cache
        self.ctx = ctx
        #: Census engine (None = the census default); threaded into every
        #: subgraph_census call, including pool workers.
        self.engine = ctx.engine
        if sampled is not None and ctx.engine != ENGINE_SAMPLED:
            raise FeatureError(
                "sampled= requires engine='sampled', "
                f"got engine={ctx.engine!r}"
            )
        if sampled is None and ctx.engine == ENGINE_SAMPLED:
            sampled = SampledCensusConfig()
        #: Sampled-estimator knobs (None unless the engine is "sampled");
        #: part of every census cache key so estimates never collide with
        #: exact counts.
        self.sampled = sampled
        self.mp_context = mp_context

    def _resolved_mp_context(self):
        if isinstance(self.mp_context, str):
            import multiprocessing

            return multiprocessing.get_context(self.mp_context)
        return self.mp_context

    def census_many(
        self,
        graph: HeteroGraph,
        nodes: Sequence[int],
        *,
        partitions: int | None = None,
    ) -> list[Counter]:
        """Run the rooted census for every node in ``nodes``.

        Results align with ``nodes`` positionally.  Duplicate roots are
        censused once and fanned out to every occurrence (the saving is
        counted as ``census/dedup_saved`` in the run telemetry).  Parallel
        runs schedule roots in descending-degree order — hub censuses
        dominate the wall clock (the paper's Table 3 outlier columns), so
        starting them first keeps the stragglers from serialising the
        tail — and the original order is restored before returning.  The
        pool is skipped entirely when there is too little work to
        amortise its startup (``nodes`` empty, or fewer pending roots
        than workers); worker-side timing is merged back into the
        parent's telemetry either way.

        ``partitions`` (or the extractor-level setting) switches the
        uncached roots onto the sharded driver of
        :mod:`repro.dist.sharded`: the graph is cut into that many
        halo-complete shards (memoised in the context's artifact store)
        and each worker censuses only the roots its shard owns.
        Results are bit-identical either way.
        """
        config = self.config
        cache = self.cache
        sampled = self.sampled
        if partitions is None:
            partitions = self.partitions
        elif partitions < 1:
            raise FeatureError(f"partitions must be >= 1, got {partitions}")
        telemetry = get_telemetry()
        telemetry.annotate(
            "census/storage", getattr(graph, "storage_kind", "dict")
        )
        # node -> positions in the output; computing per *unique* node is
        # the dedup bugfix: duplicates used to miss the cache once per
        # occurrence because every get() ran before any put().
        positions: dict[int, list[int]] = {}
        for pos, node in enumerate(nodes):
            positions.setdefault(int(node), []).append(pos)
        results: list[Counter | None] = [None] * len(nodes)
        duplicates = len(results) - len(positions)
        telemetry.count("census/requested", len(results))
        if duplicates:
            telemetry.count("census/dedup_saved", duplicates)
        computed: dict[int, Counter] = {}
        if cache is not None:
            pending = []
            for node in positions:
                hit = cache.get(graph, config, node, sampled)
                if hit is None:
                    pending.append(node)
                else:
                    computed[node] = hit
            telemetry.count("census/cache_hits", len(positions) - len(pending))
            telemetry.count("census/cache_misses", len(pending))
        else:
            pending = list(positions)
        if pending:
            if partitions is not None:
                # Shard fan-out: cut (or fetch) halo-complete partitions
                # and census each pending root inside its owning shard.
                from repro.dist.partition import PartitionConfig
                from repro.dist.sharded import (
                    ensure_partitions,
                    sharded_census_map,
                )

                pset = ensure_partitions(
                    graph,
                    PartitionConfig(num_partitions=partitions),
                    config,
                    self.ctx,
                )
                computed.update(
                    sharded_census_map(
                        graph,
                        pending,
                        config,
                        pset,
                        engine=self.engine,
                        sampled=sampled,
                        n_jobs=self.n_jobs,
                        executor=self.ctx.resolved_executor(),
                        workers=self.ctx.workers,
                    )
                )
            elif self.n_jobs == 1 or len(pending) < self.n_jobs:
                with telemetry.span("census/chunk"):
                    for node in pending:
                        with telemetry.span("census/root"):
                            computed[node] = subgraph_census(
                                graph,
                                node,
                                config,
                                engine=self.engine,
                                sampled=sampled,
                            )
            else:
                degrees = graph.flat().degrees
                pending = sorted(
                    pending, key=lambda node: degrees[node], reverse=True
                )
                # ~4 chunks per worker balances scheduling overhead
                # against load skew from uneven per-root cost.
                chunksize = max(1, len(pending) // (self.n_jobs * 4))
                chunks = [
                    pending[start: start + chunksize]
                    for start in range(0, len(pending), chunksize)
                ]
                with ProcessPoolExecutor(
                    max_workers=self.n_jobs,
                    mp_context=self._resolved_mp_context(),
                    initializer=_init_census_worker,
                    initargs=(graph, config, self.engine, sampled),
                ) as pool:
                    for chunk, (censuses, snapshot) in zip(
                        chunks, pool.map(_census_chunk_worker, chunks)
                    ):
                        for node, census in zip(chunk, censuses):
                            computed[node] = census
                        telemetry.merge(snapshot)
            if cache is not None:
                for node in pending:
                    cache.put(graph, config, node, computed[node], sampled)
        for node, node_positions in positions.items():
            census = computed[node]
            results[node_positions[0]] = census
            for pos in node_positions[1:]:
                # Fan out copies so callers mutating one row cannot
                # corrupt its duplicates (copy() rather than Counter():
                # a SampledCensus copy keeps its confidence report).
                results[pos] = census.copy()
        return results

    def fit_transform(
        self, graph: HeteroGraph, nodes: Sequence[int], layout: str = "dense"
    ) -> SubgraphFeatures:
        """Census the nodes, build a fresh vocabulary, return the matrix.

        When the extractor's context carries an artifact store, the
        finished matrix is cached under the ``"features"`` stage (keyed
        by census config, node set, and layout) and a warm rerun returns
        it without re-censusing.
        """
        node_tuple = tuple(int(n) for n in nodes)
        store = self.ctx.store
        feature_config = None
        if store is not None:
            feature_config = (
                *census_config_key(self.config, self.sampled),
                layout,
                node_tuple,
            )
            cached = store.get(graph.fingerprint(), STAGE_FEATURES, feature_config)
            if cached is not None:
                return cached
        censuses = self.census_many(graph, nodes)
        space = FeatureSpace().fit(censuses)
        if not len(space):
            raise FeatureError(
                "no subgraphs found around any root; are the nodes isolated?"
            )
        features = SubgraphFeatures(
            space.to_matrix(censuses, layout=layout), space, node_tuple
        )
        if store is not None:
            store.put(graph.fingerprint(), STAGE_FEATURES, feature_config, features)
        return features

    def transform(
        self,
        graph: HeteroGraph,
        nodes: Sequence[int],
        space: FeatureSpace,
        layout: str = "dense",
    ) -> SubgraphFeatures:
        """Census the nodes and align them to an existing vocabulary."""
        censuses = self.census_many(graph, nodes)
        return SubgraphFeatures(
            space.to_matrix(censuses, layout=layout),
            space,
            tuple(int(n) for n in nodes),
        )
