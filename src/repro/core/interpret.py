"""Interpretation of subgraph features (Section 4.2.5, Figure 4).

Unlike neural embeddings, subgraph features are directly interpretable: each
feature column *is* an isomorphism class of labelled subgraphs.  This module
turns codes back into something a human can read — a structured description,
and where possible an explicit realisation of the code as a labelled graph —
and ranks features by model importance the way Figure 4 does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.encoding import (
    CanonicalCode,
    code_num_edges,
    code_num_nodes,
    code_to_string,
)
from repro.core.features import FeatureSpace
from repro.core.isomorphism import SmallGraph
from repro.core.labels import LabelSet
from repro.exceptions import EncodingError


def describe_code(code: CanonicalCode, labelset: LabelSet) -> str:
    """One-line human description of a subgraph code.

    Example: ``"3 nodes, 2 edges: A(P:1) A(P:1) P(A:2)"`` — each node shows
    its label and its non-zero in-subgraph label degrees.
    """
    parts = []
    for seq in code:
        label, *counts = seq
        name = labelset.name(label)
        degrees = ",".join(
            f"{labelset.name(i)}:{c}" for i, c in enumerate(counts) if c
        )
        parts.append(f"{name}({degrees})" if degrees else name)
    return (
        f"{code_num_nodes(code)} nodes, {code_num_edges(code)} edges: "
        + " ".join(parts)
    )


def realize_code(code: CanonicalCode) -> SmallGraph | None:
    """Find a labelled graph whose encoding is ``code``, if one exists.

    Performs a backtracking search over edge assignments that satisfies
    every node's per-label degree requirements.  Subgraph codes produced by
    the census are always realisable; hand-crafted codes may not be, in
    which case ``None`` is returned.

    Note that for codes beyond the collision-free ``e_max`` bound the
    returned graph is *one* member of the code's class, not necessarily the
    one observed in the network.
    """
    labels = tuple(seq[0] for seq in code)
    n = len(labels)
    # remaining[i][l] = how many more label-l neighbours node i still needs.
    remaining = [list(seq[1:]) for seq in code]
    edges: list[tuple[int, int]] = []
    adjacency: list[set[int]] = [set() for _ in range(n)]

    def first_unmet() -> int | None:
        for i in range(n):
            if any(remaining[i]):
                return i
        return None

    def search() -> bool:
        i = first_unmet()
        if i is None:
            return True
        # Find the first label node i still needs and try every partner.
        need = next(l for l, c in enumerate(remaining[i]) if c)
        for j in range(n):
            if j == i or j in adjacency[i]:
                continue
            if labels[j] != need:
                continue
            if remaining[j][labels[i]] <= 0:
                continue
            remaining[i][need] -= 1
            remaining[j][labels[i]] -= 1
            adjacency[i].add(j)
            adjacency[j].add(i)
            edges.append((i, j) if i < j else (j, i))
            if search():
                return True
            edges.pop()
            adjacency[i].discard(j)
            adjacency[j].discard(i)
            remaining[i][need] += 1
            remaining[j][labels[i]] += 1
        return False

    if not search():
        return None
    graph = SmallGraph(labels, edges)
    if not graph.is_connected():
        # Rooted census codes are connected by construction; a disconnected
        # realisation means the code admits no connected realisation with
        # this particular matching — retry is out of scope, report failure.
        return None
    return graph


@dataclass(frozen=True)
class RankedFeature:
    """One entry of a feature-importance ranking."""

    rank: int
    column: int
    code: CanonicalCode
    importance: float
    description: str

    def render(self, labelset: LabelSet) -> str:
        return (
            f"#{self.rank} (importance {self.importance:.4f}) "
            f"{code_to_string(self.code, labelset)} -- {self.description}"
        )


def rank_features(
    importances: Sequence[float],
    space: FeatureSpace,
    labelset: LabelSet,
    top: int = 10,
) -> list[RankedFeature]:
    """Rank feature columns by importance, decoding each code.

    Parameters
    ----------
    importances:
        Per-column importances (e.g. a random forest's impurity importances),
        aligned with ``space``.
    space:
        The vocabulary the model was trained on.  Its keys must be canonical
        codes (the census default); string or hash keys cannot be decoded.
    labelset:
        Alphabet for rendering descriptions.
    top:
        Number of entries to return.
    """
    importances = np.asarray(importances, dtype=np.float64)
    if importances.shape[0] != len(space):
        raise EncodingError(
            f"{importances.shape[0]} importances for {len(space)} features"
        )
    order = np.argsort(importances)[::-1][:top]
    ranking = []
    for rank, column in enumerate(order, start=1):
        code = space.key_at(int(column))
        if not isinstance(code, tuple):
            raise EncodingError(
                "feature space keys are not canonical codes; "
                "run the census with key='canonical' to rank features"
            )
        ranking.append(
            RankedFeature(
                rank=rank,
                column=int(column),
                code=code,
                importance=float(importances[column]),
                description=describe_code(code, labelset),
            )
        )
    return ranking
