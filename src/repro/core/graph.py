"""Heterogeneous graph data structure.

:class:`HeteroGraph` is the substrate every other module works on: an
undirected, simple (no self loops, no parallel edges), node-labelled graph,
as defined in Section 3 of the paper.

Design notes
------------
* Nodes carry arbitrary hashable external ids (strings in the bundled
  datasets) but are stored internally as contiguous integer indices; the
  census and the encodings only ever see integers.
* Adjacency lists are sorted by ``(neighbour label, neighbour index)``.  The
  heterogeneous grouping heuristic of Section 3.2 relies on same-label
  neighbours being contiguous, and the paper explicitly recommends sorting
  adjacency lists by label.
* The structure is immutable after construction.  The census shares one
  graph across worker processes/threads, mirroring the paper's observation
  that the edge list can be shared because it is never modified.
* :class:`MutableHeteroGraph` is the one sanctioned exception: the serving
  daemon's write path (``repro serve``) applies edge insertions/deletions
  through it.  Mutations replace adjacency rows rather than editing them in
  place — any previously shared row (e.g. pickled into a worker) stays
  valid — and every mutation invalidates the derived ``flat()``/
  ``fingerprint()`` caches so a stale snapshot or content hash is never
  served for a changed graph.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.labels import LabelSet
from repro.exceptions import GraphError

NodeId = Hashable


@dataclass(frozen=True)
class FlatAdjacency:
    """Plain-Python-int snapshot of a graph for the census hot path.

    The census inner loop cannot afford numpy scalar extraction (every
    ``arr[i]`` materialises an ``np.int64`` that then needs ``int()``), nor
    per-edge tuple construction for set membership tests.  This snapshot
    flattens the adjacency into CSR-style Python lists and assigns every
    undirected edge a dense integer id, so the census can use bytearray
    flags indexed by edge id instead of hashing ``(u, v)`` tuples.

    Attributes
    ----------
    labels:
        Integer label per node (plain ints).
    degrees:
        Degree per node (plain ints).
    indptr:
        CSR offsets; neighbours of ``v`` live at positions
        ``indptr[v]:indptr[v + 1]`` of ``neighbors`` / ``edge_ids``.
    neighbors:
        Flat neighbour list, per node sorted by (label, index) exactly like
        :meth:`HeteroGraph.neighbors`.
    edge_ids:
        Dense undirected-edge id aligned with ``neighbors``; both
        orientations of an edge share one id in ``0..num_edges - 1``.
    edge_u / edge_v:
        Endpoints of each edge id, with ``edge_u[e] < edge_v[e]``.
    """

    labels: list
    degrees: list
    indptr: list
    neighbors: list
    edge_ids: list
    edge_u: list
    edge_v: list


class FlatGraph:
    """Read-only graph backed directly by a :class:`FlatAdjacency`.

    This is the *flat-adjacency contract*: the exact surface every census
    engine (fast, reference, sampled), the partitioned driver, and the
    serve-layer repair BFS consume — ``flat()``, ``labelset``,
    ``num_nodes``/``num_edges``, ``label_of``, ``degree`` and
    ``neighbors``.  Anything exposing this surface can be censused;
    nothing in those layers may touch :class:`HeteroGraph` internals.

    The snapshot fields only need to be indexable/sliceable containers of
    plain Python ints — lists (dict-backed graphs, partition shards) and
    ``memoryview("q")`` windows over memory-mapped files
    (:class:`~repro.core.mmap_graph.MmapGraph`) both qualify, and both
    produce bit-identical census results because the engines never see
    anything but the values.
    """

    #: Storage backend reported in ``census/storage`` telemetry.
    storage_kind = "flat"

    __slots__ = ("_flat", "_labelset", "_num_nodes", "_fingerprint")

    def __init__(self, flat: FlatAdjacency, labelset: LabelSet) -> None:
        self._flat = flat
        self._labelset = labelset
        self._num_nodes = len(flat.labels)
        self._fingerprint = None

    def __getstate__(self):
        return (self._flat, self._labelset)

    def __setstate__(self, state) -> None:
        self.__init__(*state)

    @property
    def labelset(self) -> LabelSet:
        return self._labelset

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        return len(self._flat.edge_u)

    def flat(self) -> FlatAdjacency:
        return self._flat

    def label_of(self, index: int) -> int:
        return self._flat.labels[index]

    def degree(self, index: int) -> int:
        return self._flat.degrees[index]

    def degrees(self) -> np.ndarray:
        """Array of all node degrees, aligned with indices."""
        return np.asarray(self._flat.degrees, dtype=np.int64)

    def neighbors(self, index: int):
        """Neighbour indices of ``index`` sorted by (label, index)."""
        lo = self._flat.indptr[index]
        hi = self._flat.indptr[index + 1]
        return self._flat.neighbors[lo:hi]

    def fingerprint(self) -> str:
        """Content hash of the labelled structure (cached).

        Byte-for-byte the same formula as :meth:`HeteroGraph.fingerprint`
        — label alphabet, per-node labels, then each (label, index)-sorted
        adjacency row — so a flat- or mmap-backed view of the same graph
        shares ArtifactStore keys with its dict-backed twin.
        """
        if self._fingerprint is None:
            self._fingerprint = fingerprint_adjacency(
                self._labelset,
                self._flat.labels,
                self._iter_rows(),
            )
        return self._fingerprint

    def _iter_rows(self) -> Iterator:
        flat = self._flat
        for v in range(self._num_nodes):
            yield flat.neighbors[flat.indptr[v]: flat.indptr[v + 1]]

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(nodes={self.num_nodes}, "
            f"edges={self.num_edges}, labels={list(self._labelset.names)!r})"
        )


def fingerprint_adjacency(labelset: LabelSet, labels, rows) -> str:
    """The shared graph content-hash: alphabet, labels, adjacency rows.

    ``labels`` is any int sequence; ``rows`` yields each node's
    (label, index)-sorted neighbour sequence in node order.  Every graph
    backend hashes through here (directly or by the identical inlined
    formula), which is what lets censuses of the same structure share
    cache entries regardless of how the graph is stored.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr(tuple(labelset.names)).encode())
    digest.update(np.asarray(labels, dtype=np.int64).tobytes())
    for row in rows:
        digest.update(np.asarray(row, dtype=np.int64).tobytes())
        digest.update(b"|")
    return digest.hexdigest()


class HeteroGraph:
    """An immutable undirected node-labelled simple graph.

    Use :meth:`from_edges` or :meth:`from_networkx` rather than calling the
    constructor directly.
    """

    #: Storage backend reported in ``census/storage`` telemetry.
    storage_kind = "dict"

    __slots__ = (
        "_labelset",
        "_ids",
        "_index_of",
        "_labels",
        "_adjacency",
        "_label_starts",
        "_num_edges",
        "_flat",
        "_fingerprint",
    )

    def __init__(
        self,
        labelset: LabelSet,
        ids: Sequence[NodeId],
        labels: np.ndarray,
        adjacency: list[np.ndarray],
        label_starts: list[np.ndarray],
        num_edges: int,
    ) -> None:
        self._labelset = labelset
        self._ids = tuple(ids)
        self._index_of = {node_id: i for i, node_id in enumerate(self._ids)}
        self._labels = labels
        self._adjacency = adjacency
        self._label_starts = label_starts
        self._num_edges = num_edges
        self._invalidate_derived()

    def _invalidate_derived(self) -> None:
        """Drop the lazily built caches that depend on the structure.

        ``flat()`` and ``fingerprint()`` are pure functions of the labelled
        adjacency; anything that changes the adjacency (only
        :class:`MutableHeteroGraph` does) must call this so neither a stale
        snapshot nor — worse — a stale content hash aliasing ArtifactStore
        keys across graph versions can ever be observed.
        """
        self._flat = None
        self._fingerprint = None

    def __getstate__(self):
        # The flat snapshot and fingerprint are derived caches; dropping
        # them keeps worker-pool pickles at the raw-graph size (workers
        # rebuild lazily on first census).
        return (
            self._labelset,
            self._ids,
            self._labels,
            self._adjacency,
            self._label_starts,
            self._num_edges,
        )

    def __setstate__(self, state) -> None:
        self.__init__(*state)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        node_labels: Mapping[NodeId, str],
        edges: Iterable[tuple[NodeId, NodeId]],
        labelset: LabelSet | None = None,
    ) -> "HeteroGraph":
        """Build a graph from a node->label mapping and an edge iterable.

        Parameters
        ----------
        node_labels:
            Maps every node id to its label name.  Every node mentioned in
            ``edges`` must appear here; isolated nodes are allowed.
        edges:
            Undirected edges as ``(u, v)`` pairs.  Duplicates (in either
            orientation) are rejected, as are self loops.
        labelset:
            Optional explicit alphabet.  When omitted, one is derived from
            the labels in first-occurrence order.

        Raises
        ------
        GraphError
            On self loops, duplicate edges, or edges naming unknown nodes.
        """
        ids = tuple(node_labels)
        index_of = {node_id: i for i, node_id in enumerate(ids)}
        if labelset is None:
            labelset = LabelSet.from_labelling(node_labels[node_id] for node_id in ids)
        labels = np.fromiter(
            (labelset.index(node_labels[node_id]) for node_id in ids),
            dtype=np.int64,
            count=len(ids),
        )

        neighbour_sets: list[set[int]] = [set() for _ in ids]
        num_edges = 0
        for u, v in edges:
            if u == v:
                raise GraphError(f"self loop on node {u!r} is not allowed")
            try:
                ui, vi = index_of[u], index_of[v]
            except KeyError as exc:
                raise GraphError(f"edge ({u!r}, {v!r}) names unknown node {exc}") from None
            if vi in neighbour_sets[ui]:
                raise GraphError(f"duplicate edge ({u!r}, {v!r})")
            neighbour_sets[ui].add(vi)
            neighbour_sets[vi].add(ui)
            num_edges += 1

        adjacency, label_starts = cls._pack_adjacency(neighbour_sets, labels, len(labelset))
        return cls(labelset, ids, labels, adjacency, label_starts, num_edges)

    @staticmethod
    def _pack_adjacency(
        neighbour_sets: Sequence[set[int]],
        labels: np.ndarray,
        num_labels: int,
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Sort each adjacency list by (label, index) and record label runs.

        ``label_starts[v]`` is an array of length ``num_labels + 1`` with the
        boundaries of same-label runs inside ``adjacency[v]``, so neighbours
        of ``v`` with label ``l`` are ``adjacency[v][starts[l]:starts[l+1]]``.
        """
        adjacency: list[np.ndarray] = []
        label_starts: list[np.ndarray] = []
        for neighbours in neighbour_sets:
            ordered = sorted(neighbours, key=lambda w: (labels[w], w))
            arr = np.asarray(ordered, dtype=np.int64)
            counts = np.bincount(labels[arr], minlength=num_labels) if ordered else np.zeros(
                num_labels, dtype=np.int64
            )
            starts = np.zeros(num_labels + 1, dtype=np.int64)
            np.cumsum(counts, out=starts[1:])
            adjacency.append(arr)
            label_starts.append(starts)
        return adjacency, label_starts

    @classmethod
    def from_networkx(cls, graph, label_attr: str = "label", labelset: LabelSet | None = None) -> "HeteroGraph":
        """Build from a ``networkx.Graph`` whose nodes carry a label attribute.

        Raises
        ------
        GraphError
            If a node is missing the label attribute or the graph is directed.
        """
        if graph.is_directed():
            raise GraphError("HeteroGraph is undirected; pass an undirected networkx graph")
        node_labels: dict[NodeId, str] = {}
        for node, data in graph.nodes(data=True):
            if label_attr not in data:
                raise GraphError(f"node {node!r} is missing the {label_attr!r} attribute")
            node_labels[node] = data[label_attr]
        return cls.from_edges(node_labels, graph.edges(), labelset=labelset)

    def to_networkx(self):
        """Export to a ``networkx.Graph`` with ``label`` node attributes."""
        import networkx as nx

        graph = nx.Graph()
        for i, node_id in enumerate(self._ids):
            graph.add_node(node_id, label=self._labelset.name(int(self._labels[i])))
        for u in range(self.num_nodes):
            for v in self._adjacency[u]:
                if u < v:
                    graph.add_edge(self._ids[u], self._ids[int(v)])
        return graph

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def labelset(self) -> LabelSet:
        """The label alphabet shared by this graph."""
        return self._labelset

    @property
    def num_nodes(self) -> int:
        return len(self._ids)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def node_ids(self) -> tuple[NodeId, ...]:
        """External node ids, in internal index order."""
        return self._ids

    @property
    def labels(self) -> np.ndarray:
        """Integer label per node (read-only view), aligned with indices."""
        view = self._labels.view()
        view.flags.writeable = False
        return view

    def index(self, node_id: NodeId) -> int:
        """Internal index of an external node id."""
        try:
            return self._index_of[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id!r}") from None

    def node_id(self, index: int) -> NodeId:
        """External id of an internal index."""
        if not 0 <= index < len(self._ids):
            raise GraphError(f"node index {index} out of range")
        return self._ids[index]

    def label_of(self, index: int) -> int:
        """Integer label of the node at ``index``."""
        return int(self._labels[index])

    def label_name_of(self, node_id: NodeId) -> str:
        """Label name of an external node id."""
        return self._labelset.name(self.label_of(self.index(node_id)))

    def degree(self, index: int) -> int:
        """Degree of the node at ``index``."""
        return len(self._adjacency[index])

    def degrees(self) -> np.ndarray:
        """Array of all node degrees, aligned with indices."""
        return np.fromiter(
            (len(a) for a in self._adjacency), dtype=np.int64, count=self.num_nodes
        )

    def neighbors(self, index: int) -> np.ndarray:
        """Neighbour indices of ``index`` sorted by (label, index)."""
        return self._adjacency[index]

    def neighbors_with_label(self, index: int, label: int) -> np.ndarray:
        """Neighbours of ``index`` whose label equals ``label``."""
        starts = self._label_starts[index]
        return self._adjacency[index][starts[label]: starts[label + 1]]

    def label_degree(self, index: int, label: int) -> int:
        """Number of neighbours of ``index`` with the given label."""
        starts = self._label_starts[index]
        return int(starts[label + 1] - starts[label])

    def neighbor_label_runs(self, index: int) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(label, neighbours)`` for each non-empty same-label run.

        This is the access pattern of the heterogeneous grouping heuristic:
        all same-label neighbours in one step.
        """
        starts = self._label_starts[index]
        adjacency = self._adjacency[index]
        for label in range(len(self._labelset)):
            lo, hi = starts[label], starts[label + 1]
            if hi > lo:
                yield label, adjacency[lo:hi]

    def flat(self) -> FlatAdjacency:
        """The cached :class:`FlatAdjacency` snapshot (built on first use).

        The graph is immutable, so the snapshot is computed once and shared
        by every census run over this graph within the process.
        """
        if self._flat is None:
            labels = self._labels.tolist()
            indptr = [0]
            neighbors: list = []
            edge_ids: list = []
            edge_u: list = []
            edge_v: list = []
            id_of: dict = {}
            for u in range(len(self._ids)):
                row = self._adjacency[u].tolist()
                neighbors.extend(row)
                for w in row:
                    key = (u, w) if u < w else (w, u)
                    eid = id_of.get(key)
                    if eid is None:
                        eid = len(edge_u)
                        id_of[key] = eid
                        edge_u.append(key[0])
                        edge_v.append(key[1])
                    edge_ids.append(eid)
                indptr.append(len(neighbors))
            degrees = [indptr[i + 1] - indptr[i] for i in range(len(self._ids))]
            self._flat = FlatAdjacency(
                labels=labels,
                degrees=degrees,
                indptr=indptr,
                neighbors=neighbors,
                edge_ids=edge_ids,
                edge_u=edge_u,
                edge_v=edge_v,
            )
        return self._flat

    def fingerprint(self) -> str:
        """Stable content hash of the labelled structure (cached).

        Two graphs with the same label alphabet, node labelling, and
        adjacency (by internal index) share a fingerprint; external node
        ids are deliberately excluded because rooted census counts do not
        depend on them.  Used to key the census cache.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(repr(tuple(self._labelset.names)).encode())
            digest.update(self._labels.tobytes())
            for row in self._adjacency:
                digest.update(row.tobytes())
                digest.update(b"|")
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def has_edge(self, u: int, v: int) -> bool:
        """Whether nodes at indices ``u`` and ``v`` are adjacent."""
        adjacency = self._adjacency[u]
        if len(self._adjacency[v]) < len(adjacency):
            u, v, adjacency = v, u, self._adjacency[v]
        label = self.label_of(v)
        run = self.neighbors_with_label(u, label)
        pos = int(np.searchsorted(run, v))
        return pos < len(run) and int(run[pos]) == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges as index pairs with ``u < v``."""
        for u in range(self.num_nodes):
            for v in self._adjacency[u]:
                v = int(v)
                if u < v:
                    yield u, v

    def label_counts(self) -> np.ndarray:
        """Number of nodes per label, aligned with alphabet order."""
        return np.bincount(self._labels, minlength=len(self._labelset))

    def nodes_with_label(self, label: int) -> np.ndarray:
        """Indices of all nodes carrying ``label``."""
        return np.flatnonzero(self._labels == label)

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------
    def connected_components(self) -> list[np.ndarray]:
        """Connected components as arrays of node indices, largest first.

        Isolated nodes form singleton components.  Useful for dataset
        preprocessing: rooted censuses never cross components, so features
        of nodes outside the giant component are systematically sparser.
        """
        seen = np.zeros(self.num_nodes, dtype=bool)
        components: list[np.ndarray] = []
        for start in range(self.num_nodes):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            members = [start]
            while stack:
                current = stack.pop()
                for neighbour in self._adjacency[current]:
                    neighbour = int(neighbour)
                    if not seen[neighbour]:
                        seen[neighbour] = True
                        stack.append(neighbour)
                        members.append(neighbour)
            components.append(np.asarray(sorted(members), dtype=np.int64))
        components.sort(key=len, reverse=True)
        return components

    def largest_component(self) -> "HeteroGraph":
        """Induced subgraph on the largest connected component."""
        components = self.connected_components()
        if not components:
            raise GraphError("graph has no nodes")
        return self.subgraph(components[0])

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, indices: Iterable[int]) -> "HeteroGraph":
        """Induced subgraph on the given node indices.

        External ids and the label alphabet are preserved; only nodes and
        their mutual edges survive.
        """
        keep = sorted(set(int(i) for i in indices))
        for i in keep:
            if not 0 <= i < self.num_nodes:
                raise GraphError(f"node index {i} out of range")
        keep_set = set(keep)
        node_labels = {self._ids[i]: self._labelset.name(self.label_of(i)) for i in keep}
        edges = [
            (self._ids[u], self._ids[int(v)])
            for u in keep
            for v in self._adjacency[u]
            if u < int(v) and int(v) in keep_set
        ]
        return HeteroGraph.from_edges(node_labels, edges, labelset=self._labelset)

    def __repr__(self) -> str:
        return (
            f"HeteroGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"labels={list(self._labelset.names)!r})"
        )


class MutableHeteroGraph(HeteroGraph):
    """A :class:`HeteroGraph` overlay accepting edge insertions/deletions.

    Built for the serving daemon's write path: the node set and label
    alphabet stay fixed, but edges may be added and removed one at a time.
    Each mutation

    * keeps every adjacency list sorted by (label, index) — the census
      engines' invariant — by replacing the two touched rows (never editing
      an array in place, so rows shared with an immutable source graph or a
      pickled worker copy remain valid), and
    * calls :meth:`HeteroGraph._invalidate_derived` so the ``flat()``
      snapshot and the content ``fingerprint()`` are rebuilt on next use.

    Mutation methods take *external* node ids (the protocol currency) and
    return the internal ``(u, v)`` index pair they resolved to.
    """

    __slots__ = ()

    @classmethod
    def from_graph(cls, graph: HeteroGraph) -> "MutableHeteroGraph":
        """A mutable overlay sharing ``graph``'s current rows (copy-on-write)."""
        return cls(
            graph._labelset,
            graph._ids,
            graph._labels,
            list(graph._adjacency),
            list(graph._label_starts),
            graph._num_edges,
        )

    def snapshot(self) -> HeteroGraph:
        """An immutable copy of the current state (rows shared, never edited)."""
        return HeteroGraph(
            self._labelset,
            self._ids,
            self._labels,
            list(self._adjacency),
            list(self._label_starts),
            self._num_edges,
        )

    def _insert_neighbor(self, u: int, v: int) -> None:
        starts = self._label_starts[u]
        label = self.label_of(v)
        run = self._adjacency[u][starts[label]: starts[label + 1]]
        pos = int(starts[label]) + int(np.searchsorted(run, v))
        self._adjacency[u] = np.insert(self._adjacency[u], pos, v)
        new_starts = starts.copy()
        new_starts[label + 1:] += 1
        self._label_starts[u] = new_starts

    def _delete_neighbor(self, u: int, v: int) -> None:
        starts = self._label_starts[u]
        label = self.label_of(v)
        run = self._adjacency[u][starts[label]: starts[label + 1]]
        pos = int(starts[label]) + int(np.searchsorted(run, v))
        self._adjacency[u] = np.delete(self._adjacency[u], pos)
        new_starts = starts.copy()
        new_starts[label + 1:] -= 1
        self._label_starts[u] = new_starts

    def add_edge(self, u_id: NodeId, v_id: NodeId) -> tuple[int, int]:
        """Insert the undirected edge ``(u_id, v_id)``.

        Raises :class:`~repro.exceptions.GraphError` on self loops,
        unknown nodes, or an edge that already exists.
        """
        if u_id == v_id:
            raise GraphError(f"self loop on node {u_id!r} is not allowed")
        u, v = self.index(u_id), self.index(v_id)
        if self.has_edge(u, v):
            raise GraphError(f"duplicate edge ({u_id!r}, {v_id!r})")
        self._insert_neighbor(u, v)
        self._insert_neighbor(v, u)
        self._num_edges += 1
        self._invalidate_derived()
        return u, v

    def remove_edge(self, u_id: NodeId, v_id: NodeId) -> tuple[int, int]:
        """Delete the undirected edge ``(u_id, v_id)``.

        Raises :class:`~repro.exceptions.GraphError` when the nodes are
        unknown or the edge does not exist.
        """
        u, v = self.index(u_id), self.index(v_id)
        if u == v or not self.has_edge(u, v):
            raise GraphError(f"no such edge ({u_id!r}, {v_id!r})")
        self._delete_neighbor(u, v)
        self._delete_neighbor(v, u)
        self._num_edges -= 1
        self._invalidate_derived()
        return u, v

    def __repr__(self) -> str:
        return (
            f"MutableHeteroGraph(nodes={self.num_nodes}, "
            f"edges={self.num_edges}, labels={list(self._labelset.names)!r})"
        )
