"""Dependency-free CSR matrices for subgraph count features.

The census produces one ``Counter`` per root over a heavy-tailed subgraph
vocabulary: a node touches a few dozen codes out of thousands, so the
aligned feature matrix of :meth:`repro.core.features.FeatureSpace.to_matrix`
is overwhelmingly zero.  Materialising it densely costs ``rows x vocab``
float64 up front — the consumer-side bottleneck once the census itself is
fast (Beaujean et al. make the same observation for pattern-count features,
see PAPERS.md).

:class:`CSRMatrix` is the minimal compressed-sparse-row container the
experiment pipelines need: built straight from counters, row-sliceable,
stackable, and convertible to dense exactly (``toarray`` places the same
float64 values at the same positions as the dense builder, so downstream
models are bit-identical).  Estimators never see it — ``repro.ml`` densifies
on demand at the model boundary via ``check_array``.

Only numpy is used; scipy.sparse is deliberately not imported so worker
processes and minimal installs stay dependency-free.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import FeatureError


class CSRMatrix:
    """A read-mostly CSR matrix: ``data``/``indices``/``indptr`` arrays.

    ``data`` is float64, ``indices`` and ``indptr`` are int64 (one
    ``indptr`` entry per row plus one).  Column indices within a row are
    kept in ascending order by every constructor here, which makes
    ``toarray`` deterministic and row-wise operations cache-friendly.
    """

    __slots__ = ("data", "indices", "indptr", "shape")

    def __init__(
        self,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        shape: tuple[int, int],
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        rows, cols = shape
        self.shape = (int(rows), int(cols))
        if self.data.shape != self.indices.shape or self.data.ndim != 1:
            raise FeatureError("data and indices must be aligned 1-D arrays")
        if self.indptr.ndim != 1 or self.indptr.shape[0] != self.shape[0] + 1:
            raise FeatureError(
                f"indptr needs {self.shape[0] + 1} entries, got {self.indptr.shape[0]}"
            )
        if self.shape[0] and (self.indptr[0] != 0 or self.indptr[-1] != self.data.size):
            raise FeatureError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise FeatureError("indptr must be non-decreasing")
        if self.data.size and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[1]
        ):
            raise FeatureError("column index out of range")

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_counters(
        cls, censuses: Sequence, index: dict, num_columns: int
    ) -> "CSRMatrix":
        """Build from per-root counters and a key -> column mapping.

        Keys absent from ``index`` are silently dropped (test-time codes
        never seen in training), mirroring the dense builder.
        """
        data: list[float] = []
        cols: list[int] = []
        indptr = np.zeros(len(censuses) + 1, dtype=np.int64)
        for row, census in enumerate(censuses):
            start = len(cols)
            for key, count in census.items():
                column = index.get(key)
                if column is not None:
                    cols.append(column)
                    data.append(float(count))
            # ascending column order inside the row
            if len(cols) - start > 1:
                order = np.argsort(cols[start:], kind="stable")
                segment_cols = np.asarray(cols[start:], dtype=np.int64)[order]
                segment_data = np.asarray(data[start:], dtype=np.float64)[order]
                cols[start:] = segment_cols.tolist()
                data[start:] = segment_data.tolist()
            indptr[row + 1] = len(cols)
        return cls(
            np.asarray(data, dtype=np.float64),
            np.asarray(cols, dtype=np.int64),
            indptr,
            (len(censuses), num_columns),
        )

    @classmethod
    def from_dense(cls, array: np.ndarray) -> "CSRMatrix":
        """Compress a dense 2-D array (zeros dropped)."""
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2:
            raise FeatureError(f"need a 2-D array, got shape {array.shape}")
        rows, cols = np.nonzero(array)
        indptr = np.zeros(array.shape[0] + 1, dtype=np.int64)
        counts = np.bincount(rows, minlength=array.shape[0])
        np.cumsum(counts, out=indptr[1:])
        return cls(array[rows, cols], cols.astype(np.int64), indptr, array.shape)

    # -- basics ------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored (non-zero) entries."""
        return int(self.data.size)

    def __len__(self) -> int:
        return self.shape[0]

    def __repr__(self) -> str:
        rows, cols = self.shape
        return f"CSRMatrix({rows}x{cols}, nnz={self.nnz})"

    def with_data(self, data: np.ndarray) -> "CSRMatrix":
        """Same sparsity pattern with replaced values (e.g. log1p counts)."""
        data = np.asarray(data, dtype=np.float64)
        if data.shape != self.data.shape:
            raise FeatureError("replacement data must match nnz")
        return CSRMatrix(data, self.indices, self.indptr, self.shape)

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.data.copy(), self.indices.copy(), self.indptr.copy(), self.shape
        )

    def toarray(self) -> np.ndarray:
        """Dense float64 view; exact values at exact positions."""
        out = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
        )
        out[rows, self.indices] = self.data
        return out

    # -- slicing / stacking ------------------------------------------------
    def row(self, i: int) -> np.ndarray:
        """One row as a dense 1-D array."""
        i = int(i)
        if i < 0:
            i += self.shape[0]
        if not 0 <= i < self.shape[0]:
            raise FeatureError(f"row {i} out of range for {self.shape[0]} rows")
        out = np.zeros(self.shape[1], dtype=np.float64)
        start, stop = self.indptr[i], self.indptr[i + 1]
        out[self.indices[start:stop]] = self.data[start:stop]
        return out

    def __getitem__(self, key) -> "CSRMatrix | np.ndarray":
        """``m[i]`` -> dense row; ``m[slice]``/``m[int array]`` -> CSRMatrix."""
        if isinstance(key, (int, np.integer)):
            return self.row(int(key))
        if isinstance(key, slice):
            key = np.arange(*key.indices(self.shape[0]), dtype=np.int64)
        rows = np.asarray(key)
        if rows.dtype == bool:
            if rows.shape[0] != self.shape[0]:
                raise FeatureError("boolean row mask must cover every row")
            rows = np.flatnonzero(rows)
        rows = rows.astype(np.int64)
        if rows.size and (rows.min() < -self.shape[0] or rows.max() >= self.shape[0]):
            raise FeatureError("row index out of range")
        rows = np.where(rows < 0, rows + self.shape[0], rows)
        lengths = self.indptr[rows + 1] - self.indptr[rows]
        indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        take = np.concatenate(
            [np.arange(self.indptr[r], self.indptr[r + 1]) for r in rows]
        ) if rows.size else np.empty(0, dtype=np.int64)
        return CSRMatrix(
            self.data[take], self.indices[take], indptr, (rows.size, self.shape[1])
        )

    @classmethod
    def vstack(cls, blocks: Iterable["CSRMatrix"]) -> "CSRMatrix":
        """Stack row blocks with a shared column count."""
        blocks = list(blocks)
        if not blocks:
            raise FeatureError("vstack needs at least one block")
        cols = blocks[0].shape[1]
        for block in blocks:
            if block.shape[1] != cols:
                raise FeatureError(
                    f"column mismatch in vstack: {block.shape[1]} != {cols}"
                )
        indptr_parts = [blocks[0].indptr]
        for block in blocks[1:]:
            offset = indptr_parts[-1][-1]
            indptr_parts.append(block.indptr[1:] + offset)
        return cls(
            np.concatenate([b.data for b in blocks]),
            np.concatenate([b.indices for b in blocks]),
            np.concatenate(indptr_parts),
            (sum(b.shape[0] for b in blocks), cols),
        )

    @classmethod
    def hstack(cls, blocks: Iterable["CSRMatrix | np.ndarray"]) -> "CSRMatrix":
        """Concatenate columns; dense blocks are compressed on the fly.

        Used by the ``combined`` feature family to glue the narrow dense
        classic block onto the wide sparse subgraph block.
        """
        converted = [
            b if isinstance(b, CSRMatrix) else cls.from_dense(b) for b in blocks
        ]
        if not converted:
            raise FeatureError("hstack needs at least one block")
        rows = converted[0].shape[0]
        for block in converted:
            if block.shape[0] != rows:
                raise FeatureError(
                    f"row mismatch in hstack: {block.shape[0]} != {rows}"
                )
        offsets = np.cumsum([0] + [b.shape[1] for b in converted])
        data: list[np.ndarray] = []
        indices: list[np.ndarray] = []
        lengths = np.zeros(rows, dtype=np.int64)
        for block in converted:
            lengths += np.diff(block.indptr)
        indptr = np.zeros(rows + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        for row in range(rows):
            for block, offset in zip(converted, offsets):
                start, stop = block.indptr[row], block.indptr[row + 1]
                indices.append(block.indices[start:stop] + offset)
                data.append(block.data[start:stop])
        return cls(
            np.concatenate(data) if data else np.empty(0),
            np.concatenate(indices) if indices else np.empty(0, dtype=np.int64),
            indptr,
            (rows, int(offsets[-1])),
        )

    # -- column statistics -------------------------------------------------
    def column_support(self) -> np.ndarray:
        """Number of rows with a stored entry per column (one pass).

        For count matrices built from censuses this is exactly the
        "observed around how many roots" support that
        :meth:`~repro.core.features.FeatureSpace.prune` thresholds on.
        """
        return np.bincount(self.indices, minlength=self.shape[1]).astype(np.int64)

    def column_sums(self) -> np.ndarray:
        """Per-column sum of stored values."""
        return np.bincount(
            self.indices, weights=self.data, minlength=self.shape[1]
        ).astype(np.float64)
