"""Core of the reproduction: heterogeneous graphs, the characteristic-
sequence encoding, the rooted subgraph census, and feature extraction."""

from repro.core.cache import CensusCache, census_cache_key
from repro.core.census import CensusConfig, CensusStats, census_total, subgraph_census
from repro.core.collisions import CollisionReport, find_collisions
from repro.core.connectivity import LabelConnectivity, label_connectivity
from repro.core.encoding import (
    CanonicalCode,
    canonical_code,
    code_num_edges,
    code_num_nodes,
    code_to_string,
    encode_subgraph,
    string_to_code,
    validate_code,
)
from repro.core.features import (
    FeatureSpace,
    SubgraphFeatureExtractor,
    SubgraphFeatures,
)
from repro.core.graph import (
    FlatAdjacency,
    FlatGraph,
    HeteroGraph,
    MutableHeteroGraph,
    fingerprint_adjacency,
)
from repro.core.mmap_graph import MmapGraph
from repro.core.sparse import CSRMatrix
from repro.core.hashing import RollingSubgraphHash
from repro.core.interpret import RankedFeature, describe_code, rank_features, realize_code
from repro.core.isomorphism import (
    SmallGraph,
    are_isomorphic,
    enumerate_connected_labelled_graphs,
)
from repro.core.labels import MASK_LABEL, LabelSet
from repro.core.sampled import (
    SampledCensus,
    SampledCensusConfig,
    SampledCensusReport,
    run_sampled_census,
    sampled_config_key,
)
from repro.core.stats import (
    DegreeSummary,
    degree_summary,
    hub_fraction,
    label_assortativity,
    mixing_matrix,
    summarize,
)

__all__ = [
    "DegreeSummary",
    "degree_summary",
    "hub_fraction",
    "label_assortativity",
    "mixing_matrix",
    "summarize",
    "CanonicalCode",
    "CensusCache",
    "CensusConfig",
    "CensusStats",
    "CollisionReport",
    "CSRMatrix",
    "FeatureSpace",
    "FlatAdjacency",
    "FlatGraph",
    "fingerprint_adjacency",
    "HeteroGraph",
    "MmapGraph",
    "LabelConnectivity",
    "LabelSet",
    "MASK_LABEL",
    "MutableHeteroGraph",
    "RankedFeature",
    "RollingSubgraphHash",
    "SampledCensus",
    "SampledCensusConfig",
    "SampledCensusReport",
    "SmallGraph",
    "SubgraphFeatureExtractor",
    "SubgraphFeatures",
    "are_isomorphic",
    "canonical_code",
    "census_cache_key",
    "census_total",
    "code_num_edges",
    "code_num_nodes",
    "code_to_string",
    "describe_code",
    "encode_subgraph",
    "enumerate_connected_labelled_graphs",
    "find_collisions",
    "label_connectivity",
    "rank_features",
    "realize_code",
    "run_sampled_census",
    "sampled_config_key",
    "string_to_code",
    "subgraph_census",
    "validate_code",
]
