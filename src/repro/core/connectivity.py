"""Label connectivity graphs (Figure 1A / Figure 2 of the paper).

The label connectivity graph of a heterogeneous network aggregates all nodes
with the same label into a single node; it has a self loop iff the network
contains an edge between two same-labelled nodes.  The paper uses it both to
characterise datasets (star-like IMDB vs fully connected LOAD) and to state
the collision-free bound on subgraph size: ``e_max = 5`` without label loops
and ``e_max = 4`` with loops (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graph import HeteroGraph
from repro.core.labels import LabelSet


@dataclass(frozen=True)
class LabelConnectivity:
    """Aggregated label-level view of a heterogeneous network.

    Attributes
    ----------
    labelset:
        The underlying label alphabet.
    edge_counts:
        Symmetric ``|L| x |L|`` matrix; entry ``(a, b)`` counts network edges
        between an ``a``-labelled and a ``b``-labelled node.  The diagonal
        counts same-label edges (each once).
    """

    labelset: LabelSet
    edge_counts: np.ndarray

    @property
    def has_loops(self) -> bool:
        """Whether any label is connected to itself (Section 3.1 bound)."""
        return bool(np.any(np.diag(self.edge_counts) > 0))

    def label_pairs(self) -> list[tuple[str, str, int]]:
        """Connected label pairs as ``(name_a, name_b, count)``, a <= b."""
        pairs = []
        k = len(self.labelset)
        for a in range(k):
            for b in range(a, k):
                count = int(self.edge_counts[a, b])
                if count:
                    pairs.append((self.labelset.name(a), self.labelset.name(b), count))
        return pairs

    def collision_free_emax(self) -> int:
        """Maximum subgraph edge count with guaranteed unique encodings.

        The paper derives ``e_max = 5`` for networks whose label connectivity
        graph has no self loops and ``e_max = 4`` otherwise (Section 3.1);
        :mod:`repro.core.collisions` re-derives these bounds by enumeration.
        """
        return 4 if self.has_loops else 5

    def to_networkx(self):
        """Export as a ``networkx.Graph`` with loops and ``count`` edge data."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.labelset.names)
        for a, b, count in self.label_pairs():
            graph.add_edge(a, b, count=count)
        return graph

    def render(self) -> str:
        """One-line-per-pair text rendering used by the figure benches."""
        lines = [f"label connectivity over {list(self.labelset.names)}"]
        for a, b, count in self.label_pairs():
            marker = " (loop)" if a == b else ""
            lines.append(f"  {a} -- {b}: {count}{marker}")
        return "\n".join(lines)


def label_connectivity(graph: HeteroGraph) -> LabelConnectivity:
    """Compute the label connectivity graph of ``graph``."""
    k = len(graph.labelset)
    counts = np.zeros((k, k), dtype=np.int64)
    labels = graph.labels
    for u, v in graph.edges():
        a, b = int(labels[u]), int(labels[v])
        if a == b:
            counts[a, a] += 1
        else:
            counts[a, b] += 1
            counts[b, a] += 1
    return LabelConnectivity(graph.labelset, counts)
