"""Memory-mapped on-disk heterogeneous graph storage (``.hmg``).

Out-of-core counterpart of :class:`~repro.core.graph.HeteroGraph`: the
labelled CSR structure lives in one binary file that is ``mmap``-opened
read-only, and the graph object holds nothing but zero-copy
``memoryview`` windows into it.  Because a ``memoryview("q")`` yields
plain Python ints on indexing — exactly like the lists of a dict-backed
:class:`~repro.core.graph.FlatAdjacency` — every census engine runs on
it unchanged and bit-identically (see ``tests/test_mmap_graph.py``).

File format
-----------
All integers are little-endian ``int64``; every section is 8-byte
aligned::

    offset 0   magic  b"HMGRAPH1"
    offset 8   uint64 header length in bytes
    offset 16  header JSON (UTF-8, space-padded to an 8-byte multiple)
    ...        arrays back to back, offsets recorded in the header:
                 labels[n]     label per node
                 degrees[n]    degree per node
                 indptr[n+1]   CSR offsets
                 neighbors[2m] flat adjacency, per node sorted by
                               (label, index) — the census invariant
                 edge_ids[2m]  dense undirected-edge id per slot
                 edge_u[m]     edge endpoints, edge_u[e] < edge_v[e]
                 edge_v[m]
                 id_offsets[n+1], id_blob  optional external node ids
                                           (JSON-encoded, concatenated)

The header carries the format version, node/edge counts, the label
alphabet, the section table, and the graph ``fingerprint`` — the same
content hash a dict-backed twin computes, so mmap- and dict-backed
censuses share :class:`~repro.runtime.store.ArtifactStore` keys.
Writers emit the whole file to a temp sibling and ``os.replace`` it
into place, so a reader can never observe a torn file.

RSS model: opening is O(1); the kernel pages in only the bytes a census
actually touches and may evict them under pressure, so peak RSS stays
flat in graph size.  Pickling an :class:`MmapGraph` ships only the path
— worker pools re-open the mapping instead of serialising the graph.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
from pathlib import Path
from typing import Iterator

import numpy as np

try:  # pragma: no cover - exercised via monkeypatch in tests
    import mmap as _mmap_module
except ImportError:  # pragma: no cover - platforms without mmap
    _mmap_module = None

from repro.core.graph import FlatAdjacency, FlatGraph, NodeId
from repro.core.labels import LabelSet
from repro.exceptions import GraphError

#: File magic — 8 bytes, doubles as a format-name/major-version stamp.
HMG_MAGIC = b"HMGRAPH1"
#: Header JSON schema version (minor revisions bump this).
HMG_VERSION = 1
#: Conventional suffix; the loader only trusts the magic, not the name.
HMG_SUFFIX = ".hmg"

_PREAMBLE = struct.Struct("<8sQ")
_ITEM = 8  # bytes per int64 array element

#: Array sections in file order: (name, count as f(num_nodes, num_edges)).
_SECTIONS = (
    ("labels", lambda n, m: n),
    ("degrees", lambda n, m: n),
    ("indptr", lambda n, m: n + 1),
    ("neighbors", lambda n, m: 2 * m),
    ("edge_ids", lambda n, m: 2 * m),
    ("edge_u", lambda n, m: m),
    ("edge_v", lambda n, m: m),
)

_HEADER_KEYS = ("version", "fingerprint", "num_nodes", "num_edges", "labels", "arrays")

#: Placeholder hashed-size stand-in written before the real fingerprint is
#: known; same length as a blake2b-16 hexdigest so the header size is fixed.
_FINGERPRINT_PLACEHOLDER = "0" * 32


def _aligned(n: int) -> int:
    return (n + 7) & ~7


def _map_readonly(path: Path) -> tuple[memoryview, bool]:
    """Map ``path`` read-only; fall back to buffered reads without mmap.

    Returns ``(buffer, mmap_backed)``.  The fallback (``mmap`` module
    missing or the mapping refused, e.g. exotic filesystems) loads the
    file into memory — same semantics, no out-of-core benefit — so
    every ``.hmg`` consumer works on platforms without ``mmap``.
    """
    with open(path, "rb") as handle:
        if _mmap_module is not None:
            try:
                mapped = _mmap_module.mmap(
                    handle.fileno(), 0, access=_mmap_module.ACCESS_READ
                )
                return memoryview(mapped), True
            except (OSError, ValueError, OverflowError):
                handle.seek(0)
        return memoryview(handle.read()), False


class MmapGraph(FlatGraph):
    """A read-only heterogeneous graph opened from a ``.hmg`` file.

    Satisfies the full :class:`~repro.core.graph.FlatGraph` census
    contract plus the accessors the experiment pipelines use
    (``labels``, ``degrees``, ``edges``, ``nodes_with_label``,
    ``node_id``/``index``), all as zero-copy views over the mapping.

    Pickles as its path: worker processes re-open the mapping on
    ``__setstate__`` — a few syscalls — instead of receiving a
    serialised graph, which is both why ``census_many`` pool startup is
    cheap and why peak RSS stays flat at any ``n_jobs``.
    """

    storage_kind = "mmap"

    __slots__ = (
        "_path",
        "_buffer",
        "_mmap_backed",
        "_header",
        "_id_offsets",
        "_id_blob",
        "_index_of",
    )

    def __init__(self, path) -> None:
        self._path = Path(path)
        try:
            buffer, mmap_backed = _map_readonly(self._path)
        except OSError as exc:
            raise GraphError(f"cannot open mmap graph {self._path}: {exc}") from None
        self._buffer = buffer
        self._mmap_backed = mmap_backed
        header = self._read_header(buffer)
        self._header = header
        labelset = LabelSet(tuple(header["labels"]))
        n, m = header["num_nodes"], header["num_edges"]
        arrays = {}
        for name, count_of in _SECTIONS:
            arrays[name] = self._view(name, count_of(n, m))
        flat = FlatAdjacency(
            labels=arrays["labels"],
            degrees=arrays["degrees"],
            indptr=arrays["indptr"],
            neighbors=arrays["neighbors"],
            edge_ids=arrays["edge_ids"],
            edge_u=arrays["edge_u"],
            edge_v=arrays["edge_v"],
        )
        FlatGraph.__init__(self, flat, labelset)
        self._num_nodes = n  # len(memoryview) agrees; keep the header's word
        self._fingerprint = header["fingerprint"]
        if "id_offsets" in header["arrays"]:
            self._id_offsets = self._view("id_offsets", n + 1)
            off, nbytes = header["arrays"]["id_blob"]
            self._check_span("id_blob", off, nbytes)
            self._id_blob = bytes(buffer[off: off + nbytes])
        else:
            self._id_offsets = None
            self._id_blob = None
        self._index_of = None  # id -> index map, built on first index()

    # ------------------------------------------------------------------
    # Loading / validation
    # ------------------------------------------------------------------
    def _read_header(self, buffer: memoryview) -> dict:
        path = self._path
        if len(buffer) < _PREAMBLE.size:
            raise GraphError(
                f"truncated mmap graph {path}: {len(buffer)} bytes is smaller "
                f"than the {_PREAMBLE.size}-byte preamble"
            )
        magic, header_len = _PREAMBLE.unpack_from(buffer, 0)
        if magic != HMG_MAGIC:
            raise GraphError(
                f"{path} is not an .hmg graph file (bad magic {magic!r})"
            )
        end = _PREAMBLE.size + header_len
        if len(buffer) < end:
            raise GraphError(
                f"truncated mmap graph {path}: header claims {header_len} "
                f"bytes but only {len(buffer) - _PREAMBLE.size} follow"
            )
        try:
            header = json.loads(bytes(buffer[_PREAMBLE.size: end]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise GraphError(f"corrupt .hmg header in {path}: {exc}") from None
        missing = [key for key in _HEADER_KEYS if key not in header]
        if missing:
            raise GraphError(
                f"corrupt .hmg header in {path}: missing keys {missing}"
            )
        if header["version"] != HMG_VERSION:
            raise GraphError(
                f"unsupported .hmg version {header['version']} in {path} "
                f"(this build reads version {HMG_VERSION})"
            )
        return header

    def _check_span(self, name: str, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > len(self._buffer):
            raise GraphError(
                f"truncated mmap graph {self._path}: section {name!r} "
                f"spans bytes [{offset}, {offset + nbytes}) of a "
                f"{len(self._buffer)}-byte file"
            )

    def _view(self, name: str, count: int) -> memoryview:
        """Zero-copy int64 window for one section (plain ints on indexing)."""
        try:
            offset, stored = self._header["arrays"][name]
        except (KeyError, TypeError, ValueError):
            raise GraphError(
                f"corrupt .hmg header in {self._path}: bad section table "
                f"entry for {name!r}"
            ) from None
        if stored != count:
            raise GraphError(
                f"corrupt .hmg header in {self._path}: section {name!r} has "
                f"{stored} entries, counts imply {count}"
            )
        self._check_span(name, offset, count * _ITEM)
        return self._buffer[offset: offset + count * _ITEM].cast("q")

    # ------------------------------------------------------------------
    # Identity / lifecycle
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        """The backing ``.hmg`` file."""
        return self._path

    @property
    def mmap_backed(self) -> bool:
        """False when the buffered-read fallback was used (no ``mmap``)."""
        return self._mmap_backed

    def __getstate__(self):
        return str(self._path)

    def __setstate__(self, state) -> None:
        self.__init__(state)

    def close(self) -> None:
        """Release the mapping.  The graph is unusable afterwards."""
        self._flat = None
        self._id_offsets = None
        buffer, self._buffer = self._buffer, None
        if buffer is not None:
            obj = buffer.obj
            buffer.release()
            if self._mmap_backed and obj is not None:
                obj.close()

    def __enter__(self) -> "MmapGraph":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # HeteroGraph-compatible accessors beyond the census contract
    # ------------------------------------------------------------------
    @property
    def labels(self) -> np.ndarray:
        """Integer label per node (read-only zero-copy view)."""
        view = np.asarray(self._flat.labels)
        view.flags.writeable = False
        return view

    def degrees(self) -> np.ndarray:
        view = np.asarray(self._flat.degrees)
        view.flags.writeable = False
        return view

    def label_counts(self) -> np.ndarray:
        """Number of nodes per label, aligned with alphabet order."""
        return np.bincount(self.labels, minlength=len(self._labelset))

    def nodes_with_label(self, label: int) -> np.ndarray:
        """Indices of all nodes carrying ``label``."""
        return np.flatnonzero(self.labels == label)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges as index pairs with ``u < v``."""
        edge_u, edge_v = self._flat.edge_u, self._flat.edge_v
        for e in range(len(edge_u)):
            yield edge_u[e], edge_v[e]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether nodes at indices ``u`` and ``v`` are adjacent."""
        if self._flat.degrees[v] < self._flat.degrees[u]:
            u, v = v, u
        return any(w == v for w in self.neighbors(u))

    # -- external node ids (present when the writer stored them) -------
    def _require_ids(self) -> None:
        if self._id_offsets is None:
            raise GraphError(
                f"mmap graph {self._path} was written without external node "
                "ids; address nodes by integer index"
            )

    def node_id(self, index: int) -> NodeId:
        """External id of an internal index (the index itself if none stored)."""
        if not 0 <= index < self._num_nodes:
            raise GraphError(f"node index {index} out of range")
        if self._id_offsets is None:
            return index
        lo, hi = self._id_offsets[index], self._id_offsets[index + 1]
        return json.loads(self._id_blob[lo:hi].decode("utf-8"))

    @property
    def node_ids(self) -> tuple:
        """All external ids in index order (materialises O(n) — avoid on
        graphs that were mmap'd *because* they don't fit in memory)."""
        return tuple(self.node_id(i) for i in range(self._num_nodes))

    def index(self, node_id: NodeId) -> int:
        """Internal index of an external node id.

        Builds the id map lazily on first use (O(n) memory); integer
        indices are always accepted, so out-of-core pipelines that
        address nodes by index never pay for the map.
        """
        if isinstance(node_id, int) and self._id_offsets is None:
            if not 0 <= node_id < self._num_nodes:
                raise GraphError(f"unknown node {node_id!r}")
            return node_id
        self._require_ids()
        if self._index_of is None:
            self._index_of = {
                self.node_id(i): i for i in range(self._num_nodes)
            }
        try:
            return self._index_of[node_id]
        except (KeyError, TypeError):
            raise GraphError(f"unknown node {node_id!r}") from None


def encode_node_ids(ids) -> tuple[np.ndarray, bytes]:
    """JSON-encode external node ids into ``(offsets, blob)`` sections."""
    chunks: list[bytes] = []
    offsets = np.zeros(len(ids) + 1, dtype=np.int64)
    total = 0
    for i, node_id in enumerate(ids):
        try:
            chunk = json.dumps(node_id, ensure_ascii=False).encode("utf-8")
        except (TypeError, ValueError):
            raise GraphError(
                f"node id {node_id!r} is not JSON-serialisable; .hmg files "
                "store external ids as JSON"
            ) from None
        chunks.append(chunk)
        total += len(chunk)
        offsets[i + 1] = total
    return offsets, b"".join(chunks)


class HmgWriter:
    """Sequential writer for one ``.hmg`` file.

    Section sizes are fixed by ``(num_nodes, num_edges, ids_blob_len)``,
    so the layout — and therefore the header length — is known before
    any array data arrives.  The header is first written with a
    fingerprint placeholder of the final hexdigest's exact length, the
    arrays are streamed in chunks (callers never hold a full array of a
    big graph in memory), and :meth:`finalize` patches the real
    fingerprint in and atomically renames the temp file into place.
    """

    def __init__(
        self,
        path,
        *,
        label_names,
        num_nodes: int,
        num_edges: int,
        ids_blob_len: int | None = None,
    ) -> None:
        self.path = Path(path)
        self._label_names = tuple(label_names)
        self._n = int(num_nodes)
        self._m = int(num_edges)
        sections = [(name, count_of(self._n, self._m)) for name, count_of in _SECTIONS]
        if ids_blob_len is not None:
            sections.append(("id_offsets", self._n + 1))
        # Size the header before any offset exists: serialise a probe table
        # with worst-case-width numbers, so the real header (written again
        # by finalize with the actual fingerprint) can never outgrow it.
        probe = {name: [2**62, 2**62] for name, _ in sections}
        if ids_blob_len is not None:
            probe["id_blob"] = [2**62, 2**62]
        self._header_len = _aligned(len(self._header_json(_FINGERPRINT_PLACEHOLDER, probe)))
        self._layout: dict[str, tuple[int, int]] = {}
        self._written: dict[str, int] = {}
        cursor = _PREAMBLE.size + self._header_len
        for name, count in sections:
            self._layout[name] = (cursor, count)
            self._written[name] = 0
            cursor += _aligned(count * _ITEM)
        if ids_blob_len is not None:
            self._layout["id_blob"] = (cursor, ids_blob_len)
            self._written["id_blob"] = 0
            cursor += _aligned(ids_blob_len)
        self._total = cursor
        handle, tmp_name = tempfile.mkstemp(
            prefix=self.path.name + ".", suffix=".tmp", dir=self.path.parent
        )
        self._tmp = Path(tmp_name)
        self._handle = os.fdopen(handle, "wb")
        self._handle.write(_PREAMBLE.pack(HMG_MAGIC, self._header_len))
        self._handle.write(self._header_bytes(_FINGERPRINT_PLACEHOLDER))
        self._handle.truncate(self._total)

    def _header_json(self, fingerprint: str, arrays: dict) -> bytes:
        header = {
            "version": HMG_VERSION,
            "fingerprint": fingerprint,
            "num_nodes": self._n,
            "num_edges": self._m,
            "labels": list(self._label_names),
            "arrays": {name: list(span) for name, span in sorted(arrays.items())},
        }
        return json.dumps(header, separators=(",", ":")).encode("utf-8")

    def _header_bytes(self, fingerprint: str) -> bytes:
        body = self._header_json(fingerprint, self._layout)
        if len(body) > self._header_len:  # pragma: no cover - probe invariant
            raise GraphError("internal error: .hmg header outgrew its probe")
        return body + b" " * (self._header_len - len(body))

    def append(self, name: str, values) -> None:
        """Append int64 ``values`` (any array-like chunk) to a section."""
        offset, count = self._layout[name]
        chunk = np.ascontiguousarray(values, dtype="<i8")
        done = self._written[name]
        if done + chunk.size > count:
            raise GraphError(
                f"section {name!r} overflow: {done + chunk.size} > {count}"
            )
        self._handle.seek(offset + done * _ITEM)
        self._handle.write(chunk.tobytes())
        self._written[name] = done + chunk.size

    def append_blob(self, name: str, data: bytes) -> None:
        """Append raw bytes to a blob section (node-id payload)."""
        offset, nbytes = self._layout[name]
        done = self._written[name]
        if done + len(data) > nbytes:
            raise GraphError(
                f"section {name!r} overflow: {done + len(data)} > {nbytes}"
            )
        self._handle.seek(offset + done)
        self._handle.write(data)
        self._written[name] = done + len(data)

    def finalize(self, fingerprint: str) -> Path:
        """Patch the fingerprint in, fsync, and atomically publish."""
        short = [
            name
            for name, (offset, count) in self._layout.items()
            if self._written[name] != count
        ]
        if short:
            self.abort()
            raise GraphError(f"incomplete .hmg sections: {short}")
        self._handle.seek(_PREAMBLE.size)
        self._handle.write(self._header_bytes(fingerprint))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        os.replace(self._tmp, self.path)
        return self.path

    def abort(self) -> None:
        """Drop the temp file (safe to call after a failed write)."""
        try:
            self._handle.close()
        except OSError:  # pragma: no cover - already closed
            pass
        try:
            os.unlink(self._tmp)
        except OSError:
            pass
