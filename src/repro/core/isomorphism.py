"""Exact isomorphism for small labelled graphs.

The encoding of Section 3.1 is only *pseudo*-canonical: it distinguishes
subgraphs up to isomorphism for small edge counts and may collide beyond
``e_max``.  This module provides the ground truth the encoding is measured
against — a label-respecting backtracking isomorphism test — together with
an enumerator of all connected labelled graphs up to a given number of
edges, which powers the collision analysis of :mod:`repro.core.collisions`.

Graphs here are plain ``(labels, edges)`` pairs: ``labels[i]`` is the integer
label of node ``i`` and ``edges`` a list of index pairs.  These graphs are
tiny (at most ``e_max + 1`` nodes), so a straightforward backtracking search
with label/degree pruning is more than fast enough.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Sequence

from repro.core.encoding import CanonicalCode, encode_subgraph
from repro.exceptions import GraphError

Edges = tuple[tuple[int, int], ...]


class SmallGraph:
    """A tiny labelled graph with precomputed invariants for fast matching."""

    __slots__ = ("labels", "edges", "adjacency", "_signature")

    def __init__(self, labels: Sequence[int], edges: Sequence[tuple[int, int]]) -> None:
        n = len(labels)
        adjacency: list[set[int]] = [set() for _ in range(n)]
        normalised = []
        for u, v in edges:
            if u == v:
                raise GraphError("self loops are not allowed")
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) out of range for {n} nodes")
            if v in adjacency[u]:
                raise GraphError(f"duplicate edge ({u}, {v})")
            adjacency[u].add(v)
            adjacency[v].add(u)
            normalised.append((u, v) if u < v else (v, u))
        self.labels = tuple(labels)
        self.edges: Edges = tuple(sorted(normalised))
        self.adjacency = adjacency
        # Per-node invariant: (own label, sorted multiset of neighbour labels).
        self._signature = tuple(
            (self.labels[i], tuple(sorted(self.labels[j] for j in adjacency[i])))
            for i in range(n)
        )

    @property
    def num_nodes(self) -> int:
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def encode(self, num_labels: int) -> CanonicalCode:
        """Characteristic-sequence code of this graph."""
        return encode_subgraph(self.labels, self.edges, num_labels)

    def sorted_signature(self) -> tuple:
        """Order-independent invariant used to bucket candidates."""
        return tuple(sorted(self._signature))

    def is_connected(self) -> bool:
        if self.num_nodes == 0:
            return False
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for v in self.adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == self.num_nodes

    def __repr__(self) -> str:
        return f"SmallGraph(labels={self.labels}, edges={list(self.edges)})"


def are_isomorphic(a: SmallGraph, b: SmallGraph) -> bool:
    """Label-respecting isomorphism test via backtracking.

    Prunes on node/edge counts and per-node signatures before searching for
    a bijection that preserves both adjacency and labels (the two conditions
    of Section 3's definition).
    """
    if a.num_nodes != b.num_nodes or a.num_edges != b.num_edges:
        return False
    if a.sorted_signature() != b.sorted_signature():
        return False

    n = a.num_nodes
    # candidates[i] = nodes of b that i may map to, by signature equality.
    sig_a = a._signature
    sig_b = b._signature
    candidates = [
        [j for j in range(n) if sig_b[j] == sig_a[i]] for i in range(n)
    ]
    # Match most-constrained nodes first.
    order = sorted(range(n), key=lambda i: len(candidates[i]))
    mapping = [-1] * n
    used = [False] * n

    def extend(position: int) -> bool:
        if position == n:
            return True
        i = order[position]
        for j in candidates[i]:
            if used[j]:
                continue
            consistent = all(
                mapping[neighbour] == -1 or mapping[neighbour] in b.adjacency[j]
                for neighbour in a.adjacency[i]
            )
            # Also ensure no mapped non-neighbour became a neighbour.
            if consistent:
                mapped_neighbours = sum(
                    1 for neighbour in a.adjacency[i] if mapping[neighbour] != -1
                )
                mapped_b_neighbours = sum(
                    1
                    for k in range(n)
                    if mapping[k] != -1 and mapping[k] in b.adjacency[j]
                )
                consistent = mapped_neighbours == mapped_b_neighbours
            if consistent:
                mapping[i] = j
                used[j] = True
                if extend(position + 1):
                    return True
                mapping[i] = -1
                used[j] = False
        return False

    return extend(0)


def enumerate_connected_labelled_graphs(
    num_labels: int,
    max_edges: int,
    allow_same_label_edges: bool = True,
    max_nodes: int | None = None,
) -> Iterator[SmallGraph]:
    """Yield one representative per isomorphism class of connected labelled
    graphs with ``1 .. max_edges`` edges.

    Parameters
    ----------
    num_labels:
        Size of the label alphabet; labellings range over all of it.
    max_edges:
        Largest edge count to enumerate.
    allow_same_label_edges:
        When ``False``, graphs with an edge between two same-labelled nodes
        are skipped — this models networks whose label connectivity graph
        has no self loops (the ``e_max = 5`` regime of Section 3.1).
    max_nodes:
        Optional cap on node count (defaults to ``max_edges + 1``, the
        maximum for a connected graph).

    Notes
    -----
    Representatives are grown breadth-first by edge count: every graph with
    ``m + 1`` edges contains a connected ``m``-edge subgraph, so extending
    each ``m``-edge representative by one edge (closing a pair or attaching
    a newly labelled node) reaches every class.  Deduplication buckets by
    the sorted signature invariant and falls back to exact isomorphism
    inside buckets.
    """
    if max_nodes is None:
        max_nodes = max_edges + 1

    def edge_allowed(label_u: int, label_v: int) -> bool:
        return allow_same_label_edges or label_u != label_v

    current: list[SmallGraph] = []
    seen: dict[tuple, list[SmallGraph]] = {}

    def register(graph: SmallGraph) -> bool:
        key = graph.sorted_signature()
        bucket = seen.setdefault(key, [])
        if any(are_isomorphic(graph, other) for other in bucket):
            return False
        bucket.append(graph)
        return True

    # Seed: single edges over all (unordered) label pairs.
    for la in range(num_labels):
        for lb in range(la, num_labels):
            if edge_allowed(la, lb):
                graph = SmallGraph((la, lb), [(0, 1)])
                if register(graph):
                    current.append(graph)
                    yield graph

    for _ in range(1, max_edges):
        nxt: list[SmallGraph] = []
        for graph in current:
            n = len(graph.labels)
            # (a) close an edge between two existing non-adjacent nodes.
            for u, v in combinations(range(n), 2):
                if v in graph.adjacency[u]:
                    continue
                if not edge_allowed(graph.labels[u], graph.labels[v]):
                    continue
                extended = SmallGraph(graph.labels, graph.edges + ((u, v),))
                if register(extended):
                    nxt.append(extended)
                    yield extended
            # (b) attach a new node with every label to every existing node.
            if n < max_nodes:
                for u in range(n):
                    for label in range(num_labels):
                        if not edge_allowed(graph.labels[u], label):
                            continue
                        extended = SmallGraph(
                            graph.labels + (label,), graph.edges + ((u, n),)
                        )
                        if register(extended):
                            nxt.append(extended)
                            yield extended
        current = nxt
