"""Encoding collision analysis (Section 3.1 limitations, Figure 1C).

The characteristic-sequence encoding is only pseudo-canonical: beyond a
certain subgraph size, non-isomorphic labelled graphs can share a code.  The
paper reports, by exhaustive enumeration, that encodings are collision-free
up to ``e_max = 5`` edges when the label connectivity graph has no self
loops and up to ``e_max = 4`` when it does.

This module re-derives those bounds: it enumerates all connected labelled
graphs up to a given edge count (via :mod:`repro.core.isomorphism`), buckets
them by encoding, and reports buckets containing non-isomorphic members.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.encoding import CanonicalCode
from repro.core.isomorphism import (
    SmallGraph,
    are_isomorphic,
    enumerate_connected_labelled_graphs,
)


@dataclass(frozen=True)
class Collision:
    """Two non-isomorphic labelled graphs sharing one encoding."""

    code: CanonicalCode
    first: SmallGraph
    second: SmallGraph

    @property
    def num_edges(self) -> int:
        return self.first.num_edges


@dataclass
class CollisionReport:
    """Result of a collision sweep up to ``max_edges``.

    Attributes
    ----------
    num_labels / allow_same_label_edges / max_edges:
        The enumeration parameters.
    graphs_checked:
        Total isomorphism classes enumerated.
    collisions:
        All collisions found, in discovery order.
    """

    num_labels: int
    allow_same_label_edges: bool
    max_edges: int
    graphs_checked: int
    collisions: list[Collision]

    @property
    def first_collision_edges(self) -> int | None:
        """Edge count of the smallest colliding pair, or ``None``."""
        if not self.collisions:
            return None
        return min(c.num_edges for c in self.collisions)

    @property
    def collision_free_emax(self) -> int:
        """Largest edge count with no collisions at or below it.

        Only meaningful when the sweep found a collision; otherwise the
        bound is at least ``max_edges`` (all checked sizes were clean).
        """
        first = self.first_collision_edges
        if first is None:
            return self.max_edges
        return first - 1

    def summary(self) -> str:
        regime = "with" if self.allow_same_label_edges else "without"
        lines = [
            f"labels={self.num_labels}, {regime} same-label edges, "
            f"up to {self.max_edges} edges: {self.graphs_checked} classes, "
            f"{len(self.collisions)} collisions",
            f"collision-free e_max >= {self.collision_free_emax}",
        ]
        return "\n".join(lines)


def find_collisions(
    num_labels: int,
    max_edges: int,
    allow_same_label_edges: bool = True,
    max_nodes: int | None = None,
    stop_at_first: bool = False,
) -> CollisionReport:
    """Enumerate labelled graphs and report encoding collisions.

    Parameters
    ----------
    num_labels:
        Alphabet size for the enumeration.
    max_edges:
        Largest subgraph edge count to check.
    allow_same_label_edges:
        ``True`` models label connectivity graphs *with* self loops (the
        ``e_max = 4`` regime), ``False`` the loop-free ``e_max = 5`` regime.
    max_nodes:
        Optional node cap forwarded to the enumerator.
    stop_at_first:
        Return as soon as one collision is found (used by tests that only
        need the bound, not the full census of collisions).
    """
    buckets: dict[CanonicalCode, list[SmallGraph]] = {}
    collisions: list[Collision] = []
    graphs_checked = 0
    for graph in enumerate_connected_labelled_graphs(
        num_labels,
        max_edges,
        allow_same_label_edges=allow_same_label_edges,
        max_nodes=max_nodes,
    ):
        graphs_checked += 1
        code = graph.encode(num_labels)
        bucket = buckets.setdefault(code, [])
        for other in bucket:
            # The enumerator yields one representative per isomorphism
            # class, so same-code bucket mates are collisions by
            # construction; assert that with the exact test.
            if not are_isomorphic(graph, other):
                collisions.append(Collision(code, other, graph))
                if stop_at_first:
                    bucket.append(graph)
                    return CollisionReport(
                        num_labels,
                        allow_same_label_edges,
                        max_edges,
                        graphs_checked,
                        collisions,
                    )
        bucket.append(graph)
    return CollisionReport(
        num_labels, allow_same_label_edges, max_edges, graphs_checked, collisions
    )
