"""Topology statistics for heterogeneous networks.

The paper's heuristics are motivated by topology: skewed degree
distributions justify ``d_max`` (Section 3.2), label mixing profiles make
labels learnable from masked neighbourhoods, and the density differences
between LOAD and IMDB explain their Table 2 behaviour.  This module
quantifies those properties so dataset stand-ins can be validated against
the real networks' published characteristics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graph import HeteroGraph
from repro.exceptions import GraphError


@dataclass(frozen=True)
class DegreeSummary:
    """Five-number-style summary of a degree distribution."""

    mean: float
    median: float
    p90: float
    p99: float
    maximum: int
    gini: float

    def render(self) -> str:
        return (
            f"degree mean {self.mean:.2f}, median {self.median:.0f}, "
            f"p90 {self.p90:.0f}, p99 {self.p99:.0f}, max {self.maximum}, "
            f"gini {self.gini:.2f}"
        )


def degree_summary(graph: HeteroGraph) -> DegreeSummary:
    """Summarise the degree distribution, including its Gini coefficient.

    The Gini coefficient (0 = all degrees equal, -> 1 = one hub holds all
    edges) is a scale-free measure of the skew the paper's heuristics
    target; real co-occurrence networks typically exceed 0.5.
    """
    if graph.num_nodes == 0:
        raise GraphError("graph has no nodes")
    degrees = np.sort(graph.degrees().astype(np.float64))
    n = degrees.size
    total = degrees.sum()
    if total == 0:
        gini = 0.0
    else:
        # Standard formula for sorted values.
        index = np.arange(1, n + 1)
        gini = float((2.0 * np.sum(index * degrees) - (n + 1) * total) / (n * total))
    return DegreeSummary(
        mean=float(degrees.mean()),
        median=float(np.median(degrees)),
        p90=float(np.percentile(degrees, 90)),
        p99=float(np.percentile(degrees, 99)),
        maximum=int(degrees.max()),
        gini=gini,
    )


def mixing_matrix(graph: HeteroGraph, normalize: bool = True) -> np.ndarray:
    """Label mixing matrix ``M[a, b]``: fraction (or count) of edge
    endpoints of label ``a`` whose opposite endpoint has label ``b``.

    Rows sum to 1 when ``normalize`` is set (and the label has any edges).
    This is the signal that masked-label prediction exploits: rows must
    differ between labels for the task to be solvable.
    """
    k = len(graph.labelset)
    counts = np.zeros((k, k), dtype=np.float64)
    labels = graph.labels
    for u, v in graph.edges():
        a, b = int(labels[u]), int(labels[v])
        counts[a, b] += 1
        counts[b, a] += 1
    if not normalize:
        return counts
    sums = counts.sum(axis=1, keepdims=True)
    sums[sums == 0.0] = 1.0
    return counts / sums


def label_assortativity(graph: HeteroGraph) -> float:
    """Newman's assortativity coefficient for the node-label attribute.

    +1: edges only join same-labelled nodes; 0: labels mix at random;
    negative: disassortative (bipartite-ish, e.g. IMDB's star is -1-like
    because movies never link to movies).
    """
    if graph.num_edges == 0:
        raise GraphError("assortativity needs at least one edge")
    k = len(graph.labelset)
    e = np.zeros((k, k), dtype=np.float64)
    labels = graph.labels
    for u, v in graph.edges():
        a, b = int(labels[u]), int(labels[v])
        e[a, b] += 1.0
        e[b, a] += 1.0
    e /= e.sum()
    a_marginal = e.sum(axis=1)
    trace = float(np.trace(e))
    expected = float(np.sum(a_marginal**2))
    if expected == 1.0:
        return 1.0  # single label: degenerate, perfectly assortative
    return (trace - expected) / (1.0 - expected)


def hub_fraction(graph: HeteroGraph, percentile: float = 90.0) -> float:
    """Fraction of all edge endpoints held by nodes above the degree
    percentile — how much of the network routes through hubs."""
    degrees = graph.degrees().astype(np.float64)
    if degrees.sum() == 0:
        return 0.0
    threshold = np.percentile(degrees[degrees > 0], percentile)
    return float(degrees[degrees > threshold].sum() / degrees.sum())


def summarize(graph: HeteroGraph) -> str:
    """Multi-line topology report used by examples and dataset validation."""
    lines = [repr(graph), degree_summary(graph).render()]
    lines.append(f"label assortativity: {label_assortativity(graph):+.3f}")
    lines.append(
        f"edge mass above p90 degree: {hub_fraction(graph):.1%}"
    )
    mix = mixing_matrix(graph)
    names = graph.labelset.names
    lines.append("mixing matrix (rows sum to 1):")
    header = "      " + "".join(f"{n:>7}" for n in names)
    lines.append(header)
    for i, name in enumerate(names):
        row = "".join(f"{mix[i, j]:>7.2f}" for j in range(len(names)))
        lines.append(f"  {name:<4}{row}")
    return "\n".join(lines)
