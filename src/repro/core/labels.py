"""Label alphabets for heterogeneous graphs.

The paper models a heterogeneous network as a labelled graph ``G = (V, E, L)``
with a labelling function ``lambda: V -> L``.  The characteristic-sequence
encoding of Section 3.1 depends on a *fixed ordering* of the labels
``l = 1, ..., |L|``; this module owns that ordering.

A :class:`LabelSet` maps user-facing label names (strings) to contiguous
integer indices.  Everything downstream (graphs, encodings, hashes) works on
the integer indices, which keeps the hot census loop free of string handling.

The evaluation in Section 4.3.2 masks the label of the start node with an
artificial label so that rooted counts do not leak the target label into the
feature.  :meth:`LabelSet.with_mask` returns an extended alphabet containing
that extra mask label.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.exceptions import LabelError

#: Name used for the artificial start-node label of Section 4.3.2.
MASK_LABEL = "__mask__"


class LabelSet:
    """An ordered, immutable alphabet of node labels.

    Parameters
    ----------
    names:
        The label names in their fixed order.  Order matters: it defines the
        positions ``t_1 .. t_k`` inside every characteristic sequence, so two
        graphs can only share a feature space if they share a ``LabelSet``.

    Raises
    ------
    LabelError
        If ``names`` is empty or contains duplicates.
    """

    __slots__ = ("_names", "_index")

    def __init__(self, names: Sequence[str]) -> None:
        names = tuple(str(n) for n in names)
        if not names:
            raise LabelError("a LabelSet needs at least one label")
        index = {name: i for i, name in enumerate(names)}
        if len(index) != len(names):
            raise LabelError(f"duplicate label names in {names!r}")
        self._names = names
        self._index = index

    @classmethod
    def from_labelling(cls, labels: Iterable[str]) -> "LabelSet":
        """Build an alphabet from an iterable of observed node labels.

        Labels are ordered by first occurrence, which gives a deterministic
        alphabet for deterministic input order.
        """
        seen: dict[str, None] = {}
        for label in labels:
            seen.setdefault(str(label), None)
        return cls(tuple(seen))

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabelSet):
            return NotImplemented
        return self._names == other._names

    def __hash__(self) -> int:
        return hash(self._names)

    def __repr__(self) -> str:
        return f"LabelSet({list(self._names)!r})"

    @property
    def names(self) -> tuple[str, ...]:
        """The label names in alphabet order."""
        return self._names

    def index(self, name: str) -> int:
        """Return the integer index of ``name``.

        Raises
        ------
        LabelError
            If the label is not part of this alphabet.
        """
        try:
            return self._index[name]
        except KeyError:
            raise LabelError(
                f"unknown label {name!r}; alphabet is {list(self._names)!r}"
            ) from None

    def name(self, index: int) -> str:
        """Return the label name at ``index``.

        Raises
        ------
        LabelError
            If the index is out of range.
        """
        if not 0 <= index < len(self._names):
            raise LabelError(
                f"label index {index} out of range for {len(self._names)} labels"
            )
        return self._names[index]

    def encode(self, labels: Iterable[str]) -> list[int]:
        """Encode an iterable of label names to integer indices."""
        return [self.index(name) for name in labels]

    def with_mask(self) -> "LabelSet":
        """Return an alphabet extended by the artificial mask label.

        The mask label is appended *after* the real labels so the indices of
        real labels are unchanged, which lets masked and unmasked encodings
        share per-label positions.
        """
        if MASK_LABEL in self._index:
            return self
        return LabelSet(self._names + (MASK_LABEL,))

    @property
    def mask_index(self) -> int:
        """Index of the mask label.

        Raises
        ------
        LabelError
            If this alphabet was not created via :meth:`with_mask`.
        """
        return self.index(MASK_LABEL)

    def has_mask(self) -> bool:
        """Whether this alphabet contains the artificial mask label."""
        return MASK_LABEL in self._index
