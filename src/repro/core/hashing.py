"""Rolling hash for characteristic sequences (Section 3.2, Eq. 5).

The paper replaces string hashing of the characteristic sequence with an
incremental integer scheme: node ``v`` with label-degree counts
``t_1 .. t_k`` contributes ``h(s_v) = sum_i t_i * b_v^i`` where the base
``b_v`` depends only on the *label* of ``v``; the subgraph hash is the sum of
node contributions modulo a large prime.  Because the hash is a sum it is
invariant under node reorderings, exactly like the lexicographically sorted
sequence, and it supports O(labels) incremental updates when a node joins a
subgraph.

The hash is *lossier* than the canonical tuple, and the loss has an exact
characterisation: because each edge ``uv`` contributes ``b_u^{l(v)+1} +
b_v^{l(u)+1}`` independently of everything else, the subgraph hash depends
only on the *multiset of edge label pairs* — a star and a path with the same
edge labels collide by construction.  (This is a property of Eq. 5 itself,
not of this implementation.)  The census therefore uses canonical tuples as
dictionary keys by default and offers the rolling hash as the fast keying
mode measured by the hashing ablation bench.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.encoding import CanonicalCode
from repro.exceptions import EncodingError

#: Default modulus: the Mersenne prime 2^61 - 1, large enough that random
#: collisions are negligible at census scale while sums stay in machine ints.
DEFAULT_MODULUS = (1 << 61) - 1

#: Default per-label bases; distinct odd primes well above any realistic
#: in-subgraph degree so that small count vectors map to distinct residues.
_DEFAULT_BASES = (
    1_000_003,
    1_000_033,
    1_000_037,
    1_000_039,
    1_000_081,
    1_000_099,
    1_000_117,
    1_000_121,
    1_000_133,
    1_000_151,
    1_000_159,
    1_000_171,
)


class RollingSubgraphHash:
    """Precomputed power tables for hashing subgraphs over one alphabet.

    Parameters
    ----------
    num_labels:
        Size of the label alphabet; one base per label.
    bases:
        Optional explicit per-label bases (length ``num_labels``).
    modulus:
        Prime modulus for all arithmetic.
    """

    __slots__ = ("num_labels", "modulus", "_powers")

    def __init__(
        self,
        num_labels: int,
        bases: Sequence[int] | None = None,
        modulus: int = DEFAULT_MODULUS,
    ) -> None:
        if num_labels < 1:
            raise EncodingError("need at least one label")
        if bases is None:
            if num_labels > len(_DEFAULT_BASES):
                rng = np.random.default_rng(num_labels)
                extra = [int(x) | 1 for x in rng.integers(1 << 20, 1 << 30, num_labels)]
                bases = extra
            else:
                bases = _DEFAULT_BASES[:num_labels]
        if len(bases) != num_labels:
            raise EncodingError(
                f"got {len(bases)} bases for {num_labels} labels"
            )
        if len(set(bases)) != num_labels:
            raise EncodingError("per-label bases must be distinct")
        self.num_labels = num_labels
        self.modulus = modulus
        # _powers[label][i] = base_label ** i mod modulus, for i in 0..num_labels.
        self._powers = [
            [pow(base, i, modulus) for i in range(num_labels + 1)] for base in bases
        ]

    # ------------------------------------------------------------------
    # Whole-sequence hashing
    # ------------------------------------------------------------------
    def node_contribution(self, label: int, counts: Sequence[int]) -> int:
        """Eq. 5: contribution of one node given its in-subgraph counts."""
        powers = self._powers[label]
        total = 0
        for i, count in enumerate(counts, start=1):
            if count:
                total += count * powers[i]
        return total % self.modulus

    def hash_code(self, code: CanonicalCode) -> int:
        """Hash a full canonical code (sum of node contributions)."""
        total = 0
        for seq in code:
            total += self.node_contribution(seq[0], seq[1:])
        return total % self.modulus

    # ------------------------------------------------------------------
    # Incremental updates (the census hot path)
    # ------------------------------------------------------------------
    def edge_delta(self, label_u: int, label_v: int) -> int:
        """Hash delta of adding one edge between labels ``u`` and ``v``.

        Adding edge ``uv`` increments ``t_{label_v}`` of node ``u`` and
        ``t_{label_u}`` of node ``v``; the corresponding hash delta is
        ``b_u^{label_v + 1} + b_v^{label_u + 1}`` (exponents are 1-based in
        Eq. 5).
        """
        return (
            self._powers[label_u][label_v + 1] + self._powers[label_v][label_u + 1]
        ) % self.modulus

    def add_edge(self, current: int, label_u: int, label_v: int) -> int:
        """Return the hash after adding an edge to a subgraph hashed ``current``."""
        return (current + self.edge_delta(label_u, label_v)) % self.modulus

    def remove_edge(self, current: int, label_u: int, label_v: int) -> int:
        """Inverse of :meth:`add_edge`, used when the census backtracks."""
        return (current - self.edge_delta(label_u, label_v)) % self.modulus

    def hash_edges(self, labels: Sequence[int], edges: Iterable[tuple[int, int]]) -> int:
        """Hash a subgraph from scratch by summing per-edge deltas.

        Nodes contribute nothing on their own under Eq. 5 (an isolated node
        has all ``t_i = 0``), so the subgraph hash is determined entirely by
        its edges, which is what makes the per-edge incremental form exact.
        """
        total = 0
        for u, v in edges:
            total += self.edge_delta(labels[u], labels[v])
        return total % self.modulus
