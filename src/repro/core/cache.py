"""Opt-in per-root census cache.

Rank and label experiments repeatedly census the same roots under the
same :class:`~repro.core.census.CensusConfig` — ablation grids, repeated
train/test splits, and the CLI all re-touch overlapping node sets.  The
census is deterministic given ``(graph, config, root)``, so its results
can be memoised across calls and even across processes.

Entries are keyed by a content *fingerprint* of the graph (see
:meth:`repro.core.graph.HeteroGraph.fingerprint`) plus the frozen census
config and the root index, so a cache file can be shared between runs
and never serves stale counts after the graph or parameters change —
a different graph or config simply misses.
"""

from __future__ import annotations

import pickle
from collections import Counter
from pathlib import Path

from repro.core.census import CensusConfig
from repro.core.graph import HeteroGraph

#: Bumped whenever the on-disk layout changes; mismatching files are
#: ignored rather than risking unpickling into the wrong shape.
_FORMAT_VERSION = 1

CacheKey = tuple[str, tuple, int]


def census_cache_key(
    graph: HeteroGraph, config: CensusConfig, root: int
) -> CacheKey:
    """The memoisation key for one rooted census.

    The config is flattened to a plain tuple (not the dataclass) so keys
    stay comparable across library versions that add config fields with
    defaults — and so a pickled cache does not depend on the
    ``CensusConfig`` class itself.
    """
    config_key = (
        config.max_edges,
        config.max_degree,
        config.mask_start_label,
        config.key,
        config.group_by_label,
        config.include_trivial,
        config.max_subgraphs,
    )
    return (graph.fingerprint(), config_key, int(root))


class CensusCache:
    """In-memory census memo with optional pickle persistence.

    Parameters
    ----------
    path:
        Optional file backing the cache.  When given, existing entries
        are loaded eagerly (a missing or unreadable file starts empty)
        and :meth:`save` writes the current contents back.

    The cache stores defensive copies on both :meth:`get` and
    :meth:`put` so callers mutating a returned ``Counter`` cannot
    corrupt later hits.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._entries: dict[CacheKey, Counter] = {}
        self.hits = 0
        self.misses = 0
        if self.path is not None and self.path.exists():
            self._load(self.path)

    # -- persistence ------------------------------------------------------
    def _load(self, path: Path) -> None:
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError):
            return
        if (
            isinstance(payload, dict)
            and payload.get("version") == _FORMAT_VERSION
            and isinstance(payload.get("entries"), dict)
        ):
            self._entries.update(payload["entries"])

    def save(self, path: str | Path | None = None) -> Path:
        """Write the cache to ``path`` (defaults to the constructor path)."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("CensusCache has no path; pass one to save()")
        payload = {"version": _FORMAT_VERSION, "entries": self._entries}
        with open(target, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        return target

    # -- memoisation ------------------------------------------------------
    def get(
        self, graph: HeteroGraph, config: CensusConfig, root: int
    ) -> Counter | None:
        """The cached census for ``root``, or ``None`` on a miss."""
        entry = self._entries.get(census_cache_key(graph, config, root))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return Counter(entry)

    def put(
        self,
        graph: HeteroGraph,
        config: CensusConfig,
        root: int,
        census: Counter,
    ) -> None:
        """Store the census for ``root`` (overwrites any existing entry)."""
        self._entries[census_cache_key(graph, config, root)] = Counter(census)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CensusCache(entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
