"""Opt-in per-root census cache.

Rank and label experiments repeatedly census the same roots under the
same :class:`~repro.core.census.CensusConfig` — ablation grids, repeated
train/test splits, and the CLI all re-touch overlapping node sets.  The
census is deterministic given ``(graph, config, root)``, so its results
can be memoised across calls and even across processes.

Entries are keyed by a content *fingerprint* of the graph (see
:meth:`repro.core.graph.HeteroGraph.fingerprint`) plus the frozen census
config and the root index, so a cache file can be shared between runs
and never serves stale counts after the graph or parameters change —
a different graph or config simply misses.

Durability: :meth:`CensusCache.save` writes to a temp file in the target
directory and atomically ``os.replace``\\ s it over the destination, so a
crash mid-save (including ``kill -9``) can never corrupt an existing
cache file — at worst it leaves a stray ``*.tmp`` sibling.  A file that
fails to load (corrupt bytes, old format version) is reported through
``logging`` and :attr:`CensusCache.load_status` instead of silently
looking like an empty cache.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import Counter
from pathlib import Path

from repro.core.census import CensusConfig
from repro.core.graph import HeteroGraph
from repro.obs.log import get_logger
from repro.obs.telemetry import get_telemetry

#: Bumped whenever the on-disk layout changes; mismatching files are
#: ignored rather than risking unpickling into the wrong shape.
_FORMAT_VERSION = 1

CacheKey = tuple[str, tuple, int]

logger = get_logger(__name__)


def census_cache_key(
    graph: HeteroGraph, config: CensusConfig, root: int
) -> CacheKey:
    """The memoisation key for one rooted census.

    The config is flattened to a plain tuple (not the dataclass) so keys
    stay comparable across library versions that add config fields with
    defaults — and so a pickled cache does not depend on the
    ``CensusConfig`` class itself.
    """
    config_key = (
        config.max_edges,
        config.max_degree,
        config.mask_start_label,
        config.key,
        config.group_by_label,
        config.include_trivial,
        config.max_subgraphs,
    )
    return (graph.fingerprint(), config_key, int(root))


class CensusCache:
    """In-memory census memo with optional pickle persistence.

    Parameters
    ----------
    path:
        Optional file backing the cache.  When given, existing entries
        are loaded eagerly and :meth:`save` writes the current contents
        back (atomically).  :attr:`load_status` records how the eager
        load went: ``None`` (no path), ``"missing"`` (no file yet),
        ``"loaded"``, ``"corrupt"``, or ``"version-mismatch"``.
    max_entries:
        Optional bound on the number of retained entries; inserting
        beyond it evicts the oldest entries (FIFO).  ``None`` (default)
        never evicts.

    The cache stores defensive copies on both :meth:`get` and
    :meth:`put` so callers mutating a returned ``Counter`` cannot
    corrupt later hits.  Loads, saves, and evictions are counted in the
    run telemetry (see :mod:`repro.obs`).
    """

    def __init__(
        self,
        path: str | Path | None = None,
        max_entries: int | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.path = Path(path) if path is not None else None
        self.max_entries = max_entries
        self._entries: dict[CacheKey, Counter] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.load_status: str | None = None
        if self.path is not None:
            if self.path.exists():
                self._load(self.path)
            else:
                self.load_status = "missing"
                get_telemetry().annotate("cache/load_status", self.load_status)

    # -- persistence ------------------------------------------------------
    def _load(self, path: Path) -> None:
        telemetry = get_telemetry()
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        # Corrupt bytes surface from pickle as almost any exception type
        # (the docs name UnpicklingError, AttributeError, EOFError,
        # ImportError, and IndexError; garbage opcodes also raise
        # ValueError/KeyError), so treat every failure as a corrupt file.
        except Exception as exc:
            self.load_status = "corrupt"
            telemetry.count("cache/load_corrupt")
            telemetry.annotate("cache/load_status", self.load_status)
            logger.warning(
                "census cache %s is unreadable (%s: %s); starting empty "
                "— the next save() will replace it",
                path,
                type(exc).__name__,
                exc,
            )
            return
        if (
            isinstance(payload, dict)
            and payload.get("version") == _FORMAT_VERSION
            and isinstance(payload.get("entries"), dict)
        ):
            self._entries.update(payload["entries"])
            self.load_status = "loaded"
            telemetry.count("cache/loads")
            telemetry.count("cache/load_entries", len(payload["entries"]))
        else:
            found = payload.get("version") if isinstance(payload, dict) else None
            self.load_status = "version-mismatch"
            telemetry.count("cache/load_version_mismatch")
            logger.warning(
                "census cache %s has format version %r (expected %d); "
                "ignoring its contents — the next save() will upgrade it",
                path,
                found,
                _FORMAT_VERSION,
            )
        telemetry.annotate("cache/load_status", self.load_status)

    def save(self, path: str | Path | None = None) -> Path:
        """Atomically write the cache to ``path`` (default: constructor path).

        The payload is written to a temp file in the destination
        directory and moved into place with :func:`os.replace`, so an
        interrupted save never clobbers the previous on-disk contents; a
        crash can only leave a stray temp file behind.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("CensusCache has no path; pass one to save()")
        payload = {"version": _FORMAT_VERSION, "entries": self._entries}
        fd, tmp_name = tempfile.mkstemp(
            dir=target.parent or Path("."), prefix=f"{target.name}.", suffix=".tmp"
        )
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, target)
        telemetry = get_telemetry()
        telemetry.count("cache/saves")
        telemetry.count("cache/save_entries", len(self._entries))
        logger.debug(
            "census cache saved: %d entries -> %s", len(self._entries), target
        )
        return target

    # -- memoisation ------------------------------------------------------
    def get(
        self, graph: HeteroGraph, config: CensusConfig, root: int
    ) -> Counter | None:
        """The cached census for ``root``, or ``None`` on a miss."""
        entry = self._entries.get(census_cache_key(graph, config, root))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return Counter(entry)

    def put(
        self,
        graph: HeteroGraph,
        config: CensusConfig,
        root: int,
        census: Counter,
    ) -> None:
        """Store the census for ``root`` (overwrites any existing entry).

        When ``max_entries`` is set, inserting a novel key beyond the
        bound evicts the oldest entries first (dict insertion order).
        """
        key = census_cache_key(graph, config, root)
        if (
            self.max_entries is not None
            and key not in self._entries
            and len(self._entries) >= self.max_entries
        ):
            evicted = 0
            while len(self._entries) >= self.max_entries:
                self._entries.pop(next(iter(self._entries)))
                evicted += 1
            self.evictions += evicted
            get_telemetry().count("cache/evictions", evicted)
        self._entries[key] = Counter(census)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CensusCache(entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
