"""Opt-in per-root census cache — now a view over the artifact store.

Rank and label experiments repeatedly census the same roots under the
same :class:`~repro.core.census.CensusConfig` — ablation grids, repeated
train/test splits, and the CLI all re-touch overlapping node sets.  The
census is deterministic given ``(graph, config, root)``, so its results
can be memoised across calls and even across processes.

Since the unified runtime landed, the storage itself lives in
:class:`repro.runtime.store.ArtifactStore` — a content-addressed store
shared by every pipeline stage (census counters, walk corpora, embedding
matrices, feature matrices).  :class:`CensusCache` keeps its full
original API (same keys, same stats attributes, same durability and
eviction semantics) as the census-stage *view* of such a store:
``CensusCache(path)`` owns a private store, while
:meth:`CensusCache.over` wraps an existing one so census entries share a
file with the other stages.

Durability (unchanged from PR 3, now provided by the store):
:meth:`CensusCache.save` writes to a temp file in the target directory
and atomically ``os.replace``\\ s it over the destination, so a crash
mid-save (including ``kill -9``) can never corrupt an existing cache
file — at worst it leaves a stray ``*.tmp`` sibling.  A file that fails
to load (corrupt bytes, old format version) is reported through
``logging`` and :attr:`CensusCache.load_status` instead of silently
looking like an empty cache.
"""

from __future__ import annotations

import pickle  # noqa: F401  (re-exported: durability tests patch cache_module.pickle)
from collections import Counter
from dataclasses import replace
from pathlib import Path

from repro.core.census import CensusConfig, _cap_exceeded, census_total
from repro.core.graph import HeteroGraph
from repro.core.sampled import SampledCensusConfig, sampled_config_key
from repro.obs.log import get_logger
from repro.runtime.store import STAGE_CENSUS, ArtifactStore, artifact_key

CacheKey = tuple[str, tuple, int]

logger = get_logger(__name__)


def census_config_key(
    config: CensusConfig, sampled: SampledCensusConfig | None = None
) -> tuple:
    """Flatten a census config to the plain tuple used in cache keys.

    Flattening (rather than keying on the dataclass) keeps keys
    comparable across library versions that add config fields with
    defaults — and keeps a pickled cache independent of the
    ``CensusConfig`` class itself.

    A sampled census keys on the estimator knobs too (budget, seed,
    rel_err, ...) via a tuple *suffix*, so sampled estimates can never
    collide with exact counts — nor with estimates under a different
    budget or seed — while every exact key stays byte-identical to what
    older stores hold.
    """
    key = (
        config.max_edges,
        config.max_degree,
        config.mask_start_label,
        config.key,
        config.group_by_label,
        config.include_trivial,
        config.max_subgraphs,
    )
    if sampled is not None:
        key += sampled_config_key(sampled)
    return key


def census_cache_key(
    graph: HeteroGraph, config: CensusConfig, root: int
) -> CacheKey:
    """The memoisation key for one rooted census (legacy 3-tuple shape)."""
    return (graph.fingerprint(), census_config_key(config), int(root))


def _store_config(
    config: CensusConfig,
    root: int,
    sampled: SampledCensusConfig | None = None,
) -> tuple:
    """The artifact-store stage config for one rooted census."""
    return (*census_config_key(config, sampled), int(root))


def census_store_config(
    config: CensusConfig,
    root: int,
    sampled: SampledCensusConfig | None = None,
) -> tuple:
    """Public alias of the census artifact-store stage config.

    The serving daemon's repair path addresses census entries directly on
    the raw :class:`ArtifactStore` (to migrate unaffected roots between
    graph fingerprints without recomputing them); this keeps the key
    derivation in one place.
    """
    return _store_config(config, root, sampled)


class CensusCache:
    """The census-stage view of an :class:`ArtifactStore`.

    Parameters
    ----------
    path:
        Optional file backing the cache.  When given, existing entries
        are loaded eagerly and :meth:`save` writes the current contents
        back (atomically).  :attr:`load_status` records how the eager
        load went: ``None`` (no path), ``"missing"`` (no file yet),
        ``"loaded"``, ``"corrupt"``, or ``"version-mismatch"``.
    max_entries:
        Optional bound on the number of retained entries; inserting
        beyond it evicts the oldest entries (FIFO).  ``None`` (default)
        never evicts.

    The cache stores defensive copies on both :meth:`get` and
    :meth:`put` so callers mutating a returned ``Counter`` cannot
    corrupt later hits.  Loads, saves, and evictions are counted in the
    run telemetry (see :mod:`repro.obs`); per-lookup hit/miss telemetry
    lands under ``artifact/census/*``.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        max_entries: int | None = None,
        *,
        store: ArtifactStore | None = None,
    ) -> None:
        if store is not None:
            if path is not None or max_entries is not None:
                raise ValueError(
                    "pass either a wrapped store or path/max_entries, not both"
                )
            self.store = store
        else:
            self.store = ArtifactStore(
                path, max_entries, description="census cache", log=logger
            )

    @classmethod
    def over(cls, store: ArtifactStore) -> "CensusCache":
        """A census view sharing ``store`` (and its file) with other stages."""
        return cls(store=store)

    # -- delegated attributes ---------------------------------------------
    @property
    def path(self) -> Path | None:
        return self.store.path

    @property
    def max_entries(self) -> int | None:
        return self.store.max_entries

    @property
    def load_status(self) -> str | None:
        return self.store.load_status

    @property
    def hits(self) -> int:
        return self.store.stage_hits.get(STAGE_CENSUS, 0)

    @property
    def misses(self) -> int:
        return self.store.stage_misses.get(STAGE_CENSUS, 0)

    @property
    def evictions(self) -> int:
        return self.store.evictions

    # -- persistence ------------------------------------------------------
    def save(self, path: str | Path | None = None) -> Path:
        """Atomically write the backing store (see :meth:`ArtifactStore.save`)."""
        return self.store.save(path)

    # -- memoisation ------------------------------------------------------
    def get(
        self,
        graph: HeteroGraph,
        config: CensusConfig,
        root: int,
        sampled: SampledCensusConfig | None = None,
    ) -> Counter | None:
        """The cached census for ``root``, or ``None`` on a miss.

        A capped exact request (``config.max_subgraphs`` set) that
        misses also consults the *uncapped* entry for the same config:
        a cached total at or under the cap is exactly what the capped
        census would have produced, so it is served; a total over the
        cap means the live census would have raised, so this raises the
        same :class:`~repro.exceptions.CensusError` instead of serving
        a result the caller asked to be protected from.
        """
        census = self.store.get(
            graph.fingerprint(), STAGE_CENSUS, _store_config(config, root, sampled)
        )
        cap = config.max_subgraphs
        if census is None and cap is not None and sampled is None:
            uncapped = replace(config, max_subgraphs=None)
            census = self.store.get(
                graph.fingerprint(), STAGE_CENSUS, _store_config(uncapped, root)
            )
            if census is not None and census_total(census) > cap:
                raise _cap_exceeded(root, cap)
        return census

    def put(
        self,
        graph: HeteroGraph,
        config: CensusConfig,
        root: int,
        census: Counter,
        sampled: SampledCensusConfig | None = None,
    ) -> None:
        """Store the census for ``root`` (overwrites any existing entry).

        When the store bounds ``max_entries``, inserting a novel key
        beyond the bound evicts the oldest entries first (FIFO).
        """
        self.store.put(
            graph.fingerprint(),
            STAGE_CENSUS,
            _store_config(config, root, sampled),
            census,
        )

    def __len__(self) -> int:
        return self.store.stage_entries(STAGE_CENSUS)

    def __contains__(self, key: CacheKey) -> bool:
        fingerprint, config_key, root = key
        return (
            artifact_key(fingerprint, STAGE_CENSUS, (*config_key, int(root)))
            in self.store
        )

    def clear(self) -> None:
        """Clear the backing store (all stages, when sharing one)."""
        self.store.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CensusCache(entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
