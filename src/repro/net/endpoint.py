"""Endpoint specs: one address type for both transports.

Everything that listens or connects in :mod:`repro.net` takes an
:class:`Endpoint` — or any spec :func:`parse_endpoint` understands:

* ``Endpoint(...)``            passed through unchanged
* ``pathlib.Path``             unix domain socket at that path
* ``"unix:/run/repro.sock"``   explicit unix socket
* ``"tcp:host:port"``          explicit TCP
* ``"host:port"``              TCP shorthand (what ``--tcp`` and
  ``--workers`` accept; port ``0`` binds an ephemeral port)
* any other string             unix socket path

The shorthand rule is deliberate: a bare string is only treated as TCP
when everything after the last ``:`` parses as a port number, so socket
paths containing colons still round-trip through ``unix:``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class Endpoint:
    """One listen/connect address: a unix socket path or a TCP host:port."""

    kind: str
    path: str | None = None
    host: str | None = None
    port: int | None = None

    def __post_init__(self) -> None:
        if self.kind == "unix":
            if not self.path:
                raise ValueError("unix endpoint requires a socket path")
        elif self.kind == "tcp":
            if not self.host:
                raise ValueError("tcp endpoint requires a host")
            if self.port is None or not 0 <= int(self.port) <= 65535:
                raise ValueError(
                    f"tcp endpoint requires a port in [0, 65535], got {self.port}"
                )
        else:
            raise ValueError(f"unknown endpoint kind {self.kind!r}")

    @property
    def address(self) -> str:
        """Canonical printable form (re-parseable by :func:`parse_endpoint`)."""
        if self.kind == "unix":
            return f"unix:{self.path}"
        return f"{self.host}:{self.port}"

    def __str__(self) -> str:
        return self.address


def parse_endpoint(spec) -> Endpoint:
    """Normalise any endpoint spec to an :class:`Endpoint` (see module doc)."""
    if isinstance(spec, Endpoint):
        return spec
    if isinstance(spec, Path):
        return Endpoint("unix", path=str(spec))
    if not isinstance(spec, str):
        raise ValueError(
            f"endpoint spec must be an Endpoint, Path, or str, "
            f"got {type(spec).__name__}"
        )
    if not spec:
        raise ValueError("endpoint spec must not be empty")
    if spec.startswith("unix:"):
        return Endpoint("unix", path=spec[len("unix:"):])
    body = spec[len("tcp:"):] if spec.startswith("tcp:") else spec
    host, sep, port = body.rpartition(":")
    if sep and host and port.isdigit():
        return Endpoint("tcp", host=host, port=int(port))
    if spec.startswith("tcp:"):
        raise ValueError(f"malformed tcp endpoint {spec!r} (want tcp:host:port)")
    return Endpoint("unix", path=spec)
