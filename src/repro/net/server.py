"""Listener abstraction: one asyncio server loop over either transport.

:func:`start_listener` binds an :class:`~repro.net.endpoint.Endpoint`
(unix socket or TCP) and returns a :class:`Listener` that normalises the
differences: stale unix socket files are unlinked before binding and
after closing, a TCP bind to port ``0`` reports the kernel-assigned
port back through ``listener.endpoint``, and the per-line read limit is
:data:`~repro.net.protocol.MAX_LINE_BYTES` for both.

:func:`serve_lines` is the shared per-connection loop (read a framed
line, hand it to the handler, write the response): the serving daemon
and the shard workers run the exact same framing/teardown semantics —
an oversized or mid-frame-truncated line drops the connection rather
than buffering without bound, blank lines are skipped, and a handler
cancelled by loop teardown completes quietly (a cancelled streams task
makes 3.11's connection callback log a spurious traceback).
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Awaitable, Callable

from repro.net.endpoint import Endpoint, parse_endpoint
from repro.net.protocol import MAX_LINE_BYTES


class Listener:
    """A bound server plus its (resolved) endpoint; closes transport-aware."""

    def __init__(self, server: asyncio.AbstractServer, endpoint: Endpoint) -> None:
        self.server = server
        self.endpoint = endpoint

    def close(self) -> None:
        self.server.close()

    async def wait_closed(self) -> None:
        await self.server.wait_closed()
        if self.endpoint.kind == "unix":
            path = Path(self.endpoint.path)
            if path.exists():
                path.unlink()


async def start_listener(
    endpoint,
    client_connected_cb,
    *,
    limit: int = MAX_LINE_BYTES,
) -> Listener:
    """Bind ``endpoint`` and serve connections through ``client_connected_cb``.

    Returns a :class:`Listener` whose ``endpoint`` is fully resolved —
    after a TCP bind to port ``0`` it carries the real port, so callers
    can advertise where they actually listen.
    """
    endpoint = parse_endpoint(endpoint)
    if endpoint.kind == "unix":
        path = Path(endpoint.path)
        if path.exists():
            path.unlink()
        server = await asyncio.start_unix_server(
            client_connected_cb, path=str(path), limit=limit
        )
        return Listener(server, endpoint)
    server = await asyncio.start_server(
        client_connected_cb, host=endpoint.host, port=endpoint.port, limit=limit
    )
    host, port = server.sockets[0].getsockname()[:2]
    if endpoint.port == 0:
        endpoint = Endpoint("tcp", host=endpoint.host, port=int(port))
    return Listener(server, endpoint)


async def serve_lines(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    handle_line: Callable[[bytes], Awaitable[bytes]],
) -> None:
    """Run one connection's read-handle-respond loop until it ends.

    ``handle_line`` receives each non-blank framed line and returns the
    response bytes to write back (already newline-terminated).  It must
    not raise: protocol servers map their failures to typed error
    responses before returning.
    """
    try:
        while True:
            try:
                line = await reader.readline()
            except (ValueError, ConnectionResetError):
                # Oversized line or peer reset: drop the connection.
                break
            if not line:
                break
            if not line.strip():
                continue
            response = await handle_line(line)
            writer.write(response)
            try:
                await writer.drain()
            except ConnectionResetError:
                break
    except asyncio.CancelledError:
        # Loop teardown cancelled this handler (connection still open at
        # shutdown); complete normally rather than ending cancelled.
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.CancelledError,
        ):  # pragma: no cover - close handshake already torn down
            pass
