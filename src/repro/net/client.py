"""Connection clients for the framed protocol: async and sync.

:func:`open_connection` is the asyncio side — the replay harness and
other loop-resident clients use it to reach a daemon over either
transport with the same ``(reader, writer)`` contract.

:class:`NetClient` is the synchronous side: one persistent connection
with per-request timeouts and bounded reconnect-and-retry under an
exponential :class:`RetryPolicy`.  The remote shard executor
(:mod:`repro.dist.remote`) runs its worker conversations through it
from plain threads — no event loop required.

Failure mapping is part of the client contract: transport errors
surface as :class:`~repro.net.protocol.NetError` with code
``unavailable`` (peer unreachable / connection torn down) or
``timeout`` (deadline elapsed with the connection up), so callers
branch on typed codes whether the failure happened on the wire or in
the server.  A failed request always closes the socket before retrying
— after an error the stream position is unknowable, and resynchronising
a line protocol mid-stream is not worth the ambiguity.

Telemetry: every request lands in ``net/requests`` and the
``net/request_s`` latency distribution; reconnects, retries, and
failures are counted under ``net/*`` so the run manifest carries the
wire-level cost and health of a distributed run.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from dataclasses import dataclass

from repro.net.endpoint import Endpoint, parse_endpoint
from repro.net.protocol import MAX_LINE_BYTES, NetError, raise_for_error
from repro.obs.log import get_logger
from repro.obs.telemetry import get_telemetry

logger = get_logger(__name__)


async def open_connection(endpoint, *, limit: int = MAX_LINE_BYTES):
    """Asyncio ``(reader, writer)`` for either transport."""
    endpoint = parse_endpoint(endpoint)
    if endpoint.kind == "unix":
        return await asyncio.open_unix_connection(endpoint.path, limit=limit)
    return await asyncio.open_connection(endpoint.host, endpoint.port, limit=limit)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff.

    ``retries`` is the number of *re*-attempts after the first try;
    attempt ``i`` (0-based) sleeps ``backoff * 2**i`` seconds first,
    capped at ``max_backoff``.  The defaults ride out a worker restart
    without stretching a genuinely dead peer past a second.
    """

    retries: int = 2
    backoff: float = 0.05
    max_backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")

    def delay(self, attempt: int) -> float:
        """Sleep before re-attempt ``attempt`` (0-based)."""
        return min(self.backoff * (2.0 ** attempt), self.max_backoff)


class NetClient:
    """One synchronous framed-protocol connection with retry/backoff.

    Usable as a context manager; safe for one thread at a time (the
    remote executor gives each worker thread its own client).
    """

    def __init__(
        self,
        endpoint,
        *,
        connect_timeout: float = 5.0,
        request_timeout: float = 30.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.endpoint: Endpoint = parse_endpoint(endpoint)
        if connect_timeout <= 0:
            raise ValueError(f"connect_timeout must be > 0, got {connect_timeout}")
        if request_timeout <= 0:
            raise ValueError(f"request_timeout must be > 0, got {request_timeout}")
        self.connect_timeout = float(connect_timeout)
        self.request_timeout = float(request_timeout)
        self.retry = retry if retry is not None else RetryPolicy()
        self._sock: socket.socket | None = None
        self._buffer = b""

    # -- connection lifecycle ---------------------------------------------
    def connect(self) -> None:
        """Ensure the socket is connected (no-op when it already is)."""
        if self._sock is not None:
            return
        if self.endpoint.kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.settimeout(self.connect_timeout)
                sock.connect(self.endpoint.path)
            except OSError:
                sock.close()
                raise
        else:
            sock = socket.create_connection(
                (self.endpoint.host, self.endpoint.port),
                timeout=self.connect_timeout,
            )
        self._sock = sock
        self._buffer = b""
        get_telemetry().count("net/connects")

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._sock = None
        self._buffer = b""

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- framed round-trips ------------------------------------------------
    def _read_line(self, deadline: float) -> bytes:
        sock = self._sock
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_LINE_BYTES:
                raise NetError(
                    "internal",
                    f"peer response exceeds {MAX_LINE_BYTES} bytes unframed",
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise socket.timeout("request deadline elapsed")
            sock.settimeout(remaining)
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("peer closed the connection mid-request")
            self._buffer += chunk
        line, _, self._buffer = self._buffer.partition(b"\n")
        return line

    def request(
        self, payload: dict, *, timeout: float | None = None, retry: bool = True
    ) -> dict:
        """One request/response round-trip; returns the decoded response.

        Transport failures reconnect and retry under the client's
        :class:`RetryPolicy` (``retry=False`` limits to a single
        attempt — for callers whose operation is not idempotent).
        Exhausted retries raise :class:`NetError` — ``timeout`` when the
        deadline elapsed, ``unavailable`` otherwise.
        """
        telemetry = get_telemetry()
        data = (json.dumps(payload) + "\n").encode("utf-8")
        budget = self.request_timeout if timeout is None else float(timeout)
        attempts = (self.retry.retries + 1) if retry else 1
        failure: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                telemetry.count("net/retries")
                time.sleep(self.retry.delay(attempt - 1))
            started = time.perf_counter()
            try:
                if self._sock is None and attempt:
                    telemetry.count("net/reconnects")
                self.connect()
                deadline = time.monotonic() + budget
                self._sock.settimeout(budget)
                self._sock.sendall(data)
                line = self._read_line(deadline)
            except (OSError, ConnectionError) as exc:
                # socket.timeout is an OSError; anything here leaves the
                # stream position unknowable — drop the connection.
                failure = exc
                self.close()
                telemetry.count("net/request_errors")
                logger.debug(
                    "request to %s failed (attempt %d/%d): %s",
                    self.endpoint, attempt + 1, attempts, exc,
                )
                continue
            telemetry.count("net/requests")
            telemetry.observe("net/request_s", time.perf_counter() - started)
            try:
                return json.loads(line)
            except json.JSONDecodeError as exc:
                self.close()
                raise NetError(
                    "internal", f"peer sent undecodable response: {exc}"
                )
        telemetry.count("net/unavailable")
        if isinstance(failure, socket.timeout):
            raise NetError(
                "timeout",
                f"request to {self.endpoint} exceeded {budget:g}s "
                f"({attempts} attempts)",
            )
        raise NetError(
            "unavailable",
            f"{self.endpoint} unreachable after {attempts} attempts: {failure}",
        )

    def call(
        self, payload: dict, *, timeout: float | None = None, retry: bool = True
    ):
        """Request + unwrap: returns the ``result`` payload or raises the
        peer's typed error as :class:`NetError`."""
        return raise_for_error(self.request(payload, timeout=timeout, retry=retry))

    def ping(self, *, timeout: float | None = None) -> dict:
        """Liveness probe; raises :class:`NetError` when the peer is down."""
        return self.call({"op": "ping"}, timeout=timeout)
