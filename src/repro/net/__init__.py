"""Shared network substrate: framed transport for serving and shard RPC.

One wire format, two workloads.  The feature-serving daemon
(:mod:`repro.serve`) and the shard-worker RPC layer
(:mod:`repro.dist.worker` / :mod:`repro.dist.remote`) both speak the
newline-framed JSON protocol defined here, over either transport a
deployment wants: a unix domain socket (single box, lowest latency) or
TCP (``host:port``, cross-machine fan-out).

```
repro/net/
    protocol.py   framing, typed error codes, blob payload helpers
    endpoint.py   Endpoint + parse_endpoint ("unix:/path", "host:port")
    server.py     start_listener/serve_lines: one server loop, both transports
    client.py     async open_connection + sync NetClient (retry/backoff)
```

Every client request lands in the ``net/*`` telemetry family (request
counters, retries, reconnects, and the ``net/request_s`` latency
distribution), so run manifests show the wire cost of a distributed run
next to the census cost it paid for.  See the transport sections of
``docs/serving.md`` and ``docs/distributed_census.md``.
"""

from repro.net.client import NetClient, RetryPolicy, open_connection
from repro.net.endpoint import Endpoint, parse_endpoint
from repro.net.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    NetError,
    decode_blob,
    decode_message,
    encode_blob,
    error_response,
    ok_response,
    raise_for_error,
    require,
)
from repro.net.server import Listener, serve_lines, start_listener

__all__ = [
    "ERROR_CODES",
    "Endpoint",
    "Listener",
    "MAX_LINE_BYTES",
    "NetClient",
    "NetError",
    "RetryPolicy",
    "decode_blob",
    "decode_message",
    "encode_blob",
    "error_response",
    "ok_response",
    "open_connection",
    "parse_endpoint",
    "raise_for_error",
    "require",
    "serve_lines",
    "start_listener",
]
