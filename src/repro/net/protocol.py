"""Newline-framed JSON protocol shared by every repro network server.

One request per line, one response per line, UTF-8 JSON both ways::

    -> {"id": 1, "op": "features", "node": "MIT"}
    <- {"id": 1, "ok": true, "result": {"node": "MIT", "total": 42, ...}}

``id`` is echoed verbatim so clients can pipeline requests over several
connections; it may be any JSON value (``null`` when omitted).  Errors
are *typed*: ``code`` is drawn from :data:`ERROR_CODES` so clients can
distinguish overload shedding (retry later) from a bad request (don't).

This module is transport- and service-agnostic: the serving daemon
(:mod:`repro.serve.protocol` layers its operation tables on top) and the
shard-worker RPC (:mod:`repro.dist.worker`) frame their traffic through
the same helpers, over unix sockets or TCP alike.

Payloads that JSON cannot carry faithfully (census ``Counter`` objects
with tuple keys, pickled graph shards) travel as *blobs*: pickled,
compressed, base64-armoured strings inside the JSON frame
(:func:`encode_blob`/:func:`decode_blob`).  Blobs are only exchanged
between mutually trusting processes of one deployment — the worker RPC
layer, never the public serving surface (see ``docs/serving.md``).
"""

from __future__ import annotations

import base64
import json
import pickle
import zlib

#: Upper bound on one framed line (1 MiB) — protects server readers from
#: an unframed stream and clients from unbounded buffering.
MAX_LINE_BYTES = 1 << 20

#: Typed error codes (the protocol's contract with clients):
#:
#: ``bad_request``     malformed JSON / missing or mistyped parameters
#: ``unknown_op``      an ``op`` the server does not implement
#: ``unknown_node``    a node id the graph does not contain
#: ``graph_error``     an invalid mutation (duplicate edge, self loop, ...)
#: ``overloaded``      shed: too many requests in flight, retry later
#: ``timeout``         the request exceeded the server's time budget
#: ``shutting_down``   received while the server is draining
#: ``internal``        unexpected server-side failure
#: ``unavailable``     client-side: the peer could not be reached at all
#: ``shard_error``     worker RPC: a shard the worker does not hold, or a
#:                     census failure inside one
ERROR_CODES = (
    "bad_request",
    "unknown_op",
    "unknown_node",
    "graph_error",
    "overloaded",
    "timeout",
    "shutting_down",
    "internal",
    "unavailable",
    "shard_error",
)

#: Codes a client may safely retry (the request never executed, or the
#: server stayed consistent); everything else is a don't-retry.
RETRYABLE_CODES = ("overloaded", "timeout", "unavailable")


class NetError(Exception):
    """A protocol-level failure carrying one of :data:`ERROR_CODES`."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown net error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message

    @property
    def retryable(self) -> bool:
        return self.code in RETRYABLE_CODES


def decode_message(line: bytes | str) -> dict:
    """Parse one request line into a dict; raises :class:`NetError`.

    Guarantees the result is a JSON object with a string ``op`` — other
    parameter validation is per-operation (see the service layers).
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise NetError("bad_request", f"request is not UTF-8: {exc}")
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise NetError("bad_request", f"request is not valid JSON: {exc}")
    if not isinstance(request, dict):
        raise NetError(
            "bad_request", f"request must be a JSON object, got {type(request).__name__}"
        )
    op = request.get("op")
    if not isinstance(op, str):
        raise NetError("bad_request", "request is missing a string 'op' field")
    return request


def ok_response(request_id, result) -> bytes:
    """Encode a success response line (newline-terminated UTF-8)."""
    return (
        json.dumps({"id": request_id, "ok": True, "result": result}) + "\n"
    ).encode("utf-8")


def error_response(request_id, code: str, message: str) -> bytes:
    """Encode a typed error response line (newline-terminated UTF-8)."""
    if code not in ERROR_CODES:
        code, message = "internal", f"(bad error code {code!r}) {message}"
    return (
        json.dumps(
            {"id": request_id, "ok": False, "error": {"code": code, "message": message}}
        )
        + "\n"
    ).encode("utf-8")


def require(request: dict, field: str, kind=str):
    """Fetch a typed field from a request; raises ``bad_request`` if absent.

    ``kind`` may be a type or tuple of types; ``bool`` is rejected where
    an int is required (JSON ``true`` is not a count).
    """
    value = request.get(field)
    if kind is int and isinstance(value, bool):
        value = None
    if value is None or not isinstance(value, kind):
        wanted = getattr(kind, "__name__", str(kind))
        raise NetError(
            "bad_request",
            f"op {request.get('op')!r} requires a {wanted} field {field!r}",
        )
    return value


def raise_for_error(response: dict) -> dict:
    """Return ``response["result"]``, raising :class:`NetError` on failures.

    The inverse of :func:`ok_response`/:func:`error_response` for
    clients: a malformed response frame maps to ``internal`` (the peer
    spoke, but not this protocol).
    """
    if not isinstance(response, dict):
        raise NetError(
            "internal", f"response is not a JSON object: {type(response).__name__}"
        )
    if response.get("ok"):
        return response.get("result")
    error = response.get("error")
    if not isinstance(error, dict):
        raise NetError("internal", f"response carries no error object: {response!r}")
    code = error.get("code")
    message = str(error.get("message", ""))
    if code not in ERROR_CODES:
        raise NetError("internal", f"(unknown error code {code!r}) {message}")
    raise NetError(code, message)


def encode_blob(obj) -> str:
    """Pickle + compress + base64 an object into a JSON-safe string.

    The armour for payloads JSON cannot carry (tuple-keyed census
    Counters, graph shards).  Only ever exchanged between the mutually
    trusting processes of one deployment — see the module docstring.
    """
    return base64.b64encode(
        zlib.compress(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    ).decode("ascii")


def decode_blob(text: str):
    """Invert :func:`encode_blob`; raises ``bad_request`` on corrupt input."""
    if not isinstance(text, str):
        raise NetError(
            "bad_request", f"blob must be a base64 string, got {type(text).__name__}"
        )
    try:
        return pickle.loads(zlib.decompress(base64.b64decode(text.encode("ascii"))))
    except Exception as exc:  # noqa: BLE001 - any of b64/zlib/pickle
        raise NetError("bad_request", f"undecodable blob payload: {exc}")
