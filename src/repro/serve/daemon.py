"""Asyncio line-protocol daemon wrapping a :class:`FeatureService`.

One event loop accepts connections — on a unix socket or a TCP
``host:port``, whichever :class:`~repro.net.endpoint.Endpoint` it was
given — and reads newline-framed JSON requests
(:mod:`repro.net.protocol` framing, :mod:`repro.serve.protocol`
operation tables).  Handlers execute in a thread pool so the census
work of one request never stalls the loop, and a writer-preferring
async reader/writer lock serialises mutations against reads: any number
of read requests run concurrently, while an ``add_edge``/``remove_edge``
waits for in-flight reads to drain, then runs alone — so no read ever
observes a half-mutated graph or a census keyed under a superseded
fingerprint.

Graceful degradation, in order of application:

* **Shedding** — when ``max_inflight`` requests are already executing,
  new ones are answered immediately with the typed ``overloaded`` error
  (counted as ``serve/shed_requests``) instead of queueing without bound.
* **Timeouts** — a request that exceeds ``request_timeout`` is answered
  with the ``timeout`` error, but its worker thread cannot be killed:
  the daemon keeps the request's lock slot held until the orphaned
  thread actually finishes (a background drain task releases it), so a
  timed-out mutation can never overlap with subsequent requests.
  Live orphans are tracked in ``daemon.orphaned`` and the
  ``serve/orphaned`` peak gauge; when they exceed half of
  ``max_inflight`` the daemon logs a warning — that many stuck slots
  means shedding is imminent.
* **Shutdown** — the ``shutdown`` op acknowledges, then stops accepting
  and wakes :meth:`ServeDaemon.run` to close the server.

Every request's wall clock lands in the ``serve/latency_s`` telemetry
distribution (p50/p99 in the run manifest) plus ``serve/requests`` /
``serve/errors`` counters.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.exceptions import GraphError
from repro.net.endpoint import parse_endpoint
from repro.net.protocol import MAX_LINE_BYTES
from repro.net.server import serve_lines, start_listener
from repro.obs.log import get_logger
from repro.obs.telemetry import get_telemetry
from repro.serve.protocol import (
    CONTROL_OPS,
    VALID_OPS,
    WRITE_OPS,
    ServeError,
    decode_request,
    error_response,
    ok_response,
)
from repro.serve.service import FeatureService

logger = get_logger(__name__)

__all__ = ["MAX_LINE_BYTES", "ServeDaemon"]


class _RWLock:
    """Writer-preferring reader/writer lock for one asyncio loop.

    Readers share; a waiting writer blocks new readers so mutations are
    not starved under sustained read load.  Not thread-safe — acquire
    and release only from loop coroutines (worker threads never touch
    it; the loop holds slots on their behalf, including past a timeout).
    """

    def __init__(self) -> None:
        self._cond = asyncio.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    async def acquire_read(self) -> None:
        async with self._cond:
            while self._writer or self._writers_waiting:
                await self._cond.wait()
            self._readers += 1

    async def release_read(self) -> None:
        async with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    async def acquire_write(self) -> None:
        async with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    await self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    async def release_write(self) -> None:
        async with self._cond:
            self._writer = False
            self._cond.notify_all()


class ServeDaemon:
    """Serve a :class:`FeatureService` over a unix socket or TCP endpoint."""

    def __init__(
        self,
        service: FeatureService,
        endpoint,
        *,
        request_timeout: float = 30.0,
        max_inflight: int = 64,
        workers: int | None = None,
    ) -> None:
        if request_timeout <= 0:
            raise ValueError(f"request_timeout must be > 0, got {request_timeout}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.service = service
        self.endpoint = parse_endpoint(endpoint)
        self.request_timeout = float(request_timeout)
        self.max_inflight = int(max_inflight)
        self._workers = workers
        self._inflight = 0
        self._lock: _RWLock | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._stop: asyncio.Event | None = None
        self._drains: set[asyncio.Task] = set()
        self.requests = 0
        self.shed_requests = 0
        self.timeouts = 0
        #: Timed-out requests whose worker thread is still running (each
        #: holds an inflight slot + lock side until its drain completes).
        self.orphaned = 0

    @property
    def socket_path(self) -> Path | None:
        """The unix socket path (``None`` on a TCP endpoint)."""
        return Path(self.endpoint.path) if self.endpoint.kind == "unix" else None

    # -- lifecycle --------------------------------------------------------
    async def run(self, ready: asyncio.Event | None = None) -> None:
        """Accept connections until :meth:`stop` (or a ``shutdown`` op).

        ``ready`` (if given) is set once the listener is bound —
        orchestrators start their clients on it.  A TCP bind to port
        ``0`` resolves ``self.endpoint`` to the real port first.
        """
        self._lock = _RWLock()
        self._stop = asyncio.Event()
        # Threads beyond the shed limit would only ever idle.
        self._executor = ThreadPoolExecutor(
            max_workers=self._workers or min(32, self.max_inflight),
            thread_name_prefix="repro-serve",
        )
        # Pre-register degradation counters so run manifests always carry
        # them, even for runs that never shed or timed out.
        telemetry = get_telemetry()
        telemetry.count("serve/shed_requests", 0)
        telemetry.count("serve/timeouts", 0)
        listener = await start_listener(
            self.endpoint, self._handle_connection, limit=MAX_LINE_BYTES
        )
        self.endpoint = listener.endpoint
        logger.info("serving on %s", self.endpoint)
        if ready is not None:
            ready.set()
        try:
            await self._stop.wait()
        finally:
            listener.close()
            # Let timed-out stragglers finish before tearing down.
            for drain in list(self._drains):
                await drain
            self._executor.shutdown(wait=True)
            await listener.wait_closed()
            logger.info(
                "stopped after %d requests (%d shed, %d timeouts)",
                self.requests,
                self.shed_requests,
                self.timeouts,
            )

    def stop(self) -> None:
        """Wake :meth:`run` to close the server (idempotent)."""
        if self._stop is not None:
            self._stop.set()

    # -- request handling -------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await serve_lines(reader, writer, self._handle_line)

    async def _handle_line(self, line: bytes) -> bytes:
        telemetry = get_telemetry()
        started = time.perf_counter()
        request_id = None
        try:
            request = decode_request(line)
            request_id = request.get("id")
            op = request["op"]
            if op not in VALID_OPS:
                raise ServeError("unknown_op", f"unknown op {op!r}")
            if op in CONTROL_OPS:
                self.stop()
                response = ok_response(request_id, {"stopping": True})
            elif self._stop is not None and self._stop.is_set():
                raise ServeError("shutting_down", "daemon is draining")
            elif self._inflight >= self.max_inflight:
                self.shed_requests += 1
                telemetry.count("serve/shed_requests")
                raise ServeError(
                    "overloaded",
                    f"{self._inflight} requests in flight "
                    f"(max {self.max_inflight}); retry later",
                )
            else:
                result = await self._execute(request, write=op in WRITE_OPS)
                response = ok_response(request_id, result)
        except ServeError as exc:
            telemetry.count("serve/errors")
            telemetry.count(f"serve/errors/{exc.code}")
            response = error_response(request_id, exc.code, exc.message)
        except GraphError as exc:
            telemetry.count("serve/errors")
            telemetry.count("serve/errors/graph_error")
            response = error_response(request_id, "graph_error", str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("internal error handling request")
            telemetry.count("serve/errors")
            telemetry.count("serve/errors/internal")
            response = error_response(
                request_id, "internal", f"{type(exc).__name__}: {exc}"
            )
        self.requests += 1
        telemetry.count("serve/requests")
        telemetry.observe("serve/latency_s", time.perf_counter() - started)
        return response

    async def _execute(self, request: dict, *, write: bool) -> dict:
        """Run one service call in the thread pool under the proper lock.

        On timeout the future is shielded (the thread keeps running) and
        a drain task holds the lock slot until it finishes, so a
        straggling handler can never overlap a later mutation.
        """
        loop = asyncio.get_running_loop()
        lock = self._lock
        if write:
            await lock.acquire_write()
        else:
            await lock.acquire_read()
        self._inflight += 1
        future = loop.run_in_executor(
            self._executor, self.service.handle, request
        )
        handed_off = False
        try:
            return await asyncio.wait_for(
                asyncio.shield(future), self.request_timeout
            )
        except asyncio.TimeoutError:
            # Hand this request's inflight slot and lock side to a drain
            # task that waits out the still-running worker thread.
            handed_off = True
            self.timeouts += 1
            self.orphaned += 1
            telemetry = get_telemetry()
            telemetry.count("serve/timeouts")
            telemetry.gauge_max("serve/orphaned", self.orphaned)
            if self.orphaned > self.max_inflight / 2:
                logger.warning(
                    "%d orphaned request threads hold inflight slots "
                    "(max_inflight=%d); shedding is imminent",
                    self.orphaned,
                    self.max_inflight,
                )
            drain = asyncio.ensure_future(self._drain(future, write))
            self._drains.add(drain)
            drain.add_done_callback(self._drains.discard)
            raise ServeError(
                "timeout",
                f"request exceeded {self.request_timeout:g}s "
                f"(op {request.get('op')!r})",
            )
        finally:
            if not handed_off:
                self._inflight -= 1
                if write:
                    await lock.release_write()
                else:
                    await lock.release_read()

    async def _drain(self, future: asyncio.Future, write: bool) -> None:
        try:
            await future
        except Exception:  # noqa: BLE001 - the client already got a timeout
            logger.debug("timed-out request failed after deadline", exc_info=True)
        finally:
            self.orphaned -= 1
            self._inflight -= 1
            if write:
                await self._lock.release_write()
            else:
                await self._lock.release_read()
