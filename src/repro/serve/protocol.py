"""JSON line protocol of the feature-serving daemon.

One request per line, one response per line, UTF-8 JSON both ways::

    -> {"id": 1, "op": "features", "node": "MIT"}
    <- {"id": 1, "ok": true, "result": {"node": "MIT", "total": 42, ...}}

    -> {"id": 2, "op": "add_edge", "u": "MIT", "v": "KDD"}
    <- {"id": 2, "ok": false,
        "error": {"code": "graph_error", "message": "duplicate edge ..."}}

``id`` is echoed verbatim so clients can pipeline requests over several
connections; it may be any JSON value (``null`` when omitted).  Errors
are *typed*: ``code`` is drawn from :data:`ERROR_CODES` so clients can
distinguish overload shedding (retry later) from a bad request (don't).

The full protocol — every operation, its parameters, and the repair
semantics of the write path — is documented in ``docs/serving.md``.
"""

from __future__ import annotations

import json

#: Operations answered while holding the shared (read) side of the
#: graph lock; they never modify service state beyond caches.
READ_OPS = ("features", "rank", "label", "stats", "ping")

#: Operations requiring the exclusive (write) side: they mutate the
#: graph and repair the affected censuses before the next read runs.
WRITE_OPS = ("add_edge", "remove_edge")

#: Handled inline by the daemon itself (no service dispatch).
CONTROL_OPS = ("shutdown",)

VALID_OPS = READ_OPS + WRITE_OPS + CONTROL_OPS

#: Typed error codes (the protocol's contract with clients):
#:
#: ``bad_request``     malformed JSON / missing or mistyped parameters
#: ``unknown_op``      an ``op`` outside :data:`VALID_OPS`
#: ``unknown_node``    a node id the graph does not contain
#: ``graph_error``     an invalid mutation (duplicate edge, self loop, ...)
#: ``overloaded``      shed: too many requests in flight, retry later
#: ``timeout``         the request exceeded the daemon's time budget
#: ``shutting_down``   received while the daemon is draining
#: ``internal``        unexpected server-side failure
ERROR_CODES = (
    "bad_request",
    "unknown_op",
    "unknown_node",
    "graph_error",
    "overloaded",
    "timeout",
    "shutting_down",
    "internal",
)


class ServeError(Exception):
    """A protocol-level failure carrying one of :data:`ERROR_CODES`."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown serve error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message


def decode_request(line: bytes | str) -> dict:
    """Parse one request line into a dict; raises :class:`ServeError`.

    Guarantees the result is a JSON object with a string ``op`` — other
    parameter validation is per-operation (see the service layer).
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ServeError("bad_request", f"request is not UTF-8: {exc}")
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServeError("bad_request", f"request is not valid JSON: {exc}")
    if not isinstance(request, dict):
        raise ServeError(
            "bad_request", f"request must be a JSON object, got {type(request).__name__}"
        )
    op = request.get("op")
    if not isinstance(op, str):
        raise ServeError("bad_request", "request is missing a string 'op' field")
    return request


def ok_response(request_id, result) -> bytes:
    """Encode a success response line (newline-terminated UTF-8)."""
    return (
        json.dumps({"id": request_id, "ok": True, "result": result}) + "\n"
    ).encode("utf-8")


def error_response(request_id, code: str, message: str) -> bytes:
    """Encode a typed error response line (newline-terminated UTF-8)."""
    if code not in ERROR_CODES:
        code, message = "internal", f"(bad error code {code!r}) {message}"
    return (
        json.dumps(
            {"id": request_id, "ok": False, "error": {"code": code, "message": message}}
        )
        + "\n"
    ).encode("utf-8")


def require(request: dict, field: str, kind=str):
    """Fetch a typed field from a request; raises ``bad_request`` if absent.

    ``kind`` may be a type or tuple of types; ``bool`` is rejected where
    an int is required (JSON ``true`` is not a count).
    """
    value = request.get(field)
    if kind is int and isinstance(value, bool):
        value = None
    if value is None or not isinstance(value, kind):
        wanted = getattr(kind, "__name__", str(kind))
        raise ServeError(
            "bad_request",
            f"op {request.get('op')!r} requires a {wanted} field {field!r}",
        )
    return value
