"""Operation tables of the feature-serving protocol.

The wire format itself — newline-framed JSON, typed error codes, the
``require``/response helpers — lives in :mod:`repro.net.protocol`, the
transport-agnostic substrate this daemon shares with the shard-worker
RPC layer.  This module layers the *serving* contract on top: which
operations exist and which side of the reader/writer lock each runs
under.

    -> {"id": 1, "op": "features", "node": "MIT"}
    <- {"id": 1, "ok": true, "result": {"node": "MIT", "total": 42, ...}}

``id`` is echoed verbatim so clients can pipeline requests over several
connections; it may be any JSON value (``null`` when omitted).  Errors
are *typed*: ``code`` is drawn from :data:`ERROR_CODES` so clients can
distinguish overload shedding (retry later) from a bad request (don't).

The full protocol — every operation, its parameters, and the repair
semantics of the write path — is documented in ``docs/serving.md``.
"""

from __future__ import annotations

from repro.net.protocol import (
    ERROR_CODES,
    NetError,
    decode_message,
    error_response,
    ok_response,
    require,
)

#: The serving daemon's protocol failures are plain net errors; the
#: historical name survives for the service layer and external callers.
ServeError = NetError

#: Decode one request line (see :func:`repro.net.protocol.decode_message`).
decode_request = decode_message

#: Operations answered while holding the shared (read) side of the
#: graph lock; they never modify service state beyond caches.
READ_OPS = ("features", "rank", "label", "stats", "ping")

#: Operations requiring the exclusive (write) side: they mutate the
#: graph and repair the affected censuses before the next read runs.
WRITE_OPS = ("add_edge", "remove_edge")

#: Handled inline by the daemon itself (no service dispatch).
CONTROL_OPS = ("shutdown",)

VALID_OPS = READ_OPS + WRITE_OPS + CONTROL_OPS

__all__ = [
    "CONTROL_OPS",
    "ERROR_CODES",
    "READ_OPS",
    "VALID_OPS",
    "WRITE_OPS",
    "ServeError",
    "decode_request",
    "error_response",
    "ok_response",
    "require",
]
