"""Repair-scope computation for incremental census maintenance.

When an edge ``(u, v)`` is inserted or deleted, only the rooted censuses
whose enumeration can *reach* the mutation need recomputing.  This module
computes that set — the mutation's d_max-pruned ball — so the serving
daemon repairs a handful of roots instead of recomputing the graph.

Why the ball is correct (``docs/serving.md`` carries the long form):

* **Edge inclusion.**  A rooted subgraph has at most ``e_max`` edges and
  is connected, so if it contains both the root ``r`` and the edge
  ``(u, v)``, a path from ``r`` to the nearer endpoint exists that either
  uses the mutated edge (reaching the other endpoint one hop earlier) or
  leaves it off-path (at most ``e_max - 1`` path edges remain).  Either
  way ``dist(r, {u, v}) <= e_max - 1``.
* **Hub flips.**  The mutation changes only ``deg(u)`` and ``deg(v)``,
  which can flip their d_max hub status and thereby change censuses that
  *expand* u or v.  A node expanded by a census appears with subgraph
  degree >= 2 (or is the root itself), and any such node sits within
  ``e_max - 1`` of the root, so the same radius covers degree effects.
* **Pruning.**  An interior node ``w`` (not u or v) whose degree exceeds
  ``d_max`` is never expanded by any census in either graph version, so
  no enumeration path crosses it: the BFS adds it (hubs are still valid
  *roots* — the root is exempt from d_max) but does not expand it.  The
  endpoints u and v themselves are always expanded: their hub status may
  be exactly what the mutation flipped, and roots behind them are
  affected by that flip.

The ball must be computed on the graph version that **contains** the
edge — after an insertion, before a deletion — since that is the version
in which censuses can traverse it.
"""

from __future__ import annotations

from repro.core.census import CensusConfig
from repro.core.graph import HeteroGraph


def repair_ball(
    graph: HeteroGraph, u: int, v: int, config: CensusConfig
) -> set[int]:
    """Root indices whose census may change when edge ``(u, v)`` flips.

    ``graph`` must be the version containing the edge.  Returns a set of
    internal node indices; every root outside it is provably unaffected
    (its census is bit-identical before and after the mutation).
    """
    depth = max(int(config.max_edges) - 1, 0)
    dmax = config.max_degree
    affected = {u, v}
    frontier = [u, v]
    for _level in range(depth):
        next_frontier: list[int] = []
        for node in frontier:
            if (
                dmax is not None
                and node != u
                and node != v
                and graph.degree(node) > dmax
            ):
                # Hub interior node: affected as a root (already in the
                # set) but never expanded by any census — stop here.
                continue
            for neighbor in graph.neighbors(node):
                neighbor = int(neighbor)
                if neighbor not in affected:
                    affected.add(neighbor)
                    next_frontier.append(neighbor)
        if not next_frontier:
            break
        frontier = next_frontier
    return affected
