"""Replay harness: drive a serving daemon with a mixed read/update trace.

The perf gate (``benchmarks/test_perf_serve.py``) and the CLI's
``repro serve --replay N`` mode both use this module: generate a
deterministic trace of feature/rank/label reads interleaved with edge
mutations, fire it at a live daemon over several connections — unix
socket or TCP, whatever endpoint the daemon is bound to (connections go
through :func:`repro.net.open_connection`) — and report client-side
throughput and latency percentiles.

Correctness under concurrency: every *write* executes in trace order on
one dedicated connection (the daemon handles a connection's requests
sequentially), so each mutation is valid against the graph state the
trace generator simulated.  Reads race freely on the remaining
connections — the daemon's reader/writer lock guarantees each one sees
a consistent graph version.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.graph import HeteroGraph
from repro.net.client import open_connection
from repro.net.endpoint import Endpoint, parse_endpoint
from repro.obs.log import get_logger
from repro.serve.daemon import ServeDaemon
from repro.serve.service import FeatureService, ServeConfig

logger = get_logger(__name__)


@dataclass(frozen=True)
class ReplayConfig:
    """Shape of a generated trace.

    ``write_fraction`` of the requests are edge mutations (half
    insertions of fresh edges, half deletions — deletions prefer edges
    the trace itself added).  Reads split between ``features`` (the
    cheap, dominant op), ``rank``, and ``label`` according to
    ``read_mix``.
    """

    requests: int = 2000
    connections: int = 8
    write_fraction: float = 0.1
    read_mix: tuple = (("features", 0.8), ("rank", 0.1), ("label", 0.1))
    seed: int = 0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.connections < 2:
            raise ValueError(
                f"connections must be >= 2 (one is the writer), "
                f"got {self.connections}"
            )
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError(
                f"write_fraction must be in [0, 1], got {self.write_fraction}"
            )


def generate_trace(graph: HeteroGraph, config: ReplayConfig) -> list[dict]:
    """A deterministic request list simulating the graph's edge evolution.

    Mutations are generated against a simulated edge set that tracks the
    trace's own effects, so replaying the writes *in order* never trips
    a duplicate-edge or no-such-edge error.
    """
    rng = np.random.default_rng(config.seed)
    ids = graph.node_ids
    num_nodes = graph.num_nodes
    if num_nodes < 2:
        raise ValueError("replay needs a graph with at least two nodes")
    edges = {(u, v) for u, v in graph.edges()}
    added: list[tuple[int, int]] = []
    read_ops = [op for op, _weight in config.read_mix]
    read_weights = np.asarray([w for _op, w in config.read_mix], dtype=float)
    read_weights /= read_weights.sum()
    trace: list[dict] = []
    for i in range(config.requests):
        if rng.random() < config.write_fraction:
            if added and rng.random() < 0.5:
                u, v = added.pop(int(rng.integers(len(added))))
                edges.discard((u, v))
                trace.append(
                    {"id": i, "op": "remove_edge", "u": ids[u], "v": ids[v]}
                )
                continue
            # Insert a fresh edge; fall back to a read on dense graphs.
            for _attempt in range(32):
                u, v = (int(x) for x in rng.integers(num_nodes, size=2))
                if u == v:
                    continue
                key = (u, v) if u < v else (v, u)
                if key not in edges:
                    edges.add(key)
                    added.append(key)
                    trace.append(
                        {"id": i, "op": "add_edge", "u": ids[key[0]], "v": ids[key[1]]}
                    )
                    break
            else:
                trace.append({"id": i, "op": "ping"})
            continue
        op = read_ops[int(rng.choice(len(read_ops), p=read_weights))]
        node = ids[int(rng.integers(num_nodes))]
        request = {"id": i, "op": op, "node": node}
        if op == "rank":
            request["k"] = 5
        trace.append(request)
    return trace


@dataclass
class ReplayReport:
    """Client-side measurement of one replay run."""

    requests: int = 0
    duration_s: float = 0.0
    latencies_s: list = field(default_factory=list)
    op_counts: dict = field(default_factory=dict)
    error_counts: dict = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.duration_s if self.duration_s else 0.0

    def percentile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q))

    @property
    def errors(self) -> int:
        return sum(self.error_counts.values())

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.percentile(50) * 1e3,
            "p90_ms": self.percentile(90) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
            "op_counts": dict(sorted(self.op_counts.items())),
            "error_counts": dict(sorted(self.error_counts.items())),
        }

    def summary(self) -> str:
        return (
            f"{self.requests} requests in {self.duration_s:.2f}s "
            f"({self.throughput_rps:.0f} req/s), "
            f"p50 {self.percentile(50) * 1e3:.2f}ms / "
            f"p99 {self.percentile(99) * 1e3:.2f}ms, "
            f"{self.errors} errors"
        )


async def _run_connection(
    endpoint: Endpoint, requests: list[dict], report: ReplayReport, lock: asyncio.Lock
) -> None:
    if not requests:
        return
    reader, writer = await open_connection(endpoint)
    try:
        for request in requests:
            payload = (json.dumps(request) + "\n").encode("utf-8")
            started = time.perf_counter()
            writer.write(payload)
            await writer.drain()
            line = await reader.readline()
            elapsed = time.perf_counter() - started
            if not line:
                raise ConnectionError("daemon closed the connection mid-replay")
            response = json.loads(line)
            async with lock:
                report.requests += 1
                report.latencies_s.append(elapsed)
                op = request["op"]
                report.op_counts[op] = report.op_counts.get(op, 0) + 1
                if not response.get("ok"):
                    code = response.get("error", {}).get("code", "unknown")
                    report.error_counts[code] = report.error_counts.get(code, 0) + 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def replay(
    endpoint, trace: list[dict], connections: int = 8
) -> ReplayReport:
    """Fire ``trace`` at a live daemon; returns the client-side report.

    ``endpoint`` is anything :func:`repro.net.parse_endpoint` accepts —
    a unix socket path or a TCP ``host:port``.  Connection 0 executes
    every write in trace order; reads are dealt round-robin across the
    remaining connections.
    """
    endpoint = parse_endpoint(endpoint)
    writes = [r for r in trace if r["op"] in ("add_edge", "remove_edge")]
    reads = [r for r in trace if r["op"] not in ("add_edge", "remove_edge")]
    reader_lanes = max(1, connections - 1)
    lanes: list[list[dict]] = [[] for _ in range(reader_lanes)]
    for i, request in enumerate(reads):
        lanes[i % reader_lanes].append(request)
    report = ReplayReport()
    lock = asyncio.Lock()
    started = time.perf_counter()
    await asyncio.gather(
        _run_connection(endpoint, writes, report, lock),
        *(
            _run_connection(endpoint, lane, report, lock)
            for lane in lanes
        ),
    )
    report.duration_s = time.perf_counter() - started
    return report


async def serve_and_replay(
    daemon: ServeDaemon, trace: list[dict], connections: int = 8
) -> ReplayReport:
    """Run ``daemon`` and ``trace`` on one event loop; stops the daemon after."""
    ready = asyncio.Event()
    server_task = asyncio.create_task(daemon.run(ready))
    await ready.wait()
    try:
        # daemon.endpoint is resolved by run() (real port after a :0 bind).
        return await replay(daemon.endpoint, trace, connections=connections)
    finally:
        daemon.stop()
        await server_task


def run_in_process(
    graph: HeteroGraph,
    endpoint,
    *,
    serve_config: ServeConfig | None = None,
    replay_config: ReplayConfig | None = None,
    warm: bool = True,
    request_timeout: float = 30.0,
    max_inflight: int = 64,
) -> tuple[ReplayReport, FeatureService]:
    """One-call orchestrator: build service, warm it, serve, replay, stop.

    Used by the perf gate and ``repro serve --replay``; ``endpoint`` is
    a unix socket path or TCP ``host:port``.  Returns the client-side
    report and the (stopped) service for inspection.
    """
    replay_config = replay_config if replay_config is not None else ReplayConfig()
    service = FeatureService(graph, serve_config)
    if warm:
        service.warm()
    trace = generate_trace(service.graph, replay_config)
    daemon = ServeDaemon(
        service,
        endpoint,
        request_timeout=request_timeout,
        max_inflight=max_inflight,
    )
    report = asyncio.run(
        serve_and_replay(daemon, trace, connections=replay_config.connections)
    )
    logger.info("replay: %s", report.summary())
    return report, service
