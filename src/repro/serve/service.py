"""The stateful core of the serving daemon: graph + warm censuses + repair.

:class:`FeatureService` owns one :class:`~repro.core.graph.MutableHeteroGraph`
and an :class:`~repro.runtime.store.ArtifactStore` acting as the warm KV
tier: every census it computes is content-addressed under the graph's
current fingerprint, so reads are dict lookups once a root is warm.

Two census *variants* are maintained side by side:

``plain``
    The unmasked census (``features`` and ``rank`` queries).
``masked``
    ``mask_start_label=True`` (``label`` queries) — predicting a node's
    label from features that encode that very label would be leakage.

The write path (:meth:`FeatureService.apply_mutation`) is the heart of
the incremental story: an edge mutation computes its d_max-pruned repair
ball (:mod:`repro.serve.repair`), *migrates* every unaffected warm root's
census from the old graph fingerprint to the new one (a key move, no
recompute), and recomputes only the roots inside the ball.  The result
is bit-identical to a cold full recompute — the randomized parity suite
(``tests/test_serve_incremental.py``) asserts exactly that, per engine
and worker count.

Thread model: read handlers may run concurrently (the daemon holds the
shared side of its reader/writer lock) and synchronise their metadata
updates on one internal lock; :meth:`apply_mutation` requires exclusivity,
which the daemon provides by holding the write side.
"""

from __future__ import annotations

import math
import threading
from collections import Counter
from dataclasses import dataclass

from repro.core.cache import census_store_config
from repro.core.census import CensusConfig, census_total, effective_labelset
from repro.core.encoding import code_to_string
from repro.core.features import SubgraphFeatureExtractor
from repro.core.graph import HeteroGraph, MutableHeteroGraph
from repro.exceptions import GraphError
from repro.obs.log import get_logger
from repro.obs.telemetry import get_telemetry
from repro.runtime.context import EXACT_ENGINES, RunContext
from repro.runtime.store import STAGE_CENSUS, ArtifactStore
from repro.serve.protocol import ServeError
from repro.serve.repair import repair_ball

logger = get_logger(__name__)

#: The two census variants every service maintains.
VARIANTS = ("plain", "masked")


@dataclass(frozen=True)
class ServeConfig:
    """Census and ranking knobs of one serving process.

    ``engine`` must be exact (``fast``/``reference``): incremental repair
    promises bit-identity with a cold recompute, which a budgeted sampled
    estimate keyed on per-root rng seeds cannot (its per-root seeds are
    fingerprint-independent, but serving estimates would still conflate
    "repaired" with "re-sampled" in client-visible counts).
    """

    emax: int = 4
    dmax: int | None = None
    engine: str = "fast"
    n_jobs: int = 1
    top_k: int = 10

    def __post_init__(self) -> None:
        if self.emax < 1:
            raise ValueError(f"emax must be >= 1, got {self.emax}")
        if self.engine not in EXACT_ENGINES:
            raise ValueError(
                f"serve engine must be one of {EXACT_ENGINES}, got {self.engine!r}"
            )
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")


def _cosine(a: Counter, b: Counter, norm_a: float, norm_b: float) -> float:
    if not norm_a or not norm_b:
        return 0.0
    if len(b) < len(a):
        a, b = b, a
    dot = sum(count * b.get(code, 0) for code, count in a.items())
    return dot / (norm_a * norm_b)


def _norm(census: Counter) -> float:
    return math.sqrt(sum(count * count for count in census.values()))


class FeatureService:
    """Feature/rank/label queries plus incremental edge mutations."""

    def __init__(
        self,
        graph: HeteroGraph,
        config: ServeConfig | None = None,
        *,
        store: ArtifactStore | None = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.graph = (
            graph
            if isinstance(graph, MutableHeteroGraph)
            else MutableHeteroGraph.from_graph(graph)
        )
        self.store = store if store is not None else ArtifactStore()
        self._census_configs = {
            "plain": CensusConfig(
                max_edges=self.config.emax, max_degree=self.config.dmax
            ),
            "masked": CensusConfig(
                max_edges=self.config.emax,
                max_degree=self.config.dmax,
                mask_start_label=True,
            ),
        }
        ctx = RunContext(
            engine=self.config.engine, n_jobs=self.config.n_jobs, store=self.store
        )
        self._extractors = {
            variant: SubgraphFeatureExtractor(census_config, ctx=ctx)
            for variant, census_config in self._census_configs.items()
        }
        self._labelsets = {
            variant: effective_labelset(self.graph, census_config)
            for variant, census_config in self._census_configs.items()
        }
        # Roots whose censuses live in the store under the *current*
        # fingerprint, per variant — the set repair migrates/recomputes.
        self._tracked: dict[str, set[int]] = {v: set() for v in VARIANTS}
        # Hot-path caches rebuilt from the store at will: live Counter per
        # root, its L2 norm, and the rendered features response.  All are
        # invalidated for repaired roots on mutation.
        self._counters: dict[tuple[str, int], Counter] = {}
        self._norms: dict[tuple[str, int], float] = {}
        self._rendered: dict[tuple[str, int], dict] = {}
        # Per-label masked census sums for nearest-centroid label
        # prediction; None = rebuild lazily on the next label query.
        self._centroids: dict[int, Counter] | None = None
        self._meta_lock = threading.Lock()
        self.mutations = 0
        self.repaired_roots = 0
        self.migrated_roots = 0

    # -- plumbing ---------------------------------------------------------
    def _resolve(self, node_id) -> int:
        try:
            return self.graph.index(node_id)
        except GraphError as exc:
            raise ServeError("unknown_node", str(exc)) from None

    def census(self, variant: str, root: int) -> Counter:
        """The (warm) census of one root; computes and tracks on a miss."""
        key = (variant, root)
        with self._meta_lock:
            cached = self._counters.get(key)
        if cached is not None:
            return cached
        census = self._extractors[variant].census_many(self.graph, [root])[0]
        with self._meta_lock:
            self._counters[key] = census
            self._tracked[variant].add(root)
        return census

    def _norm_of(self, variant: str, root: int) -> float:
        key = (variant, root)
        with self._meta_lock:
            norm = self._norms.get(key)
        if norm is None:
            norm = _norm(self.census(variant, root))
            with self._meta_lock:
                self._norms[key] = norm
        return norm

    def warm(self, roots=None) -> int:
        """Pre-census ``roots`` (default: every node) for both variants.

        Returns the number of roots warmed.  Batched through the
        extractor, so ``n_jobs > 1`` fans the cold censuses across
        worker processes.
        """
        if roots is None:
            roots = range(self.graph.num_nodes)
        roots = [int(root) for root in roots]
        for variant in VARIANTS:
            censuses = self._extractors[variant].census_many(self.graph, roots)
            with self._meta_lock:
                for root, census in zip(roots, censuses):
                    self._counters[(variant, root)] = census
                    self._tracked[variant].add(root)
        get_telemetry().count("serve/warmed_roots", len(roots))
        return len(roots)

    # -- read operations --------------------------------------------------
    def features(self, node_id, masked: bool = False) -> dict:
        """Rendered census of one node: total, class count, per-code counts."""
        root = self._resolve(node_id)
        variant = "masked" if masked else "plain"
        key = (variant, root)
        with self._meta_lock:
            rendered = self._rendered.get(key)
        if rendered is not None:
            return rendered
        census = self.census(variant, root)
        labelset = self._labelsets[variant]
        counts = {
            code_to_string(code, labelset): count
            for code, count in sorted(
                census.items(), key=lambda item: (-item[1], item[0])
            )
        }
        rendered = {
            "node": str(node_id),
            "masked": masked,
            "total": census_total(census),
            "classes": len(census),
            "counts": counts,
        }
        with self._meta_lock:
            self._rendered[key] = rendered
        return rendered

    def rank(self, node_id, k: int | None = None) -> dict:
        """Top-k warm roots by census cosine similarity to ``node_id``."""
        root = self._resolve(node_id)
        k = self.config.top_k if k is None else int(k)
        if k < 1:
            raise ServeError("bad_request", f"k must be >= 1, got {k}")
        query = self.census("plain", root)
        query_norm = self._norm_of("plain", root)
        with self._meta_lock:
            candidates = sorted(self._tracked["plain"] - {root})
        scored = [
            (
                _cosine(
                    query,
                    self.census("plain", candidate),
                    query_norm,
                    self._norm_of("plain", candidate),
                ),
                candidate,
            )
            for candidate in candidates
        ]
        scored.sort(key=lambda item: (-item[0], item[1]))
        return {
            "node": str(node_id),
            "candidates": len(candidates),
            "top": [
                {"node": str(self.graph.node_id(candidate)), "score": score}
                for score, candidate in scored[:k]
            ],
        }

    def _build_centroids(self) -> dict[int, Counter]:
        """Per-label masked census sums over the warm roots (lazy).

        Cosine scoring is scale-invariant, so the un-normalised sum *is*
        the centroid; a query root tracked under its own label is
        excluded at scoring time by subtracting its counter.
        """
        with self._meta_lock:
            centroids = self._centroids
            tracked = sorted(self._tracked["masked"])
        if centroids is not None:
            return centroids
        centroids = {}
        for candidate in tracked:
            label = self.graph.label_of(candidate)
            into = centroids.get(label)
            if into is None:
                into = centroids[label] = Counter()
            into.update(self.census("masked", candidate))
        with self._meta_lock:
            self._centroids = centroids
        return centroids

    def label(self, node_id) -> dict:
        """Nearest-centroid label prediction from the masked census."""
        root = self._resolve(node_id)
        query = self.census("masked", root)
        query_norm = _norm(query)
        centroids = self._build_centroids()
        with self._meta_lock:
            tracked = root in self._tracked["masked"]
        actual = self.graph.label_of(root)
        scores = {}
        for label, centroid in centroids.items():
            if tracked and label == actual:
                centroid = centroid - query  # leave-one-out
            scores[self.graph.labelset.name(label)] = _cosine(
                query, centroid, query_norm, _norm(centroid)
            )
        predicted = max(scores, key=scores.get) if scores else None
        return {
            "node": str(node_id),
            "predicted": predicted,
            "actual": self.graph.labelset.name(actual),
            "scores": scores,
        }

    def stats(self) -> dict:
        """Service-level snapshot: graph, warm sets, store, repair tallies."""
        with self._meta_lock:
            tracked = {variant: len(self._tracked[variant]) for variant in VARIANTS}
        store_stats = self.store.stats()
        store_stats.pop("stages", None)
        store_stats.pop("approx_payload_bytes", None)
        return {
            "graph": {
                "nodes": self.graph.num_nodes,
                "edges": self.graph.num_edges,
                "labels": list(self.graph.labelset.names),
                "fingerprint": self.graph.fingerprint(),
            },
            "config": {
                "emax": self.config.emax,
                "dmax": self.config.dmax,
                "engine": self.config.engine,
                "n_jobs": self.config.n_jobs,
            },
            "tracked": tracked,
            "store": store_stats,
            "mutations": self.mutations,
            "repaired_roots": self.repaired_roots,
            "migrated_roots": self.migrated_roots,
        }

    # -- write path -------------------------------------------------------
    def apply_mutation(self, op: str, u_id, v_id) -> dict:
        """Apply one edge mutation and repair the affected censuses.

        MUST run exclusively (the daemon holds the write lock): the graph
        fingerprint changes mid-flight and concurrent reads could compute
        censuses of the half-migrated version.

        Steps: mutate the graph; compute the repair ball on the version
        containing the edge; per variant, migrate every unaffected warm
        census to the new fingerprint (key move, no recompute) and
        recompute the ball's tracked roots.  Raises
        :class:`~repro.exceptions.GraphError` on invalid mutations and
        :class:`ServeError` (``unknown_node``) on unresolvable ids.
        """
        graph = self.graph
        u, v = self._resolve(u_id), self._resolve(v_id)
        old_fp = graph.fingerprint()
        ball_config = self._census_configs["plain"]
        if op == "add_edge":
            graph.add_edge(u_id, v_id)
            # Ball on the post-mutation graph — the version with the edge.
            ball = repair_ball(graph, u, v, ball_config)
        elif op == "remove_edge":
            if u == v or not graph.has_edge(u, v):
                raise GraphError(f"no such edge ({u_id!r}, {v_id!r})")
            # Ball on the pre-mutation graph — the version with the edge.
            ball = repair_ball(graph, u, v, ball_config)
            graph.remove_edge(u_id, v_id)
        else:  # pragma: no cover - guarded by the protocol layer
            raise ServeError("unknown_op", f"unknown mutation op {op!r}")
        new_fp = graph.fingerprint()
        telemetry = get_telemetry()
        repaired = 0
        migrated = 0
        for variant, census_config in self._census_configs.items():
            tracked = self._tracked[variant]
            affected = sorted(tracked & ball)
            unaffected = sorted(tracked - ball)
            for root in unaffected:
                store_config = census_store_config(census_config, root)
                # Atomic re-key: no deep copies, and the store's hit/miss
                # and payload accounting see no phantom traffic from
                # migration bookkeeping (see ArtifactStore.move).
                if self.store.move(old_fp, new_fp, STAGE_CENSUS, store_config):
                    migrated += 1
                else:
                    # Evicted from the warm tier: recompute on next use.
                    tracked.discard(root)
                    self._drop_root_caches(variant, root)
            for root in affected:
                self.store.discard(
                    old_fp, STAGE_CENSUS, census_store_config(census_config, root)
                )
                self._drop_root_caches(variant, root)
            if affected:
                # Recompute through the extractor: misses under the new
                # fingerprint, computes (fanning out at n_jobs > 1), and
                # writes back — exactly a cold census of these roots.
                censuses = self._extractors[variant].census_many(graph, affected)
                for root, census in zip(affected, censuses):
                    self._counters[(variant, root)] = census
                repaired += len(affected)
                if variant == "masked":
                    self._centroids = None
        self.mutations += 1
        self.repaired_roots += repaired
        self.migrated_roots += migrated
        telemetry.count("serve/mutations")
        telemetry.count("serve/repaired_roots", repaired)
        telemetry.count("serve/migrated_roots", migrated)
        telemetry.count("serve/ball_nodes", len(ball))
        logger.debug(
            "%s (%r, %r): ball=%d repaired=%d migrated=%d",
            op, u_id, v_id, len(ball), repaired, migrated,
        )
        return {
            "op": op,
            "u": str(u_id),
            "v": str(v_id),
            "num_edges": graph.num_edges,
            "ball_size": len(ball),
            "repaired_roots": repaired,
            "migrated_roots": migrated,
            "fingerprint": new_fp,
        }

    def _drop_root_caches(self, variant: str, root: int) -> None:
        key = (variant, root)
        self._counters.pop(key, None)
        self._norms.pop(key, None)
        self._rendered.pop(key, None)

    # -- dispatch ---------------------------------------------------------
    def handle(self, request: dict) -> dict:
        """Execute one decoded request; returns the result payload.

        Raises :class:`ServeError` for protocol-level failures; the
        daemon maps :class:`GraphError` to the ``graph_error`` code.
        """
        from repro.serve.protocol import require

        op = request["op"]
        if op == "ping":
            return {"pong": True}
        if op == "stats":
            return self.stats()
        node_kinds = (str, int)  # external ids are strings or ints
        if op == "features":
            masked = request.get("masked", False)
            if not isinstance(masked, bool):
                raise ServeError("bad_request", "'masked' must be a boolean")
            return self.features(require(request, "node", node_kinds), masked=masked)
        if op == "rank":
            k = request.get("k")
            if k is not None and (isinstance(k, bool) or not isinstance(k, int)):
                raise ServeError("bad_request", "'k' must be an integer")
            return self.rank(require(request, "node", node_kinds), k=k)
        if op == "label":
            return self.label(require(request, "node", node_kinds))
        if op in ("add_edge", "remove_edge"):
            return self.apply_mutation(
                op, require(request, "u", node_kinds), require(request, "v", node_kinds)
            )
        raise ServeError("unknown_op", f"unknown op {op!r}")
