"""Feature-serving daemon with incremental census maintenance.

``repro serve`` turns the batch reproduction into a long-lived service:
an asyncio daemon — listening on a unix socket or, with ``--tcp``, a
``host:port`` (framing and transport live in :mod:`repro.net`) —
answering ``features``/``rank``/``label``/``stats`` queries out of an
:class:`~repro.runtime.store.ArtifactStore` warm tier, with an
``add_edge``/``remove_edge`` write path that repairs only the rooted
censuses whose d_max-ball touches the mutated edge — bit-identical to a
cold recompute.  See ``docs/serving.md``.
"""

from repro.serve.daemon import ServeDaemon
from repro.serve.protocol import (
    ERROR_CODES,
    READ_OPS,
    VALID_OPS,
    WRITE_OPS,
    ServeError,
    decode_request,
    error_response,
    ok_response,
)
from repro.serve.repair import repair_ball
from repro.serve.replay import (
    ReplayConfig,
    ReplayReport,
    generate_trace,
    replay,
    run_in_process,
    serve_and_replay,
)
from repro.serve.service import FeatureService, ServeConfig

__all__ = [
    "ERROR_CODES",
    "FeatureService",
    "READ_OPS",
    "ReplayConfig",
    "ReplayReport",
    "ServeConfig",
    "ServeDaemon",
    "ServeError",
    "VALID_OPS",
    "WRITE_OPS",
    "decode_request",
    "error_response",
    "generate_trace",
    "ok_response",
    "repair_ball",
    "replay",
    "run_in_process",
    "serve_and_replay",
]
