"""Random-walk corpora for DeepWalk and node2vec.

DeepWalk samples truncated uniform random walks; node2vec generalises them
to second-order walks biased by a return parameter ``p`` and an in-out
parameter ``q`` (Grover & Leskovec 2016).  With the paper's defaults
``p = q = 1`` the second-order walk degenerates to the uniform walk, which
the implementation exploits as a fast path.

Walks operate on the integer node indices of :class:`~repro.core.graph.HeteroGraph`
and ignore labels entirely — the embeddings are the paper's label-blind
baselines.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import HeteroGraph


def uniform_random_walks(
    graph: HeteroGraph,
    num_walks: int = 10,
    walk_length: int = 80,
    rng: np.random.Generator | int | None = None,
    nodes=None,
) -> list[np.ndarray]:
    """Truncated uniform random walks, ``num_walks`` per start node.

    Walks stop early at isolated nodes.  Returns one integer array per walk.
    """
    if num_walks < 1 or walk_length < 1:
        raise ValueError("num_walks and walk_length must be >= 1")
    rng = np.random.default_rng(rng)
    starts = np.arange(graph.num_nodes) if nodes is None else np.asarray(nodes)
    walks: list[np.ndarray] = []
    for _ in range(num_walks):
        order = rng.permutation(starts)
        for start in order:
            walk = [int(start)]
            current = int(start)
            for _ in range(walk_length - 1):
                neighbours = graph.neighbors(current)
                if len(neighbours) == 0:
                    break
                current = int(neighbours[rng.integers(0, len(neighbours))])
                walk.append(current)
            walks.append(np.asarray(walk, dtype=np.int64))
    return walks


def node2vec_walks(
    graph: HeteroGraph,
    num_walks: int = 10,
    walk_length: int = 80,
    p: float = 1.0,
    q: float = 1.0,
    rng: np.random.Generator | int | None = None,
    nodes=None,
) -> list[np.ndarray]:
    """Second-order biased walks with return parameter ``p`` and in-out ``q``.

    Transition weights from ``prev -> current -> next``:

    * ``1/p`` when ``next == prev`` (return),
    * ``1``  when ``next`` is adjacent to ``prev`` (stay close),
    * ``1/q`` otherwise (move outward).

    ``p = q = 1`` short-circuits to :func:`uniform_random_walks`.
    """
    if p <= 0 or q <= 0:
        raise ValueError("p and q must be positive")
    if p == 1.0 and q == 1.0:
        return uniform_random_walks(graph, num_walks, walk_length, rng, nodes)
    if num_walks < 1 or walk_length < 1:
        raise ValueError("num_walks and walk_length must be >= 1")
    rng = np.random.default_rng(rng)
    starts = np.arange(graph.num_nodes) if nodes is None else np.asarray(nodes)
    neighbour_sets = [set(int(x) for x in graph.neighbors(v)) for v in range(graph.num_nodes)]
    walks: list[np.ndarray] = []
    for _ in range(num_walks):
        order = rng.permutation(starts)
        for start in order:
            walk = [int(start)]
            current = int(start)
            previous = -1
            for _ in range(walk_length - 1):
                neighbours = graph.neighbors(current)
                if len(neighbours) == 0:
                    break
                if previous == -1:
                    nxt = int(neighbours[rng.integers(0, len(neighbours))])
                else:
                    weights = np.empty(len(neighbours))
                    prev_neighbours = neighbour_sets[previous]
                    for i, candidate in enumerate(neighbours):
                        candidate = int(candidate)
                        if candidate == previous:
                            weights[i] = 1.0 / p
                        elif candidate in prev_neighbours:
                            weights[i] = 1.0
                        else:
                            weights[i] = 1.0 / q
                    weights /= weights.sum()
                    nxt = int(neighbours[rng.choice(len(neighbours), p=weights)])
                walk.append(nxt)
                previous, current = current, nxt
            walks.append(np.asarray(walk, dtype=np.int64))
    return walks


def walk_node_frequencies(walks, num_nodes: int) -> np.ndarray:
    """Node occurrence counts across a walk corpus (negative-sampling base)."""
    counts = np.zeros(num_nodes, dtype=np.float64)
    for walk in walks:
        np.add.at(counts, walk, 1.0)
    return counts
