"""Random-walk corpora for DeepWalk and node2vec.

DeepWalk samples truncated uniform random walks; node2vec generalises them
to second-order walks biased by a return parameter ``p`` and an in-out
parameter ``q`` (Grover & Leskovec 2016).  With the paper's defaults
``p = q = 1`` the second-order walk degenerates to the uniform walk, which
the implementation exploits as a fast path.

Walks operate on the integer node indices of :class:`~repro.core.graph.HeteroGraph`
and ignore labels entirely — the embeddings are the paper's label-blind
baselines.

Engines
-------
Both walk functions ship two implementations behind one dispatcher,
mirroring :func:`repro.core.census.subgraph_census`:

* ``engine="reference"`` advances one node and one step at a time in plain
  Python — the straightforward transcription of the algorithms, kept as the
  behavioural oracle;
* ``engine="fast"`` (default) snapshots the adjacency into CSR arrays and
  advances *all* walks of an epoch simultaneously per step with vectorised
  numpy indexing.  node2vec's ``p``/``q`` bias is applied by rejection
  sampling on the whole batch, falling back to the exact per-node weighted
  draw only for rows still rejected after a few rounds.

Corpus layout and seeding
-------------------------
A corpus is a single ``(num_walks * len(starts), walk_length)`` int64
matrix; walks that stop early (isolated start nodes) are padded with ``-1``.
Each of the ``num_walks`` epochs draws from its own child generator spawned
from the caller's seed, so the corpus is bit-identical for any ``n_jobs``
worker count — epochs are the sharding unit of the optional multiprocess
generation.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.core.graph import HeteroGraph
from repro.obs.telemetry import Telemetry, get_telemetry
from repro.runtime.context import RunContext, resolve_engine
from repro.runtime.store import STAGE_WALKS

WalkEngine = Literal["fast", "reference"]

#: Valid walk engine names (checked through the shared runtime validator).
ENGINES = ("fast", "reference")

#: Vectorised rejection rounds before the exact per-node fallback kicks in.
_REJECTION_ROUNDS = 8


@dataclass(frozen=True)
class _WalkCSR:
    """Numpy CSR snapshot of a graph for the batched walk engine.

    Neighbour lists are re-sorted by index (the graph stores them sorted by
    label) so ``keys`` — ``row * num_nodes + neighbour`` — is globally
    ascending and a single ``searchsorted`` answers batched "is ``c`` a
    neighbour of ``v``?" membership queries.
    """

    indptr: np.ndarray
    neighbors: np.ndarray
    degrees: np.ndarray
    keys: np.ndarray
    num_nodes: int

    @classmethod
    def from_graph(cls, graph: HeteroGraph) -> "_WalkCSR":
        flat = graph.flat()
        num_nodes = graph.num_nodes
        indptr = np.asarray(flat.indptr, dtype=np.int64)
        raw = np.asarray(flat.neighbors, dtype=np.int64)
        degrees = np.asarray(flat.degrees, dtype=np.int64)
        rows = np.repeat(np.arange(num_nodes, dtype=np.int64), degrees)
        order = np.lexsort((raw, rows)) if raw.size else np.empty(0, dtype=np.int64)
        neighbors = raw[order]
        keys = rows * num_nodes + neighbors
        return cls(indptr, neighbors, degrees, keys, num_nodes)

    def is_edge(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Vectorised adjacency test for aligned index arrays ``u``, ``v``."""
        query = u * self.num_nodes + v
        pos = np.searchsorted(self.keys, query)
        pos = np.minimum(pos, self.keys.size - 1)
        return self.keys[pos] == query


def _epoch_rngs(rng, num_walks: int) -> list[np.random.Generator]:
    """One independent child generator per walk epoch.

    Children derive deterministically from the caller's seed (or from the
    generator's spawn key), so shard -> worker assignment can never change
    the corpus: epoch ``e`` always consumes stream ``e``.
    """
    if isinstance(rng, np.random.Generator):
        try:
            return list(rng.spawn(num_walks))
        except AttributeError:  # numpy < 1.25
            seeds = rng.integers(np.iinfo(np.int64).max, size=num_walks)
            return [np.random.default_rng(int(s)) for s in seeds]
    seq = np.random.SeedSequence(rng)
    return [np.random.default_rng(child) for child in seq.spawn(num_walks)]


# ----------------------------------------------------------------------
# Per-epoch walkers
# ----------------------------------------------------------------------
def _uniform_epoch_reference(
    graph: HeteroGraph, order: np.ndarray, walk_length: int, rng: np.random.Generator
) -> np.ndarray:
    walks = np.full((order.shape[0], walk_length), -1, dtype=np.int64)
    for row, start in enumerate(order):
        current = int(start)
        walks[row, 0] = current
        for step in range(1, walk_length):
            neighbours = graph.neighbors(current)
            if len(neighbours) == 0:
                break
            current = int(neighbours[rng.integers(0, len(neighbours))])
            walks[row, step] = current
    return walks


def _node2vec_epoch_reference(
    graph: HeteroGraph,
    order: np.ndarray,
    walk_length: int,
    p: float,
    q: float,
    rng: np.random.Generator,
) -> np.ndarray:
    neighbour_sets = [
        set(int(x) for x in graph.neighbors(v)) for v in range(graph.num_nodes)
    ]
    walks = np.full((order.shape[0], walk_length), -1, dtype=np.int64)
    for row, start in enumerate(order):
        current = int(start)
        walks[row, 0] = current
        previous = -1
        for step in range(1, walk_length):
            neighbours = graph.neighbors(current)
            if len(neighbours) == 0:
                break
            if previous == -1:
                nxt = int(neighbours[rng.integers(0, len(neighbours))])
            else:
                weights = np.empty(len(neighbours))
                prev_neighbours = neighbour_sets[previous]
                for i, candidate in enumerate(neighbours):
                    candidate = int(candidate)
                    if candidate == previous:
                        weights[i] = 1.0 / p
                    elif candidate in prev_neighbours:
                        weights[i] = 1.0
                    else:
                        weights[i] = 1.0 / q
                weights /= weights.sum()
                nxt = int(neighbours[rng.choice(len(neighbours), p=weights)])
            walks[row, step] = nxt
            previous, current = current, nxt
    return walks


def _uniform_epoch_fast(
    csr: _WalkCSR, order: np.ndarray, walk_length: int, rng: np.random.Generator
) -> np.ndarray:
    walks = np.full((order.shape[0], walk_length), -1, dtype=np.int64)
    walks[:, 0] = order
    # Only start nodes can be isolated: any node *reached* over an edge has
    # degree >= 1 in an undirected graph, so the active set is fixed after
    # this one mask — dead walks are masked out, never loop-broken.
    active = np.flatnonzero(csr.degrees[order] > 0)
    current = order[active]
    for step in range(1, walk_length):
        if current.size == 0:
            break
        draws = rng.integers(0, csr.degrees[current])
        current = csr.neighbors[csr.indptr[current] + draws]
        walks[active, step] = current
    return walks


def _exact_biased_step(
    csr: _WalkCSR,
    current: int,
    previous: int,
    inv_p: float,
    inv_q: float,
    rng: np.random.Generator,
) -> int:
    """The exact second-order draw for one walk (rejection-loop fallback)."""
    row = csr.neighbors[csr.indptr[current]: csr.indptr[current] + csr.degrees[current]]
    prow = csr.neighbors[
        csr.indptr[previous]: csr.indptr[previous] + csr.degrees[previous]
    ]
    pos = np.minimum(np.searchsorted(prow, row), prow.size - 1)
    adjacent = prow[pos] == row if prow.size else np.zeros(row.size, dtype=bool)
    weights = np.where(row == previous, inv_p, np.where(adjacent, 1.0, inv_q))
    weights /= weights.sum()
    return int(row[rng.choice(row.size, p=weights)])


def _node2vec_epoch_fast(
    csr: _WalkCSR,
    order: np.ndarray,
    walk_length: int,
    p: float,
    q: float,
    rng: np.random.Generator,
) -> np.ndarray:
    walks = np.full((order.shape[0], walk_length), -1, dtype=np.int64)
    walks[:, 0] = order
    if walk_length == 1:
        return walks
    active = np.flatnonzero(csr.degrees[order] > 0)
    if active.size == 0:
        return walks
    # First step has no predecessor: plain uniform draw.
    previous = order[active]
    draws = rng.integers(0, csr.degrees[previous])
    current = csr.neighbors[csr.indptr[previous] + draws]
    walks[active, 1] = current

    inv_p, inv_q = 1.0 / p, 1.0 / q
    wmax = max(inv_p, 1.0, inv_q)
    for step in range(2, walk_length):
        nxt = np.empty(current.size, dtype=np.int64)
        pending = np.arange(current.size)
        for _ in range(_REJECTION_ROUNDS):
            cur = current[pending]
            cand = csr.neighbors[csr.indptr[cur] + rng.integers(0, csr.degrees[cur])]
            prev = previous[pending]
            weights = np.where(
                cand == prev,
                inv_p,
                np.where(csr.is_edge(prev, cand), 1.0, inv_q),
            )
            accepted = rng.random(pending.size) * wmax <= weights
            nxt[pending[accepted]] = cand[accepted]
            pending = pending[~accepted]
            if pending.size == 0:
                break
        for t in pending:
            nxt[t] = _exact_biased_step(
                csr, int(current[t]), int(previous[t]), inv_p, inv_q, rng
            )
        walks[active, step] = nxt
        previous, current = current, nxt
    return walks


def _walk_epoch(
    graph: HeteroGraph,
    csr: _WalkCSR | None,
    starts: np.ndarray,
    walk_length: int,
    p: float,
    q: float,
    engine: WalkEngine,
    rng: np.random.Generator,
) -> np.ndarray:
    order = rng.permutation(starts)
    if engine == "reference":
        if p == 1.0 and q == 1.0:
            return _uniform_epoch_reference(graph, order, walk_length, rng)
        return _node2vec_epoch_reference(graph, order, walk_length, p, q, rng)
    if p == 1.0 and q == 1.0:
        return _uniform_epoch_fast(csr, order, walk_length, rng)
    return _node2vec_epoch_fast(csr, order, walk_length, p, q, rng)


# ----------------------------------------------------------------------
# Multiprocess epoch sharding
# ----------------------------------------------------------------------
# Workers receive the graph once via the pool initializer (the paper's
# shared-edge-list argument, in pickle form) and rebuild the CSR snapshot
# locally; each task then only ships one child generator.
_WALK_STATE: dict = {}


def _init_walk_worker(graph, starts, walk_length, p, q, engine) -> None:
    _WALK_STATE["graph"] = graph
    _WALK_STATE["csr"] = _WalkCSR.from_graph(graph) if engine == "fast" else None
    _WALK_STATE["args"] = (starts, walk_length, p, q, engine)


def _epoch_worker(rng: np.random.Generator) -> tuple[np.ndarray, dict]:
    """Run one epoch in a worker; ship the block plus worker telemetry."""
    starts, walk_length, p, q, engine = _WALK_STATE["args"]
    telemetry = Telemetry()
    with telemetry.span("walks/epoch"):
        block = _walk_epoch(
            _WALK_STATE["graph"],
            _WALK_STATE["csr"],
            starts,
            walk_length,
            p,
            q,
            engine,
            rng,
        )
    telemetry.count("walks/generated", block.shape[0])
    return block, telemetry.snapshot()


def _run_walks(
    graph: HeteroGraph,
    starts: np.ndarray,
    walk_length: int,
    p: float,
    q: float,
    engine: WalkEngine,
    rngs: list[np.random.Generator],
    n_jobs: int,
) -> np.ndarray:
    resolve_engine(engine, ENGINES, param="walk engine")
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    num_walks = len(rngs)
    span = starts.shape[0]
    corpus = np.full((num_walks * span, walk_length), -1, dtype=np.int64)
    if span == 0:
        return corpus
    telemetry = get_telemetry()
    if min(n_jobs, num_walks) <= 1:
        csr = _WalkCSR.from_graph(graph) if engine == "fast" else None
        for epoch, rng in enumerate(rngs):
            with telemetry.span("walks/epoch"):
                corpus[epoch * span: (epoch + 1) * span] = _walk_epoch(
                    graph, csr, starts, walk_length, p, q, engine, rng
                )
            telemetry.count("walks/generated", span)
        return corpus
    with ProcessPoolExecutor(
        max_workers=min(n_jobs, num_walks),
        initializer=_init_walk_worker,
        initargs=(graph, starts, walk_length, p, q, engine),
    ) as pool:
        for epoch, (block, snapshot) in enumerate(pool.map(_epoch_worker, rngs)):
            corpus[epoch * span: (epoch + 1) * span] = block
            telemetry.merge(snapshot)
    return corpus


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def _corpus_key(
    kind: str, num_walks, walk_length, p, q, rng, nodes, engine
) -> tuple | None:
    """The walk-stage cache config, or ``None`` when the corpus is uncacheable.

    Only integer-seeded corpora are content-addressable: a ``Generator``
    carries hidden stream state and ``None`` draws fresh OS entropy, so
    neither can be frozen into a key.  ``n_jobs`` is deliberately absent —
    epoch sharding is bit-identical for every worker count.
    """
    if not isinstance(rng, (int, np.integer)) or isinstance(rng, bool):
        return None
    node_key = (
        None
        if nodes is None
        else tuple(int(n) for n in np.asarray(nodes, dtype=np.int64).ravel())
    )
    return (
        kind,
        int(num_walks),
        int(walk_length),
        float(p),
        float(q),
        int(rng),
        engine,
        node_key,
    )


def uniform_random_walks(
    graph: HeteroGraph,
    num_walks: int = 10,
    walk_length: int = 80,
    rng: np.random.Generator | int | None = None,
    nodes=None,
    engine: WalkEngine | None = None,
    n_jobs: int | None = None,
    *,
    ctx: RunContext | None = None,
) -> np.ndarray:
    """Truncated uniform random walks, ``num_walks`` per start node.

    Returns a ``(num_walks * len(starts), walk_length)`` int64 matrix —
    epoch-major, each epoch's rows in a freshly permuted start order.
    Walks from isolated nodes are padded with ``-1`` after the start.

    ``engine`` selects the batched implementation (``"fast"``, default) or
    the per-node oracle (``"reference"``); ``n_jobs`` shards epochs over
    worker processes without changing the result for any worker count.
    ``ctx`` supplies engine/n_jobs defaults and, when it carries an
    artifact store and ``rng`` is an integer seed, caches the corpus
    under the ``"walks"`` stage so warm reruns skip the generation.
    """
    if num_walks < 1 or walk_length < 1:
        raise ValueError("num_walks and walk_length must be >= 1")
    if n_jobs is not None and n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    ctx = RunContext.ensure(ctx, engine=engine, n_jobs=n_jobs)
    engine = ctx.resolve_engine(ENGINES, default="fast", param="walk engine")
    n_jobs = ctx.resolved_n_jobs(default=1)
    store = ctx.store
    config = None
    if store is not None:
        config = _corpus_key(
            "uniform", num_walks, walk_length, 1.0, 1.0, rng, nodes, engine
        )
        if config is not None:
            cached = store.get(graph.fingerprint(), STAGE_WALKS, config)
            if cached is not None:
                return cached
    starts = (
        np.arange(graph.num_nodes, dtype=np.int64)
        if nodes is None
        else np.asarray(nodes, dtype=np.int64)
    )
    rngs = _epoch_rngs(rng, num_walks)
    corpus = _run_walks(graph, starts, walk_length, 1.0, 1.0, engine, rngs, n_jobs)
    if config is not None:
        store.put(graph.fingerprint(), STAGE_WALKS, config, corpus)
    return corpus


def node2vec_walks(
    graph: HeteroGraph,
    num_walks: int = 10,
    walk_length: int = 80,
    p: float = 1.0,
    q: float = 1.0,
    rng: np.random.Generator | int | None = None,
    nodes=None,
    engine: WalkEngine | None = None,
    n_jobs: int | None = None,
    *,
    ctx: RunContext | None = None,
) -> np.ndarray:
    """Second-order biased walks with return parameter ``p`` and in-out ``q``.

    Transition weights from ``prev -> current -> next``:

    * ``1/p`` when ``next == prev`` (return),
    * ``1``  when ``next`` is adjacent to ``prev`` (stay close),
    * ``1/q`` otherwise (move outward).

    ``p = q = 1`` short-circuits to :func:`uniform_random_walks` (same
    stream, same matrix).  Output layout, ``engine``, and ``n_jobs`` match
    :func:`uniform_random_walks`.
    """
    if p <= 0 or q <= 0:
        raise ValueError("p and q must be positive")
    if p == 1.0 and q == 1.0:
        return uniform_random_walks(
            graph,
            num_walks,
            walk_length,
            rng,
            nodes,
            engine=engine,
            n_jobs=n_jobs,
            ctx=ctx,
        )
    if num_walks < 1 or walk_length < 1:
        raise ValueError("num_walks and walk_length must be >= 1")
    if n_jobs is not None and n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    ctx = RunContext.ensure(ctx, engine=engine, n_jobs=n_jobs)
    engine = ctx.resolve_engine(ENGINES, default="fast", param="walk engine")
    n_jobs = ctx.resolved_n_jobs(default=1)
    store = ctx.store
    config = None
    if store is not None:
        config = _corpus_key(
            "node2vec", num_walks, walk_length, p, q, rng, nodes, engine
        )
        if config is not None:
            cached = store.get(graph.fingerprint(), STAGE_WALKS, config)
            if cached is not None:
                return cached
    starts = (
        np.arange(graph.num_nodes, dtype=np.int64)
        if nodes is None
        else np.asarray(nodes, dtype=np.int64)
    )
    rngs = _epoch_rngs(rng, num_walks)
    corpus = _run_walks(graph, starts, walk_length, p, q, engine, rngs, n_jobs)
    if config is not None:
        store.put(graph.fingerprint(), STAGE_WALKS, config, corpus)
    return corpus


def walk_lengths(walks: np.ndarray) -> np.ndarray:
    """Actual (un-padded) length of each walk row of a corpus matrix."""
    return (np.asarray(walks) >= 0).sum(axis=1)


def walk_node_frequencies(walks, num_nodes: int) -> np.ndarray:
    """Node occurrence counts across a walk corpus (negative-sampling base).

    Accepts the padded corpus matrix (``-1`` entries are ignored, no row
    copies are made) or a legacy list of per-walk index arrays.
    """
    if isinstance(walks, np.ndarray):
        # Shift by one so the -1 pad lands in bin 0, then drop that bin.
        counts = np.bincount(walks.ravel() + 1, minlength=num_nodes + 1)
        return counts[1: num_nodes + 1].astype(np.float64)
    counts = np.zeros(num_nodes, dtype=np.float64)
    for walk in walks:
        np.add.at(counts, walk, 1.0)
    return counts
