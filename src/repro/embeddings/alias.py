"""Alias method for O(1) sampling from discrete distributions.

LINE's edge sampling and the negative-sampling distribution of the skip-gram
trainer both draw millions of samples from fixed discrete distributions;
the alias method (Walker 1977) gives constant-time draws after linear setup.
"""

from __future__ import annotations

import numpy as np


class AliasTable:
    """Preprocessed discrete distribution supporting O(1) draws.

    Parameters
    ----------
    weights:
        Non-negative, not-all-zero weights; normalised internally.
    """

    __slots__ = ("_probability", "_alias", "_uniform", "size")

    def __init__(self, weights) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must not sum to zero")
        self.size = weights.size
        # A uniform table (LINE's unweighted edge table) needs no coin flip
        # or alias lookup at all — sampling degenerates to one integers()
        # call, halving the rng draws on that hot path.
        self._uniform = bool(np.all(weights == weights[0]))
        scaled = weights * (self.size / total)
        probability = np.zeros(self.size)
        alias = np.zeros(self.size, dtype=np.int64)
        small = [i for i, w in enumerate(scaled) if w < 1.0]
        large = [i for i, w in enumerate(scaled) if w >= 1.0]
        scaled = scaled.copy()
        while small and large:
            s = small.pop()
            l = large.pop()
            probability[s] = scaled[s]
            alias[s] = l
            scaled[l] = scaled[l] - (1.0 - scaled[s])
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        for remaining in large + small:
            probability[remaining] = 1.0
        self._probability = probability
        self._alias = alias

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray:
        """Draw ``size`` indices (or a scalar when ``size`` is ``None``)."""
        n = 1 if size is None else size
        columns = rng.integers(0, self.size, size=n)
        if self._uniform:
            picks = columns
        else:
            coins = rng.random(n)
            picks = np.where(coins < self._probability[columns], columns, self._alias[columns])
        if size is None:
            return int(picks[0])
        return picks
