"""DeepWalk baseline (Perozzi et al. 2014).

Truncated uniform random walks fed to the skip-gram trainer.  Paper
defaults: dimension ``d = 128``, walks per node ``r = 10``, walk length
``l = 80``, context size ``k = 10``, ``K = 5`` negative samples.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import HeteroGraph
from repro.embeddings.skipgram import SkipGramTrainer
from repro.embeddings.walks import ENGINES, WalkEngine, uniform_random_walks
from repro.runtime.context import RunContext


class DeepWalk:
    """DeepWalk node embeddings.

    Parameters mirror the paper's defaults (Section 4.2.2); ``epochs`` and
    ``batch_size`` belong to the SGNS optimiser, not the original method.
    ``engine`` selects the fast or reference walk + trainer pipeline and
    ``n_jobs`` shards walk epochs over worker processes (results are
    identical for any worker count).  ``ctx`` supplies engine/n_jobs
    defaults and the artifact store for walk-corpus caching.
    """

    def __init__(
        self,
        dim: int = 128,
        num_walks: int = 10,
        walk_length: int = 80,
        window: int = 10,
        negative: int = 5,
        epochs: int = 1,
        seed: int | None = None,
        engine: WalkEngine | None = None,
        n_jobs: int | None = None,
        ctx: RunContext | None = None,
    ) -> None:
        ctx = RunContext.ensure(ctx, engine=engine, n_jobs=n_jobs)
        self.dim = dim
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.window = window
        self.negative = negative
        self.epochs = epochs
        self.seed = seed
        self.engine = ctx.resolve_engine(ENGINES, default="fast")
        self.n_jobs = ctx.resolved_n_jobs(default=1)
        self.ctx = ctx
        self.embedding_: np.ndarray | None = None

    def fit(self, graph: HeteroGraph) -> "DeepWalk":
        """Learn embeddings for every node of ``graph``."""
        # An int seed (rather than a pre-built Generator) keeps the walk
        # corpus content-addressable; _epoch_rngs spawns the identical
        # child streams either way.
        rng = self.seed if self.seed is not None else np.random.default_rng()
        walks = uniform_random_walks(
            graph,
            self.num_walks,
            self.walk_length,
            rng=rng,
            engine=self.engine,
            n_jobs=self.n_jobs,
            ctx=self.ctx,
        )
        trainer = SkipGramTrainer(
            dim=self.dim,
            window=self.window,
            negative=self.negative,
            epochs=self.epochs,
            seed=None if self.seed is None else self.seed + 1,
            engine=self.engine,
        )
        self.embedding_ = trainer.fit(walks, graph.num_nodes)
        return self

    def transform(self, nodes) -> np.ndarray:
        """Embedding rows for the given node indices."""
        if self.embedding_ is None:
            raise RuntimeError("call fit() before transform()")
        return self.embedding_[np.asarray(nodes, dtype=np.int64)]

    def fit_transform(self, graph: HeteroGraph, nodes) -> np.ndarray:
        return self.fit(graph).transform(nodes)
