"""Skip-gram with negative sampling (SGNS) over random-walk corpora.

DeepWalk and node2vec both reduce node embedding to word2vec on walk
"sentences" (Mikolov et al. 2013).  This trainer implements the SGNS
objective with:

* (centre, context) pairs from a symmetric window of size ``window``
  (context size ``k = 10`` in the paper's defaults),
* ``K`` negative samples per pair drawn from the unigram^(3/4) node
  distribution of the corpus,
* mini-batched vectorised SGD with a linearly decaying learning rate.

DeepWalk's original hierarchical softmax is replaced by negative sampling,
the standard practical choice (gensim does the same by default); this does
not change the baseline's character as a label-blind structural embedding.

Engines
-------
``engine="reference"`` is the exact per-pair formulation: every pair draws
its own ``K`` negatives and gradients scatter through ``np.add.at``.
``engine="fast"`` (default) shares one pool of negatives across the whole
mini-batch — the formulation of TensorFlow's word2vec — which turns the
negative pass into two small GEMMs and shrinks the scatter from
``batch * K`` rows to ``pool`` rows.  The pool is larger than ``K`` and the
negative gradient is rescaled by ``K / pool``, so the expected gradient
matches the per-pair objective with lower per-sample variance.  One noise
:class:`AliasTable` is built per fit and reused across all epochs.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.embeddings.alias import AliasTable
from repro.embeddings.walks import walk_node_frequencies
from repro.obs.telemetry import get_telemetry
from repro.runtime.context import RunContext, resolve_engine

#: Valid SGNS engine names (checked through the shared runtime validator).
ENGINES = ("fast", "reference")

TrainerEngine = Literal["fast", "reference"]

#: Elementwise gradient bound, far above any healthy gradient magnitude.
#: It turns the geometric blow-up that occurs when a batch piles many
#: stale-value updates on the same row (tiny graphs with large batches,
#: overflowing float32) into bounded linear growth, without touching
#: normal training dynamics.
_GRAD_CLIP = 1000.0


def _pairs_from_matrix(
    walks: np.ndarray, window: int, rng: np.random.Generator
) -> np.ndarray:
    """Vectorised pair extraction from a padded corpus matrix.

    Streams every offset's pairs straight into one preallocated
    ``(total, 2)`` buffer — no per-walk Python loop, no list appends.
    """
    num_walks, length = walks.shape
    if num_walks == 0 or length < 2:
        return np.empty((0, 2), dtype=np.int64)
    valid = walks >= 0
    # word2vec samples an effective window in 1..window per centre, which
    # downweights distant contexts; one draw covers every position.
    effective = rng.integers(1, window + 1, size=(num_walks, length))
    masks: list[tuple[int, np.ndarray, np.ndarray]] = []
    total = 0
    for offset in range(1, min(window, length - 1) + 1):
        both = valid[:, offset:]  # pads are suffix-only: left end valid too
        forward = both & (effective[:, : length - offset] >= offset)
        backward = both & (effective[:, offset:] >= offset)
        masks.append((offset, forward, backward))
        total += int(forward.sum()) + int(backward.sum())
    pairs = np.empty((total, 2), dtype=np.int64)
    cursor = 0
    for offset, forward, backward in masks:
        left = walks[:, : length - offset]
        right = walks[:, offset:]
        n = int(forward.sum())
        pairs[cursor: cursor + n, 0] = left[forward]
        pairs[cursor: cursor + n, 1] = right[forward]
        cursor += n
        n = int(backward.sum())
        pairs[cursor: cursor + n, 0] = right[backward]
        pairs[cursor: cursor + n, 1] = left[backward]
        cursor += n
    return pairs


def _pairs_per_walk(walks, window: int, rng: np.random.Generator) -> np.ndarray:
    """The original per-walk extraction loop (reference engine)."""
    centres: list[np.ndarray] = []
    contexts: list[np.ndarray] = []
    for walk in walks:
        walk = walk[walk >= 0] if isinstance(walk, np.ndarray) else walk
        length = walk.shape[0]
        if length < 2:
            continue
        effective = rng.integers(1, window + 1, size=length)
        for offset in range(1, window + 1):
            # Pairs (i, i + offset) in both directions where offset allowed.
            valid = np.arange(0, length - offset)
            keep_forward = valid[effective[valid] >= offset]
            if keep_forward.size:
                centres.append(walk[keep_forward])
                contexts.append(walk[keep_forward + offset])
            keep_backward = valid[effective[valid + offset] >= offset]
            if keep_backward.size:
                centres.append(walk[keep_backward + offset])
                contexts.append(walk[keep_backward])
    if not centres:
        return np.empty((0, 2), dtype=np.int64)
    return np.column_stack([np.concatenate(centres), np.concatenate(contexts)])


def walks_to_pairs(
    walks,
    window: int,
    rng: np.random.Generator,
    engine: TrainerEngine = "fast",
) -> np.ndarray:
    """Extract (centre, context) pairs with per-position window shrinking.

    Accepts the padded corpus matrix of
    :func:`~repro.embeddings.walks.uniform_random_walks` (consumed without
    row copies) or a legacy list of per-walk arrays.  Returns an
    ``(num_pairs, 2)`` integer array.  On full-length corpora the two
    engines consume the rng identically, so their pair multisets coincide.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    resolve_engine(engine, ENGINES, param="pairs engine")
    if engine == "fast" and isinstance(walks, np.ndarray) and walks.ndim == 2:
        return _pairs_from_matrix(walks, window, rng)
    return _pairs_per_walk(walks, window, rng)


class SkipGramTrainer:
    """SGNS trainer producing node embeddings from a walk corpus.

    Parameters
    ----------
    dim:
        Embedding dimension (paper default 128).
    window:
        Context window ``k`` (paper default 10).
    negative:
        Negative samples per pair ``K`` (paper default 5).
    epochs:
        Passes over the pair set.
    learning_rate:
        Initial SGD step, decayed linearly to 1e-4 of itself.
    batch_size:
        Pairs per vectorised update.
    engine:
        ``"fast"`` (default) shares a rescaled negative pool per batch;
        ``"reference"`` draws ``K`` negatives per pair (the exact original
        formulation).
    """

    def __init__(
        self,
        dim: int = 128,
        window: int = 10,
        negative: int = 5,
        epochs: int = 1,
        learning_rate: float = 0.025,
        batch_size: int = 2048,
        seed: int | None = None,
        engine: TrainerEngine | None = None,
        ctx: RunContext | None = None,
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if negative < 1:
            raise ValueError(f"negative must be >= 1, got {negative}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        ctx = RunContext.ensure(ctx, engine=engine)
        engine = ctx.resolve_engine(ENGINES, default="fast", param="trainer engine")
        self.dim = dim
        self.window = window
        self.negative = negative
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.seed = seed
        self.engine = engine

    def fit(self, walks, num_nodes: int) -> np.ndarray:
        """Train and return the input-embedding matrix ``(num_nodes, dim)``."""
        telemetry = get_telemetry()
        rng = np.random.default_rng(self.seed)
        with telemetry.span("sgns/pairs_extract"):
            pairs = walks_to_pairs(walks, self.window, rng, engine=self.engine)
        telemetry.count("sgns/pairs", pairs.shape[0])
        if pairs.shape[0] == 0:
            raise ValueError("walk corpus produced no training pairs")
        frequencies = walk_node_frequencies(walks, num_nodes)
        # Built once, reused by every batch of every epoch.
        noise = AliasTable(np.maximum(frequencies, 1e-12) ** 0.75)

        scale = 0.5 / self.dim
        input_vectors = rng.uniform(-scale, scale, size=(num_nodes, self.dim))
        output_vectors = np.zeros((num_nodes, self.dim))
        if self.engine == "fast":
            # Single precision halves the GEMM and scatter bandwidth; SGNS
            # tolerates it (word2vec itself trains in float32).  The init is
            # drawn in float64 first so it matches the reference stream.
            input_vectors = input_vectors.astype(np.float32)
            output_vectors = output_vectors.astype(np.float32)

        step_fn = (
            self._sgd_step_shared if self.engine == "fast" else self._sgd_step
        )
        total_steps = self.epochs * ((pairs.shape[0] + self.batch_size - 1) // self.batch_size)
        step = 0
        for _ in range(self.epochs):
            with telemetry.span("sgns/epoch"):
                order = rng.permutation(pairs.shape[0])
                for start in range(0, pairs.shape[0], self.batch_size):
                    batch = pairs[order[start: start + self.batch_size]]
                    lr = self.learning_rate * max(
                        1.0 - step / max(total_steps, 1), 1e-4
                    )
                    step_fn(batch, input_vectors, output_vectors, noise, rng, lr)
                    step += 1
            telemetry.count("sgns/pairs_trained", pairs.shape[0])
        return input_vectors.astype(np.float64, copy=False)

    def _sgd_step(
        self,
        batch: np.ndarray,
        input_vectors: np.ndarray,
        output_vectors: np.ndarray,
        noise: AliasTable,
        rng: np.random.Generator,
        lr: float,
    ) -> None:
        centres = batch[:, 0]
        positives = batch[:, 1]
        b = centres.shape[0]
        negatives = noise.sample(rng, b * self.negative).reshape(b, self.negative)

        centre_vecs = input_vectors[centres]  # (b, d)
        # Positive pass: label 1.
        pos_vecs = output_vectors[positives]
        pos_scores = 1.0 / (1.0 + np.exp(-np.clip(np.sum(centre_vecs * pos_vecs, axis=1), -30, 30)))
        pos_coeff = (pos_scores - 1.0)[:, None]  # gradient factor
        grad_centre = pos_coeff * pos_vecs
        grad_pos = pos_coeff * centre_vecs
        # Negative pass: label 0.
        neg_vecs = output_vectors[negatives]  # (b, K, d)
        neg_scores = 1.0 / (
            1.0 + np.exp(-np.clip(np.einsum("bd,bkd->bk", centre_vecs, neg_vecs), -30, 30))
        )
        neg_coeff = neg_scores[:, :, None]
        grad_centre += np.sum(neg_coeff * neg_vecs, axis=1)
        grad_neg = neg_coeff * centre_vecs[:, None, :]

        np.clip(grad_centre, -_GRAD_CLIP, _GRAD_CLIP, out=grad_centre)
        np.clip(grad_pos, -_GRAD_CLIP, _GRAD_CLIP, out=grad_pos)
        np.clip(grad_neg, -_GRAD_CLIP, _GRAD_CLIP, out=grad_neg)
        np.add.at(input_vectors, centres, -lr * grad_centre)
        np.add.at(output_vectors, positives, -lr * grad_pos)
        np.add.at(
            output_vectors,
            negatives.ravel(),
            -lr * grad_neg.reshape(-1, self.dim),
        )

    def _negative_pool_size(self, noise: AliasTable) -> int:
        # Enough shared samples to keep the pool diverse even for small K,
        # but never more than the support of the noise distribution.
        return min(max(8 * self.negative, 64), noise.size)

    def _sgd_step_shared(
        self,
        batch: np.ndarray,
        input_vectors: np.ndarray,
        output_vectors: np.ndarray,
        noise: AliasTable,
        rng: np.random.Generator,
        lr: float,
    ) -> None:
        centres = batch[:, 0]
        positives = batch[:, 1]
        pool = self._negative_pool_size(noise)
        negatives = noise.sample(rng, pool)

        centre_vecs = input_vectors[centres]  # (b, d)
        pos_vecs = output_vectors[positives]
        pos_scores = 1.0 / (1.0 + np.exp(-np.clip(np.sum(centre_vecs * pos_vecs, axis=1), -30, 30)))
        pos_coeff = (pos_scores - 1.0)[:, None]
        grad_centre = pos_coeff * pos_vecs
        grad_pos = pos_coeff * centre_vecs

        # Shared negative pass: score every pair against one pool via GEMM,
        # rescaled so the expected gradient equals K negatives per pair.
        neg_vecs = output_vectors[negatives]  # (pool, d)
        neg_scores = 1.0 / (
            1.0 + np.exp(-np.clip(centre_vecs @ neg_vecs.T, -30, 30))
        )  # (b, pool)
        rescale = self.negative / pool
        grad_centre += rescale * (neg_scores @ neg_vecs)
        grad_negs = rescale * (neg_scores.T @ centre_vecs)  # (pool, d)

        np.clip(grad_centre, -_GRAD_CLIP, _GRAD_CLIP, out=grad_centre)
        np.clip(grad_pos, -_GRAD_CLIP, _GRAD_CLIP, out=grad_pos)
        np.clip(grad_negs, -_GRAD_CLIP, _GRAD_CLIP, out=grad_negs)
        np.add.at(input_vectors, centres, -lr * grad_centre)
        np.add.at(output_vectors, positives, -lr * grad_pos)
        np.add.at(output_vectors, negatives, -lr * grad_negs)
