"""Skip-gram with negative sampling (SGNS) over random-walk corpora.

DeepWalk and node2vec both reduce node embedding to word2vec on walk
"sentences" (Mikolov et al. 2013).  This trainer implements the SGNS
objective with:

* (centre, context) pairs from a symmetric window of size ``window``
  (context size ``k = 10`` in the paper's defaults),
* ``K`` negative samples per pair drawn from the unigram^(3/4) node
  distribution of the corpus,
* mini-batched vectorised SGD with a linearly decaying learning rate —
  gradient scatter via ``np.add.at`` keeps the hot loop inside numpy.

DeepWalk's original hierarchical softmax is replaced by negative sampling,
the standard practical choice (gensim does the same by default); this does
not change the baseline's character as a label-blind structural embedding.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.alias import AliasTable
from repro.embeddings.walks import walk_node_frequencies


def walks_to_pairs(walks, window: int, rng: np.random.Generator) -> np.ndarray:
    """Extract (centre, context) pairs with per-position window shrinking.

    word2vec samples an effective window in ``1..window`` uniformly per
    centre, which downweights distant contexts; we reproduce that.
    Returns an ``(num_pairs, 2)`` integer array.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    centres: list[np.ndarray] = []
    contexts: list[np.ndarray] = []
    for walk in walks:
        length = walk.shape[0]
        if length < 2:
            continue
        effective = rng.integers(1, window + 1, size=length)
        for offset in range(1, window + 1):
            # Pairs (i, i + offset) in both directions where offset allowed.
            valid = np.arange(0, length - offset)
            keep_forward = valid[effective[valid] >= offset]
            if keep_forward.size:
                centres.append(walk[keep_forward])
                contexts.append(walk[keep_forward + offset])
            keep_backward = valid[effective[valid + offset] >= offset]
            if keep_backward.size:
                centres.append(walk[keep_backward + offset])
                contexts.append(walk[keep_backward])
    if not centres:
        return np.empty((0, 2), dtype=np.int64)
    return np.column_stack([np.concatenate(centres), np.concatenate(contexts)])


class SkipGramTrainer:
    """SGNS trainer producing node embeddings from a walk corpus.

    Parameters
    ----------
    dim:
        Embedding dimension (paper default 128).
    window:
        Context window ``k`` (paper default 10).
    negative:
        Negative samples per pair ``K`` (paper default 5).
    epochs:
        Passes over the pair set.
    learning_rate:
        Initial SGD step, decayed linearly to 1e-4 of itself.
    batch_size:
        Pairs per vectorised update.
    """

    def __init__(
        self,
        dim: int = 128,
        window: int = 10,
        negative: int = 5,
        epochs: int = 1,
        learning_rate: float = 0.025,
        batch_size: int = 2048,
        seed: int | None = None,
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if negative < 1:
            raise ValueError(f"negative must be >= 1, got {negative}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.dim = dim
        self.window = window
        self.negative = negative
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.seed = seed

    def fit(self, walks, num_nodes: int) -> np.ndarray:
        """Train and return the input-embedding matrix ``(num_nodes, dim)``."""
        rng = np.random.default_rng(self.seed)
        pairs = walks_to_pairs(walks, self.window, rng)
        if pairs.shape[0] == 0:
            raise ValueError("walk corpus produced no training pairs")
        frequencies = walk_node_frequencies(walks, num_nodes)
        noise = AliasTable(np.maximum(frequencies, 1e-12) ** 0.75)

        scale = 0.5 / self.dim
        input_vectors = rng.uniform(-scale, scale, size=(num_nodes, self.dim))
        output_vectors = np.zeros((num_nodes, self.dim))

        total_steps = self.epochs * ((pairs.shape[0] + self.batch_size - 1) // self.batch_size)
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(pairs.shape[0])
            for start in range(0, pairs.shape[0], self.batch_size):
                batch = pairs[order[start: start + self.batch_size]]
                lr = self.learning_rate * max(
                    1.0 - step / max(total_steps, 1), 1e-4
                )
                self._sgd_step(batch, input_vectors, output_vectors, noise, rng, lr)
                step += 1
        return input_vectors

    def _sgd_step(
        self,
        batch: np.ndarray,
        input_vectors: np.ndarray,
        output_vectors: np.ndarray,
        noise: AliasTable,
        rng: np.random.Generator,
        lr: float,
    ) -> None:
        centres = batch[:, 0]
        positives = batch[:, 1]
        b = centres.shape[0]
        negatives = noise.sample(rng, b * self.negative).reshape(b, self.negative)

        centre_vecs = input_vectors[centres]  # (b, d)
        # Positive pass: label 1.
        pos_vecs = output_vectors[positives]
        pos_scores = 1.0 / (1.0 + np.exp(-np.clip(np.sum(centre_vecs * pos_vecs, axis=1), -30, 30)))
        pos_coeff = (pos_scores - 1.0)[:, None]  # gradient factor
        grad_centre = pos_coeff * pos_vecs
        grad_pos = pos_coeff * centre_vecs
        # Negative pass: label 0.
        neg_vecs = output_vectors[negatives]  # (b, K, d)
        neg_scores = 1.0 / (
            1.0 + np.exp(-np.clip(np.einsum("bd,bkd->bk", centre_vecs, neg_vecs), -30, 30))
        )
        neg_coeff = neg_scores[:, :, None]
        grad_centre += np.sum(neg_coeff * neg_vecs, axis=1)
        grad_neg = neg_coeff * centre_vecs[:, None, :]

        np.add.at(input_vectors, centres, -lr * grad_centre)
        np.add.at(output_vectors, positives, -lr * grad_pos)
        np.add.at(
            output_vectors,
            negatives.ravel(),
            -lr * grad_neg.reshape(-1, self.dim),
        )
