"""Neural node-embedding baselines: DeepWalk, node2vec, and LINE.

All three are implemented from scratch on numpy (random-walk corpora,
skip-gram with negative sampling, edge-sampled LINE) with the default
parameters the paper evaluates: ``d=128, r=10, l=80, k=10, p=q=1, K=5``.
"""

from repro.embeddings.alias import AliasTable
from repro.embeddings.deepwalk import DeepWalk
from repro.embeddings.line import LINE
from repro.embeddings.node2vec import Node2Vec
from repro.embeddings.skipgram import SkipGramTrainer, walks_to_pairs
from repro.embeddings.walks import (
    WalkEngine,
    node2vec_walks,
    uniform_random_walks,
    walk_lengths,
    walk_node_frequencies,
)

__all__ = [
    "AliasTable",
    "DeepWalk",
    "LINE",
    "Node2Vec",
    "SkipGramTrainer",
    "WalkEngine",
    "node2vec_walks",
    "uniform_random_walks",
    "walk_lengths",
    "walk_node_frequencies",
    "walks_to_pairs",
]
