"""node2vec baseline (Grover & Leskovec 2016).

Second-order biased random walks (return parameter ``p``, in-out parameter
``q``) fed to the skip-gram trainer.  With the paper's default ``p = q = 1``
the walks are uniform, so node2vec and DeepWalk differ here only in their
random streams — exactly the regime of Section 4.2.2.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import HeteroGraph
from repro.embeddings.skipgram import SkipGramTrainer
from repro.embeddings.walks import ENGINES, WalkEngine, node2vec_walks
from repro.runtime.context import RunContext


class Node2Vec:
    """node2vec node embeddings with paper-default parameters.

    ``engine`` selects the fast or reference walk + trainer pipeline and
    ``n_jobs`` shards walk epochs over worker processes (results are
    identical for any worker count).  ``ctx`` supplies engine/n_jobs
    defaults and the artifact store for walk-corpus caching.
    """

    def __init__(
        self,
        dim: int = 128,
        num_walks: int = 10,
        walk_length: int = 80,
        window: int = 10,
        negative: int = 5,
        p: float = 1.0,
        q: float = 1.0,
        epochs: int = 1,
        seed: int | None = None,
        engine: WalkEngine | None = None,
        n_jobs: int | None = None,
        ctx: RunContext | None = None,
    ) -> None:
        ctx = RunContext.ensure(ctx, engine=engine, n_jobs=n_jobs)
        self.dim = dim
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.window = window
        self.negative = negative
        self.p = p
        self.q = q
        self.epochs = epochs
        self.seed = seed
        self.engine = ctx.resolve_engine(ENGINES, default="fast")
        self.n_jobs = ctx.resolved_n_jobs(default=1)
        self.ctx = ctx
        self.embedding_: np.ndarray | None = None

    def fit(self, graph: HeteroGraph) -> "Node2Vec":
        """Learn embeddings for every node of ``graph``."""
        # An int seed keeps the corpus content-addressable (see DeepWalk).
        rng = self.seed if self.seed is not None else np.random.default_rng()
        walks = node2vec_walks(
            graph,
            self.num_walks,
            self.walk_length,
            p=self.p,
            q=self.q,
            rng=rng,
            engine=self.engine,
            n_jobs=self.n_jobs,
            ctx=self.ctx,
        )
        trainer = SkipGramTrainer(
            dim=self.dim,
            window=self.window,
            negative=self.negative,
            epochs=self.epochs,
            seed=None if self.seed is None else self.seed + 1,
            engine=self.engine,
        )
        self.embedding_ = trainer.fit(walks, graph.num_nodes)
        return self

    def transform(self, nodes) -> np.ndarray:
        """Embedding rows for the given node indices."""
        if self.embedding_ is None:
            raise RuntimeError("call fit() before transform()")
        return self.embedding_[np.asarray(nodes, dtype=np.int64)]

    def fit_transform(self, graph: HeteroGraph, nodes) -> np.ndarray:
        return self.fit(graph).transform(nodes)
