"""LINE baseline (Tang et al. 2015).

LINE optimises two objectives by edge sampling with negative sampling:

* *first-order proximity*: directly connected nodes should have similar
  embeddings — ``sigma(u . v)`` maximised over observed edges;
* *second-order proximity*: nodes with similar neighbourhoods should be
  similar — each node gets an additional *context* vector and the model
  maximises ``sigma(u . c_v)`` for edges ``(u, v)``.

The final representation concatenates the two halves (``dim/2`` each), the
combination the original paper and Section 4.2.2 use.  Edges are drawn from
an alias table over edge weights (uniform here: the evaluation networks are
unweighted), negatives from the degree^(3/4) distribution.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import HeteroGraph
from repro.embeddings.alias import AliasTable


class LINE:
    """LINE embeddings with concatenated first- and second-order halves.

    Parameters
    ----------
    dim:
        Total dimension; each order gets ``dim // 2``.
    num_samples:
        Edge samples per order; ``None`` scales with the graph
        (``200 * num_edges``), bounded below by one batch.
    negative:
        Negative samples per edge (paper default ``K = 5``).
    learning_rate:
        Initial SGD step with linear decay.
    """

    def __init__(
        self,
        dim: int = 128,
        num_samples: int | None = None,
        negative: int = 5,
        learning_rate: float = 0.025,
        batch_size: int = 1024,
        seed: int | None = None,
    ) -> None:
        if dim < 2:
            raise ValueError(f"dim must be >= 2, got {dim}")
        self.dim = dim
        self.num_samples = num_samples
        self.negative = negative
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.seed = seed
        self.embedding_: np.ndarray | None = None

    def fit(self, graph: HeteroGraph) -> "LINE":
        """Learn embeddings for every node of ``graph``."""
        rng = np.random.default_rng(self.seed)
        edges = np.asarray(list(graph.edges()), dtype=np.int64)
        if edges.shape[0] == 0:
            raise ValueError("LINE needs at least one edge")
        # Undirected edges are used in both directions.
        directed = np.vstack([edges, edges[:, ::-1]])
        edge_table = AliasTable(np.ones(directed.shape[0]))
        degrees = graph.degrees().astype(np.float64)
        noise = AliasTable(np.maximum(degrees, 1e-12) ** 0.75)

        half = self.dim // 2
        samples = self.num_samples
        if samples is None:
            samples = max(200 * graph.num_edges, self.batch_size)

        first = self._train_order(
            directed, edge_table, noise, graph.num_nodes, half, samples, rng,
            second_order=False,
        )
        second = self._train_order(
            directed, edge_table, noise, graph.num_nodes, self.dim - half, samples, rng,
            second_order=True,
        )
        self.embedding_ = np.hstack([first, second])
        return self

    def _train_order(
        self,
        directed: np.ndarray,
        edge_table: AliasTable,
        noise: AliasTable,
        num_nodes: int,
        dim: int,
        samples: int,
        rng: np.random.Generator,
        second_order: bool,
    ) -> np.ndarray:
        scale = 0.5 / dim
        vertex = rng.uniform(-scale, scale, size=(num_nodes, dim))
        context = np.zeros((num_nodes, dim)) if second_order else vertex

        steps = max(1, samples // self.batch_size)
        for step in range(steps):
            lr = self.learning_rate * max(1.0 - step / steps, 1e-4)
            batch_edges = directed[edge_table.sample(rng, self.batch_size)]
            sources = batch_edges[:, 0]
            targets = batch_edges[:, 1]
            negatives = noise.sample(rng, self.batch_size * self.negative).reshape(
                self.batch_size, self.negative
            )

            source_vecs = vertex[sources]
            target_vecs = context[targets]
            pos_scores = 1.0 / (
                1.0 + np.exp(-np.clip(np.sum(source_vecs * target_vecs, axis=1), -30, 30))
            )
            pos_coeff = (pos_scores - 1.0)[:, None]
            grad_source = pos_coeff * target_vecs
            grad_target = pos_coeff * source_vecs

            neg_vecs = context[negatives]
            neg_scores = 1.0 / (
                1.0
                + np.exp(
                    -np.clip(np.einsum("bd,bkd->bk", source_vecs, neg_vecs), -30, 30)
                )
            )
            neg_coeff = neg_scores[:, :, None]
            grad_source += np.sum(neg_coeff * neg_vecs, axis=1)
            grad_negative = neg_coeff * source_vecs[:, None, :]

            np.add.at(vertex, sources, -lr * grad_source)
            np.add.at(context, targets, -lr * grad_target)
            np.add.at(context, negatives.ravel(), -lr * grad_negative.reshape(-1, dim))
        return vertex

    def transform(self, nodes) -> np.ndarray:
        """Embedding rows for the given node indices."""
        if self.embedding_ is None:
            raise RuntimeError("call fit() before transform()")
        return self.embedding_[np.asarray(nodes, dtype=np.int64)]

    def fit_transform(self, graph: HeteroGraph, nodes) -> np.ndarray:
        return self.fit(graph).transform(nodes)
