"""LINE baseline (Tang et al. 2015).

LINE optimises two objectives by edge sampling with negative sampling:

* *first-order proximity*: directly connected nodes should have similar
  embeddings — ``sigma(u . v)`` maximised over observed edges;
* *second-order proximity*: nodes with similar neighbourhoods should be
  similar — each node gets an additional *context* vector and the model
  maximises ``sigma(u . c_v)`` for edges ``(u, v)``.

The final representation concatenates the two halves (``dim/2`` each), the
combination the original paper and Section 4.2.2 use.  Edges are drawn from
an alias table over edge weights (uniform here: the evaluation networks are
unweighted), negatives from the degree^(3/4) distribution.

The two orders are trained on independent child generators spawned from the
seed, so they can run sequentially (``n_jobs=1``) or as two worker
processes (``n_jobs >= 2``) with bit-identical results.  Both alias tables
are built once in :meth:`LINE.fit` and shared by every batch of both
orders (workers receive them pickled rather than rebuilding).
``engine="fast"`` shares a rescaled negative pool per batch exactly like
:class:`~repro.embeddings.skipgram.SkipGramTrainer`; ``engine="reference"``
keeps the per-edge formulation.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Literal

import numpy as np

from repro.core.graph import HeteroGraph
from repro.embeddings.alias import AliasTable
from repro.obs.telemetry import Telemetry, get_telemetry
from repro.runtime.context import RunContext

#: Valid LINE engine names (checked through the shared runtime validator).
ENGINES = ("fast", "reference")

LineEngine = Literal["fast", "reference"]

#: Elementwise gradient bound, far above any healthy gradient magnitude.
#: It turns the geometric blow-up that occurs when ``batch_size >>
#: num_nodes`` (many stale-value updates piling on the same row per step,
#: overflowing float32 and silently diverging float64) into bounded linear
#: growth, without touching normal training dynamics.
_GRAD_CLIP = 1000.0


def _spawn_children(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    try:
        return list(rng.spawn(n))
    except AttributeError:  # numpy < 1.25
        seeds = rng.integers(np.iinfo(np.int64).max, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]


def _train_order(
    directed: np.ndarray,
    edge_table: AliasTable,
    noise: AliasTable,
    num_nodes: int,
    dim: int,
    samples: int,
    rng: np.random.Generator,
    second_order: bool,
    negative: int,
    learning_rate: float,
    batch_size: int,
    engine: LineEngine,
) -> tuple[np.ndarray, dict]:
    """One LINE order, self-contained so a worker process can run it.

    Returns the trained vertex matrix plus a picklable telemetry
    snapshot (per-order timing and sample counts), recorded locally so
    the stats survive the trip back from a worker process.
    """
    telemetry = Telemetry()
    order_name = "second" if second_order else "first"
    scale = 0.5 / dim
    vertex = rng.uniform(-scale, scale, size=(num_nodes, dim))
    if engine == "fast":
        # Single precision halves the GEMM and scatter bandwidth; drawn in
        # float64 first so the init matches the reference stream.
        vertex = vertex.astype(np.float32)
    context = np.zeros((num_nodes, dim), dtype=vertex.dtype) if second_order else vertex
    pool = min(max(8 * negative, 64), noise.size)

    steps = max(1, samples // batch_size)
    started = time.perf_counter()
    for step in range(steps):
        lr = learning_rate * max(1.0 - step / steps, 1e-4)
        batch_edges = directed[edge_table.sample(rng, batch_size)]
        sources = batch_edges[:, 0]
        targets = batch_edges[:, 1]

        source_vecs = vertex[sources]
        target_vecs = context[targets]
        pos_scores = 1.0 / (
            1.0 + np.exp(-np.clip(np.sum(source_vecs * target_vecs, axis=1), -30, 30))
        )
        pos_coeff = (pos_scores - 1.0)[:, None]
        grad_source = pos_coeff * target_vecs
        grad_target = pos_coeff * source_vecs

        if engine == "fast":
            # Shared negative pool: two GEMMs and a pool-sized scatter in
            # place of a (batch * K)-row gather/scatter.
            negatives = noise.sample(rng, pool)
            neg_vecs = context[negatives]  # (pool, d)
            neg_scores = 1.0 / (
                1.0 + np.exp(-np.clip(source_vecs @ neg_vecs.T, -30, 30))
            )
            rescale = negative / pool
            grad_source += rescale * (neg_scores @ neg_vecs)
            grad_negative = rescale * (neg_scores.T @ source_vecs)
            np.clip(grad_source, -_GRAD_CLIP, _GRAD_CLIP, out=grad_source)
            np.clip(grad_target, -_GRAD_CLIP, _GRAD_CLIP, out=grad_target)
            np.clip(grad_negative, -_GRAD_CLIP, _GRAD_CLIP, out=grad_negative)
            np.add.at(vertex, sources, -lr * grad_source)
            np.add.at(context, targets, -lr * grad_target)
            np.add.at(context, negatives, -lr * grad_negative)
        else:
            negatives = noise.sample(rng, batch_size * negative).reshape(
                batch_size, negative
            )
            neg_vecs = context[negatives]
            neg_scores = 1.0 / (
                1.0
                + np.exp(
                    -np.clip(np.einsum("bd,bkd->bk", source_vecs, neg_vecs), -30, 30)
                )
            )
            neg_coeff = neg_scores[:, :, None]
            grad_source += np.sum(neg_coeff * neg_vecs, axis=1)
            grad_negative = neg_coeff * source_vecs[:, None, :]
            np.clip(grad_source, -_GRAD_CLIP, _GRAD_CLIP, out=grad_source)
            np.clip(grad_target, -_GRAD_CLIP, _GRAD_CLIP, out=grad_target)
            np.clip(grad_negative, -_GRAD_CLIP, _GRAD_CLIP, out=grad_negative)
            np.add.at(vertex, sources, -lr * grad_source)
            np.add.at(context, targets, -lr * grad_target)
            np.add.at(context, negatives.ravel(), -lr * grad_negative.reshape(-1, dim))
    telemetry.timer(f"line/order_{order_name}", time.perf_counter() - started)
    telemetry.count("line/samples", steps * batch_size)
    return vertex.astype(np.float64, copy=False), telemetry.snapshot()


def _order_worker(args) -> tuple[np.ndarray, dict]:
    return _train_order(*args)


class LINE:
    """LINE embeddings with concatenated first- and second-order halves.

    Parameters
    ----------
    dim:
        Total dimension; each order gets ``dim // 2``.
    num_samples:
        Edge samples per order; ``None`` scales with the graph
        (``200 * num_edges``), bounded below by one batch.
    negative:
        Negative samples per edge (paper default ``K = 5``).
    learning_rate:
        Initial SGD step with linear decay.
    engine:
        ``"fast"`` (default) uses the shared-negative-pool update;
        ``"reference"`` the exact per-edge formulation.
    n_jobs:
        ``>= 2`` trains the two orders in parallel worker processes; the
        result is identical to ``n_jobs=1`` because each order owns an
        independent child generator.
    """

    def __init__(
        self,
        dim: int = 128,
        num_samples: int | None = None,
        negative: int = 5,
        learning_rate: float = 0.025,
        batch_size: int = 1024,
        seed: int | None = None,
        engine: LineEngine | None = None,
        n_jobs: int | None = None,
        ctx: RunContext | None = None,
    ) -> None:
        if dim < 2:
            raise ValueError(f"dim must be >= 2, got {dim}")
        if n_jobs is not None and n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        ctx = RunContext.ensure(ctx, engine=engine, n_jobs=n_jobs)
        self.dim = dim
        self.num_samples = num_samples
        self.negative = negative
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.seed = seed
        self.engine = ctx.resolve_engine(ENGINES, default="fast", param="LINE engine")
        self.n_jobs = ctx.resolved_n_jobs(default=1)
        self.embedding_: np.ndarray | None = None

    def fit(self, graph: HeteroGraph) -> "LINE":
        """Learn embeddings for every node of ``graph``."""
        rng = np.random.default_rng(self.seed)
        edges = np.asarray(list(graph.edges()), dtype=np.int64)
        if edges.shape[0] == 0:
            raise ValueError("LINE needs at least one edge")
        # Undirected edges are used in both directions.
        directed = np.vstack([edges, edges[:, ::-1]])
        edge_table = AliasTable(np.ones(directed.shape[0]))
        degrees = graph.degrees().astype(np.float64)
        noise = AliasTable(np.maximum(degrees, 1e-12) ** 0.75)

        half = self.dim // 2
        samples = self.num_samples
        if samples is None:
            samples = max(200 * graph.num_edges, self.batch_size)

        first_rng, second_rng = _spawn_children(rng, 2)
        tasks = [
            (
                directed, edge_table, noise, graph.num_nodes, half, samples,
                first_rng, False, self.negative, self.learning_rate,
                self.batch_size, self.engine,
            ),
            (
                directed, edge_table, noise, graph.num_nodes, self.dim - half,
                samples, second_rng, True, self.negative, self.learning_rate,
                self.batch_size, self.engine,
            ),
        ]
        if self.n_jobs >= 2:
            with ProcessPoolExecutor(max_workers=2) as executor:
                (first, first_stats), (second, second_stats) = list(
                    executor.map(_order_worker, tasks)
                )
        else:
            first, first_stats = _train_order(*tasks[0])
            second, second_stats = _train_order(*tasks[1])
        # Orders record into local registries (they may run in worker
        # processes); merging here makes n_jobs transparent to telemetry.
        telemetry = get_telemetry()
        telemetry.merge(first_stats)
        telemetry.merge(second_stats)
        self.embedding_ = np.hstack([first, second])
        return self

    def transform(self, nodes) -> np.ndarray:
        """Embedding rows for the given node indices."""
        if self.embedding_ is None:
            raise RuntimeError("call fit() before transform()")
        return self.embedding_[np.asarray(nodes, dtype=np.int64)]

    def fit_transform(self, graph: HeteroGraph, nodes) -> np.ndarray:
        return self.fit(graph).transform(nodes)
