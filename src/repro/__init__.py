"""repro — reproduction of "Heterogeneous Subgraph Features for Information
Networks" (Spitz et al., GRADES-NDA'18).

The package is organised as:

* :mod:`repro.core` — the paper's contribution: heterogeneous graphs, the
  characteristic-sequence encoding, the rooted subgraph census, feature
  matrices, and interpretability helpers.
* :mod:`repro.ml` — from-scratch machine-learning substrate (regressors,
  classifiers, selection, metrics) matching the paper's evaluation setup.
* :mod:`repro.embeddings` — the three neural baselines: DeepWalk, node2vec,
  and LINE.
* :mod:`repro.datasets` — synthetic generators standing in for the paper's
  MAG, LOAD, and IMDB networks.
* :mod:`repro.experiments` — end-to-end pipelines reproducing every table
  and figure of the evaluation section.
* :mod:`repro.io` — serialisation of labelled graphs.
* :mod:`repro.runtime` — the unified execution runtime: the
  :class:`~repro.runtime.context.RunContext` every layer accepts as
  ``ctx=``, the content-addressed
  :class:`~repro.runtime.store.ArtifactStore`, and the declared CLI
  pipeline stages (see ``docs/architecture.md``).

Quickstart::

    from repro.core import CensusConfig, HeteroGraph, SubgraphFeatureExtractor

    graph = HeteroGraph.from_edges(
        {"a1": "author", "a2": "author", "p1": "paper"},
        [("a1", "p1"), ("a2", "p1")],
    )
    extractor = SubgraphFeatureExtractor(CensusConfig(max_edges=3))
    features = extractor.fit_transform(graph, nodes=[graph.index("a1")])
"""

from repro.core import (
    CensusConfig,
    FeatureSpace,
    HeteroGraph,
    LabelSet,
    SubgraphFeatureExtractor,
    SubgraphFeatures,
    subgraph_census,
)
from repro.exceptions import ReproError
from repro.runtime import ArtifactStore, RunContext

__version__ = "1.0.0"

__all__ = [
    "ArtifactStore",
    "CensusConfig",
    "FeatureSpace",
    "HeteroGraph",
    "LabelSet",
    "ReproError",
    "RunContext",
    "SubgraphFeatureExtractor",
    "SubgraphFeatures",
    "subgraph_census",
    "__version__",
]
