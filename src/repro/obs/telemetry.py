"""Run-telemetry registry: counters, timers, gauges, annotations.

Every hot path in the library (census, cache, walk/SGNS engines, the
experiment drivers) records what it did into a :class:`Telemetry`
registry so a run can be audited after the fact — the paper's Table 3 is
exactly such an audit (per-node census timing percentiles vs. per-node
embedding cost), and PAPERS.md's sampling-based homomorphism work shows
that subgraph-feature evaluations stand or fall on this cost accounting.

Design constraints:

* **dependency-free** — stdlib only, importable from worker processes;
* **cheap** — a counter bump is one dict update under a lock; the census
  inner loop stays dominated by real work;
* **mergeable** — worker processes build their own local registries and
  ship :meth:`Telemetry.snapshot` dicts (plain picklable data) back with
  their results; the parent folds them in with :meth:`Telemetry.merge`.
  Counters add, timer stats combine (count/total/max), gauges take the
  maximum (peak semantics), annotations last-write-win.  Merging the
  per-worker snapshots of an ``n_jobs = 2`` run therefore reproduces the
  stats of the same run at ``n_jobs = 1``.

Instrumented code records into the process-global registry returned by
:func:`get_telemetry`; tests and worker shims isolate themselves with
:func:`fresh_telemetry`.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Geometric bucket growth factor for :class:`Distribution` histograms:
#: 8 buckets per doubling keeps quantile error under ~4.5% at any scale.
_DIST_GROWTH = 2.0 ** 0.125
_DIST_LOG_GROWTH = math.log(_DIST_GROWTH)
#: Observations at or below this are folded into one underflow bucket.
_DIST_EPSILON = 1e-9
_DIST_UNDERFLOW = -(10 ** 6)


@dataclass
class TimerStat:
    """Aggregate of one named timer: call count, total/mean/max seconds."""

    count: int = 0
    total: float = 0.0
    max: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def merge(self, count: int, total: float, maximum: float) -> None:
        self.count += count
        self.total += total
        if maximum > self.max:
            self.max = maximum

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_sec": self.total,
            "mean_sec": self.mean,
            "max_sec": self.max,
        }


class Distribution:
    """Mergeable log-bucketed histogram with quantile estimates.

    Timers record count/total/max — enough for throughput accounting but
    useless for tail latency, which is what a serving daemon lives and
    dies by.  A :class:`Distribution` buckets observations geometrically
    (bucket ``i`` covers ``[growth**i, growth**(i+1))`` with ``growth =
    2**(1/8)``), so memory stays bounded (a few dozen buckets span
    microseconds to minutes) while any quantile is recoverable within
    ~4.5% relative error.  Exact min/max/total are tracked alongside, and
    two histograms merge losslessly by adding bucket counts — the same
    worker fan-in contract as the other telemetry primitives.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self.buckets: dict[int, int] = {}

    @staticmethod
    def _bucket_of(value: float) -> int:
        if value <= _DIST_EPSILON:
            return _DIST_UNDERFLOW
        return math.floor(math.log(value) / _DIST_LOG_GROWTH)

    def add(self, value: float) -> None:
        value = max(float(value), 0.0)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        bucket = self._bucket_of(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``); 0.0 when empty."""
        if not self.count:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        # Nearest-rank on the bucket histogram; the representative value
        # is the bucket's geometric midpoint clamped to the exact range.
        rank = min(self.count - 1, max(0, math.ceil(q * self.count) - 1))
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen > rank:
                if bucket == _DIST_UNDERFLOW:
                    return self.min if self.min != math.inf else 0.0
                mid = _DIST_GROWTH ** (bucket + 0.5)
                return min(max(mid, self.min), self.max)
        return self.max  # pragma: no cover - unreachable (counts sum to count)

    def merge(self, count: int, total: float, minimum: float, maximum: float,
              buckets: dict) -> None:
        self.count += count
        self.total += total
        if minimum < self.min:
            self.min = minimum
        if maximum > self.max:
            self.max = maximum
        for bucket, bucket_count in buckets.items():
            bucket = int(bucket)
            self.buckets[bucket] = self.buckets.get(bucket, 0) + bucket_count

    def state(self) -> tuple:
        """Picklable ``(count, total, min, max, buckets)`` for snapshots."""
        return (self.count, self.total, self.min, self.max, dict(self.buckets))

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


@dataclass
class Span:
    """Handle yielded by :meth:`Telemetry.span`; ``elapsed`` is set on exit."""

    name: str
    elapsed: float = field(default=0.0)


class Telemetry:
    """Named counters, timers, gauges, and annotations for one run.

    All mutation goes through one :class:`threading.Lock`, so concurrent
    threads (LINE's order training, pool callback threads) can record
    safely.  Cross-*process* safety is by construction: workers use their
    own instance and the parent merges the returned snapshots.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, float] = {}
        self.timers: dict[str, TimerStat] = {}
        self.gauges: dict[str, float] = {}
        self.annotations: dict[str, str] = {}
        self.distributions: dict[str, Distribution] = {}

    # -- recording --------------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def timer(self, name: str, seconds: float) -> None:
        """Record one observation of ``seconds`` under timer ``name``."""
        with self._lock:
            stat = self.timers.get(name)
            if stat is None:
                stat = self.timers[name] = TimerStat()
            stat.add(seconds)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins locally)."""
        with self._lock:
            self.gauges[name] = float(value)

    def gauge_max(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if larger (peak semantics)."""
        with self._lock:
            if value > self.gauges.get(name, float("-inf")):
                self.gauges[name] = float(value)

    def annotate(self, name: str, value) -> None:
        """Attach a string fact (engine name, cache status) to the run."""
        with self._lock:
            self.annotations[name] = str(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into distribution ``name`` (see
        :class:`Distribution`) — use for per-request latencies and other
        quantities whose tail percentiles matter."""
        with self._lock:
            dist = self.distributions.get(name)
            if dist is None:
                dist = self.distributions[name] = Distribution()
            dist.add(value)

    @contextmanager
    def span(self, name: str):
        """Time a ``with`` block into timer ``name``.

        Yields a :class:`Span` whose ``elapsed`` attribute holds the
        wall-clock seconds after the block exits (also on exceptions, so
        failed phases still show up in the manifest).
        """
        handle = Span(name)
        started = time.perf_counter()
        try:
            yield handle
        finally:
            handle.elapsed = time.perf_counter() - started
            self.timer(name, handle.elapsed)

    # -- merge / serialisation -------------------------------------------
    def snapshot(self) -> dict:
        """Plain picklable dict of the current state (for worker returns)."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "timers": {
                    name: (stat.count, stat.total, stat.max)
                    for name, stat in self.timers.items()
                },
                "gauges": dict(self.gauges),
                "annotations": dict(self.annotations),
                "distributions": {
                    name: dist.state()
                    for name, dist in self.distributions.items()
                },
            }

    def merge(self, other: "Telemetry | dict") -> None:
        """Fold another registry (or a :meth:`snapshot` dict) into this one.

        Counters add, timers combine, gauges take the max, annotations
        from ``other`` win — see the module docstring for why these are
        the right semantics for worker fan-in.
        """
        data = other.snapshot() if isinstance(other, Telemetry) else other
        with self._lock:
            for name, value in data.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + value
            for name, (count, total, maximum) in data.get("timers", {}).items():
                stat = self.timers.get(name)
                if stat is None:
                    stat = self.timers[name] = TimerStat()
                stat.merge(count, total, maximum)
            for name, value in data.get("gauges", {}).items():
                if value > self.gauges.get(name, float("-inf")):
                    self.gauges[name] = value
            for name, state in data.get("distributions", {}).items():
                dist = self.distributions.get(name)
                if dist is None:
                    dist = self.distributions[name] = Distribution()
                dist.merge(*state)
            self.annotations.update(data.get("annotations", {}))

    @classmethod
    def from_snapshot(cls, data: dict) -> "Telemetry":
        telemetry = cls()
        telemetry.merge(data)
        return telemetry

    def as_dict(self) -> dict:
        """JSON-friendly view (timers expanded with means) for manifests."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "timers": {
                    name: stat.as_dict() for name, stat in self.timers.items()
                },
                "gauges": dict(self.gauges),
                "annotations": dict(self.annotations),
                "distributions": {
                    name: dist.as_dict()
                    for name, dist in self.distributions.items()
                },
            }

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.timers.clear()
            self.gauges.clear()
            self.annotations.clear()
            self.distributions.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Telemetry(counters={len(self.counters)}, "
            f"timers={len(self.timers)}, gauges={len(self.gauges)})"
        )


#: Process-global registry used by instrumented library code.  Worker
#: processes get a fresh (empty) one on spawn, record locally, and ship
#: snapshots back to be merged here by the dispatching parent.
_GLOBAL = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-global telemetry registry."""
    return _GLOBAL


@contextmanager
def fresh_telemetry():
    """Swap in a fresh global registry for the duration of the block.

    Used by tests (isolation) and by the CLI (one manifest per command);
    yields the fresh registry and restores the previous one on exit.
    """
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = Telemetry()
    try:
        yield _GLOBAL
    finally:
        _GLOBAL = previous
