"""Structured logging wiring for the ``repro`` namespace.

All library diagnostics flow through ``logging`` under the ``repro.*``
logger hierarchy — never bare ``print`` (a test enforces this for
everything outside the CLI's table/report rendering).  The CLI calls
:func:`configure_logging` once per invocation, honouring its
``--log-level``/``-v`` flags; library use without configuration inherits
the standard-library default (warnings and up to stderr).

The handler resolves ``sys.stderr`` at *emit* time rather than capturing
it at configure time, so test harnesses that swap the stream (pytest's
``capsys``) observe the diagnostics exactly like a terminal user would.
"""

from __future__ import annotations

import logging
import sys

#: Root of the library's logger hierarchy.
ROOT_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_handler: logging.Handler | None = None


class _DynamicStderrHandler(logging.StreamHandler):
    """StreamHandler bound to whatever ``sys.stderr`` currently is."""

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value):  # the base class assigns; always re-resolve
        pass


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    Pass a module's ``__name__`` (already ``repro.*``) or a bare suffix
    like ``"cli"``; no argument returns the hierarchy root.
    """
    if name is None:
        return logging.getLogger(ROOT_NAME)
    if not name.startswith(ROOT_NAME):
        name = f"{ROOT_NAME}.{name}"
    return logging.getLogger(name)


def resolve_level(level: str | int) -> int:
    """Translate a ``--log-level`` value into a :mod:`logging` constant."""
    if isinstance(level, int):
        return level
    try:
        return _LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from {sorted(_LEVELS)}"
        ) from None


def configure_logging(level: str | int = "info", verbosity: int = 0) -> logging.Logger:
    """Attach (once) the stderr handler and set the hierarchy level.

    ``verbosity`` counts ``-v`` flags: any positive count drops the level
    to ``DEBUG``.  Re-invocation only adjusts the level, so calling
    ``main()`` repeatedly (tests, notebooks) never stacks handlers.
    """
    global _handler
    resolved = resolve_level(level)
    if verbosity > 0:
        resolved = min(resolved, logging.DEBUG)
    root = logging.getLogger(ROOT_NAME)
    if _handler is None:
        _handler = _DynamicStderrHandler()
        _handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
        root.addHandler(_handler)
        root.propagate = False
    root.setLevel(resolved)
    return root


def add_logging_args(parser) -> None:
    """Install the shared ``--log-level``/``-v`` flags on a CLI parser."""
    parser.add_argument(
        "--log-level",
        choices=sorted(_LEVELS),
        default="info",
        help="diagnostics verbosity on stderr (default: info)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        dest="verbosity",
        help="shortcut for --log-level debug",
    )
