"""JSON run manifests: one auditable record per CLI invocation.

``repro census|features|embed|runtime|rank|label --telemetry-out run.json``
writes a manifest capturing *what the run did*: the resolved CLI config,
engine/n_jobs/version provenance, census-cache and per-stage
artifact-store hit rates, per-phase and per-pipeline-stage wall clock,
every telemetry counter/timer/gauge, and peak RSS.  The schema is
documented in ``docs/observability.md``; bump :data:`SCHEMA_VERSION`
whenever a field changes meaning.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

from repro.obs.log import get_logger
from repro.obs.telemetry import Telemetry, get_telemetry

SCHEMA_VERSION = 1

#: Timer-name prefix marking coarse run phases (``phase/census`` ...);
#: the manifest surfaces these in their own section.
PHASE_PREFIX = "phase/"

#: Timer-name prefix of declared pipeline stages (``stage/dataset`` ...,
#: see :mod:`repro.runtime.pipeline`); surfaced as the ``stages`` section.
STAGE_PREFIX = "stage/"

#: Counter-name prefix of per-stage artifact-store lookups
#: (``artifact/census/hits`` ...); surfaced as the ``artifact_store``
#: section.
ARTIFACT_PREFIX = "artifact/"

logger = get_logger(__name__)


def peak_rss_kb() -> float | None:
    """Peak resident set size of this process in KiB (``None`` off-POSIX)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - reported in bytes there
        peak /= 1024.0
    return peak


def _json_safe(value):
    """Best-effort conversion of config values into JSON-encodable data."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_json_safe(v) for v in value]
    if isinstance(value, Path):
        return str(value)
    return repr(value)


def build_manifest(
    command: str,
    config: dict | None = None,
    telemetry: Telemetry | None = None,
    extra: dict | None = None,
) -> dict:
    """Assemble the manifest dict (see ``docs/observability.md``).

    ``config`` is the resolved run configuration (CLI args); ``extra``
    merges additional top-level sections provided by the command.
    """
    from repro import __version__  # local import: repro/__init__ imports obs

    telemetry = telemetry if telemetry is not None else get_telemetry()
    data = telemetry.as_dict()
    config = _json_safe(config or {})

    phases = {
        name[len(PHASE_PREFIX):]: stats
        for name, stats in data["timers"].items()
        if name.startswith(PHASE_PREFIX)
    }
    stages = {
        name[len(STAGE_PREFIX):]: stats
        for name, stats in data["timers"].items()
        if name.startswith(STAGE_PREFIX)
    }
    counters = data["counters"]
    hits = counters.get("census/cache_hits", 0)
    misses = counters.get("census/cache_misses", 0)
    looked_up = hits + misses
    census_cache = {
        "hits": hits,
        "misses": misses,
        "hit_rate": (hits / looked_up) if looked_up else 0.0,
        "dedup_saved": counters.get("census/dedup_saved", 0),
        "load_status": data["annotations"].get("cache/load_status"),
    }

    # Per-stage artifact-store accounting: every ArtifactStore lookup
    # counts into ``artifact/{stage}/hits|misses``, so a warm rerun is
    # auditable stage by stage (misses == 0 means the stage was skipped).
    artifact_stages: dict[str, dict] = {}
    for name, count in counters.items():
        if not name.startswith(ARTIFACT_PREFIX):
            continue
        parts = name.split("/", 2)
        if len(parts) != 3 or parts[2] not in ("hits", "misses"):
            continue
        entry = artifact_stages.setdefault(parts[1], {"hits": 0, "misses": 0})
        entry[parts[2]] = count
    for entry in artifact_stages.values():
        entry_lookups = entry["hits"] + entry["misses"]
        entry["hit_rate"] = (entry["hits"] / entry_lookups) if entry_lookups else 0.0
    # Store-wide residency recorded by ``ArtifactStore.record_stats`` as
    # ``store/*`` gauges (entry counts, evictions, approximate payload
    # bytes); absent when the run never touched a store.
    gauges = data["gauges"]
    stage_entries_prefix = "store/entries/"
    for name, value in gauges.items():
        if name.startswith(stage_entries_prefix):
            stage = name[len(stage_entries_prefix):]
            entry = artifact_stages.setdefault(stage, {"hits": 0, "misses": 0})
            entry["entries"] = int(value)
    artifact_store = {
        "stages": artifact_stages,
        "load_status": data["annotations"].get("cache/load_status"),
        "path": data["annotations"].get("cache/path"),
    }
    if "store/entries" in gauges:
        artifact_store["entries"] = int(gauges["store/entries"])
        artifact_store["evictions"] = int(gauges.get("store/evictions", 0))
        artifact_store["approx_payload_bytes"] = int(
            gauges.get("store/approx_payload_bytes", 0)
        )

    manifest = {
        "schema_version": SCHEMA_VERSION,
        "command": command,
        "created_unix": time.time(),
        "config": config,
        "provenance": {
            "engine": config.get("engine") if isinstance(config, dict) else None,
            "n_jobs": config.get("n_jobs") if isinstance(config, dict) else None,
            "repro_version": __version__,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "annotations": data["annotations"],
        },
        "census_cache": census_cache,
        "artifact_store": artifact_store,
        "phases": phases,
        "stages": stages,
        "counters": counters,
        "timers": data["timers"],
        "gauges": data["gauges"],
        # Latency-style histograms recorded via Telemetry.observe(); each
        # entry carries count/mean/min/max and p50/p90/p99 estimates (the
        # serving daemon's ``serve/latency_s`` lands here).
        "distributions": data.get("distributions", {}),
        "peak_rss_kb": peak_rss_kb(),
    }
    if extra:
        manifest.update(_json_safe(extra))
    return manifest


def write_manifest(
    path: str | Path,
    command: str,
    config: dict | None = None,
    telemetry: Telemetry | None = None,
    extra: dict | None = None,
) -> Path:
    """Build the manifest and write it to ``path`` as indented JSON."""
    target = Path(path)
    manifest = build_manifest(command, config=config, telemetry=telemetry, extra=extra)
    target.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    logger.info("telemetry manifest -> %s", target)
    return target
