"""Observability layer: run telemetry, logging wiring, JSON manifests.

See ``docs/observability.md`` for the model and the manifest schema.
"""

from repro.obs.log import add_logging_args, configure_logging, get_logger
from repro.obs.manifest import build_manifest, peak_rss_kb, write_manifest
from repro.obs.telemetry import (
    Distribution,
    Telemetry,
    TimerStat,
    fresh_telemetry,
    get_telemetry,
)

__all__ = [
    "Distribution",
    "Telemetry",
    "TimerStat",
    "add_logging_args",
    "build_manifest",
    "configure_logging",
    "fresh_telemetry",
    "get_logger",
    "get_telemetry",
    "peak_rss_kb",
    "write_manifest",
]
