"""Content-addressed artifact store shared by every pipeline stage.

This generalises the PR-3 ``CensusCache`` from "per-root census counters"
to *any* stage artifact: census counters, walk corpora, embedding
matrices, and feature matrices all memoise through one store, so a warm
rerun of ``repro rank``/``repro label``/``repro runtime`` skips every
already-computed stage end to end.

Keys are content-addressed triples::

    (graph fingerprint, stage name, frozen stage config)

The fingerprint (see :meth:`repro.core.graph.HeteroGraph.fingerprint`)
hashes the labelled structure, the stage name namespaces artifact kinds
(``"census"``, ``"walks"``, ``"embed"``, ``"features"``), and the frozen
config captures every parameter the artifact depends on — a different
graph, stage, or parameterisation simply misses, so the store never
serves stale results.

Durability semantics are inherited unchanged from the census cache:

* :meth:`ArtifactStore.save` writes a temp file in the target directory
  and atomically ``os.replace``\\ s it over the destination — a crash
  mid-save (including ``kill -9``) can never corrupt an existing file;
* a file that fails to load (corrupt bytes, old format version) is
  reported through ``logging`` and :attr:`ArtifactStore.load_status`
  instead of silently looking like an empty store;
* optional FIFO eviction bounds the entry count across *all* stages.
"""

from __future__ import annotations

import copy
import os
import pickle
import tempfile
from pathlib import Path
from typing import Mapping

from repro.obs.log import get_logger
from repro.obs.telemetry import get_telemetry

#: Bumped whenever the on-disk layout changes; mismatching files are
#: ignored rather than risking unpickling into the wrong shape.  Version 1
#: was the census-only ``CensusCache`` layout; version 2 introduced the
#: ``(fingerprint, stage, config)`` key scheme.
_FORMAT_VERSION = 2

#: Canonical stage names used by the built-in pipelines.  Stage names are
#: open-ended — these exist so the layers agree on spelling.
STAGE_CENSUS = "census"
STAGE_WALKS = "walks"
STAGE_EMBED = "embed"
STAGE_FEATURES = "features"
STAGE_PARTITION = "partition"

ArtifactKey = tuple[str, str, tuple]

logger = get_logger(__name__)


def freeze_config(value):
    """Recursively convert a stage config into a hashable, picklable key.

    Dicts become sorted ``(key, value)`` tuples, sequences become tuples,
    sets become sorted tuples; scalars pass through.  Dataclass configs
    should be flattened by the caller (field order is part of the key) —
    see ``repro.core.cache.census_config_key`` for the census example.
    """
    if isinstance(value, Mapping):
        return tuple(
            (str(key), freeze_config(value[key])) for key in sorted(value)
        )
    if isinstance(value, (list, tuple)):
        return tuple(freeze_config(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(freeze_config(item) for item in value))
    return value


def artifact_key(fingerprint: str, stage: str, config) -> ArtifactKey:
    """The content address of one stage artifact."""
    return (str(fingerprint), str(stage), freeze_config(config))


def _copy_artifact(value):
    """Defensive copy so callers mutating a hit cannot corrupt later hits.

    ``numpy`` arrays get a C-level ``.copy()``; everything else (Counters,
    tuples of arrays, dataclasses of plain data) goes through
    :func:`copy.deepcopy`.
    """
    copier = getattr(value, "copy", None)
    if copier is not None and type(value).__module__ == "numpy":
        return copier()
    return copy.deepcopy(value)


class ArtifactStore:
    """Content-addressed artifact memo with optional pickle persistence.

    Parameters
    ----------
    path:
        Optional file backing the store.  When given, existing entries are
        loaded eagerly and :meth:`save` writes the current contents back
        (atomically).  :attr:`load_status` records how the eager load
        went: ``None`` (no path), ``"missing"`` (no file yet),
        ``"loaded"``, ``"corrupt"``, or ``"version-mismatch"``.
    max_entries:
        Optional bound on the number of retained entries across all
        stages; inserting beyond it evicts the oldest entries (FIFO).
        ``None`` (default) never evicts.
    description:
        Human name used in log messages (``"artifact store"`` by default;
        the census-cache shim passes ``"census cache"``).
    log:
        Logger for load/save diagnostics; defaults to this module's.

    Hits and misses are tracked globally (:attr:`hits`/:attr:`misses`)
    and per stage (:attr:`stage_hits`/:attr:`stage_misses`), and every
    lookup is counted in the run telemetry as ``artifact/{stage}/hits``
    or ``artifact/{stage}/misses`` — the run manifest's per-stage cache
    accounting reads exactly those counters.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        max_entries: int | None = None,
        *,
        description: str = "artifact store",
        log=None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.path = Path(path) if path is not None else None
        self.max_entries = max_entries
        self.description = description
        self._log = log if log is not None else logger
        self._entries: dict[ArtifactKey, object] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stage_hits: dict[str, int] = {}
        self.stage_misses: dict[str, int] = {}
        self.load_status: str | None = None
        if self.path is not None:
            if self.path.exists():
                self._load(self.path)
            else:
                self.load_status = "missing"
                get_telemetry().annotate("cache/load_status", self.load_status)

    # -- persistence ------------------------------------------------------
    def _load(self, path: Path) -> None:
        telemetry = get_telemetry()
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        # Corrupt bytes surface from pickle as almost any exception type
        # (the docs name UnpicklingError, AttributeError, EOFError,
        # ImportError, and IndexError; garbage opcodes also raise
        # ValueError/KeyError), so treat every failure as a corrupt file.
        except Exception as exc:
            self.load_status = "corrupt"
            telemetry.count("cache/load_corrupt")
            telemetry.annotate("cache/load_status", self.load_status)
            self._log.warning(
                "%s %s is unreadable (%s: %s); starting empty "
                "— the next save() will replace it",
                self.description,
                path,
                type(exc).__name__,
                exc,
            )
            return
        if (
            isinstance(payload, dict)
            and payload.get("version") == _FORMAT_VERSION
            and isinstance(payload.get("entries"), dict)
        ):
            self._entries.update(payload["entries"])
            self.load_status = "loaded"
            telemetry.count("cache/loads")
            telemetry.count("cache/load_entries", len(payload["entries"]))
        else:
            found = payload.get("version") if isinstance(payload, dict) else None
            self.load_status = "version-mismatch"
            telemetry.count("cache/load_version_mismatch")
            self._log.warning(
                "%s %s has format version %r (expected %d); "
                "ignoring its contents — the next save() will upgrade it",
                self.description,
                path,
                found,
                _FORMAT_VERSION,
            )
        telemetry.annotate("cache/load_status", self.load_status)

    def save(self, path: str | Path | None = None) -> Path:
        """Atomically write the store to ``path`` (default: constructor path).

        The payload is written to a temp file in the destination
        directory and moved into place with :func:`os.replace`, so an
        interrupted save never clobbers the previous on-disk contents; a
        crash can only leave a stray temp file behind.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError(
                f"{self.description} has no path; pass one to save()"
            )
        payload = {"version": _FORMAT_VERSION, "entries": self._entries}
        fd, tmp_name = tempfile.mkstemp(
            dir=target.parent or Path("."), prefix=f"{target.name}.", suffix=".tmp"
        )
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, target)
        telemetry = get_telemetry()
        telemetry.count("cache/saves")
        telemetry.count("cache/save_entries", len(self._entries))
        # Every persisted run gets store-wide stats in its manifest for
        # free (entry counts per stage, evictions, payload size).
        self.record_stats(telemetry)
        self._log.debug(
            "%s saved: %d entries -> %s",
            self.description,
            len(self._entries),
            target,
        )
        return target

    # -- memoisation ------------------------------------------------------
    def get(self, fingerprint: str, stage: str, config):
        """The stored artifact for the address, or ``None`` on a miss."""
        key = artifact_key(fingerprint, stage, config)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self.stage_misses[stage] = self.stage_misses.get(stage, 0) + 1
            get_telemetry().count(f"artifact/{stage}/misses")
            return None
        self.hits += 1
        self.stage_hits[stage] = self.stage_hits.get(stage, 0) + 1
        get_telemetry().count(f"artifact/{stage}/hits")
        return _copy_artifact(entry)

    def put(self, fingerprint: str, stage: str, config, value) -> None:
        """Store an artifact (overwrites any existing entry at the address).

        When ``max_entries`` is set, inserting a novel key beyond the
        bound evicts the oldest entries first (dict insertion order),
        regardless of which stage they belong to.
        """
        key = artifact_key(fingerprint, stage, config)
        if (
            self.max_entries is not None
            and key not in self._entries
            and len(self._entries) >= self.max_entries
        ):
            evicted = 0
            while len(self._entries) >= self.max_entries:
                self._entries.pop(next(iter(self._entries)))
                evicted += 1
            self.evictions += evicted
            get_telemetry().count("cache/evictions", evicted)
        self._entries[key] = _copy_artifact(value)

    # -- introspection ----------------------------------------------------
    def stage_stats(self) -> dict[str, dict[str, int]]:
        """Per-stage ``{"hits": ..., "misses": ..., "entries": ...}`` view."""
        stages: dict[str, dict[str, int]] = {}
        for name in set(self.stage_hits) | set(self.stage_misses):
            stages[name] = {
                "hits": self.stage_hits.get(name, 0),
                "misses": self.stage_misses.get(name, 0),
                "entries": 0,
            }
        for _fp, stage, _cfg in self._entries:
            stages.setdefault(stage, {"hits": 0, "misses": 0, "entries": 0})
            stages[stage]["entries"] += 1
        return stages

    def approx_payload_bytes(self) -> int:
        """Approximate pickled size of all stored artifacts, in bytes.

        Computed on demand (one pickle pass over the entries), not per
        ``put`` — call it at manifest/save time, not in hot loops.
        """
        return sum(
            len(pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL))
            for entry in self._entries.values()
        )

    def stats(self) -> dict:
        """Store-wide summary: totals, per-stage breakdown, payload size."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "approx_payload_bytes": self.approx_payload_bytes(),
            "stages": self.stage_stats(),
        }

    def record_stats(self, telemetry=None) -> dict:
        """Record :meth:`stats` into the run telemetry (``store/*`` gauges).

        The run manifest's ``artifact_store`` section reads exactly
        these gauges, so partition-artifact reuse (and every other
        stage's residency) is visible alongside census-cache hit rates.
        Returns the recorded stats dict.
        """
        telemetry = telemetry if telemetry is not None else get_telemetry()
        stats = self.stats()
        telemetry.gauge("store/entries", stats["entries"])
        telemetry.gauge("store/evictions", stats["evictions"])
        telemetry.gauge("store/approx_payload_bytes", stats["approx_payload_bytes"])
        for stage, entry in stats["stages"].items():
            telemetry.gauge(f"store/entries/{stage}", entry["entries"])
        return stats

    def stage_entries(self, stage: str) -> int:
        """Number of stored entries belonging to one stage."""
        return sum(1 for _fp, entry_stage, _cfg in self._entries if entry_stage == stage)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: ArtifactKey) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stage_hits.clear()
        self.stage_misses.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArtifactStore(entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
