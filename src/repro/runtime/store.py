"""Content-addressed artifact store shared by every pipeline stage.

This generalises the PR-3 ``CensusCache`` from "per-root census counters"
to *any* stage artifact: census counters, walk corpora, embedding
matrices, and feature matrices all memoise through one store, so a warm
rerun of ``repro rank``/``repro label``/``repro runtime`` skips every
already-computed stage end to end.

Keys are content-addressed triples::

    (graph fingerprint, stage name, frozen stage config)

The fingerprint (see :meth:`repro.core.graph.HeteroGraph.fingerprint`)
hashes the labelled structure, the stage name namespaces artifact kinds
(``"census"``, ``"walks"``, ``"embed"``, ``"features"``), and the frozen
config captures every parameter the artifact depends on — a different
graph, stage, or parameterisation simply misses, so the store never
serves stale results.

Durability semantics are inherited unchanged from the census cache:

* :meth:`ArtifactStore.save` writes a temp file in the target directory
  and atomically ``os.replace``\\ s it over the destination — a crash
  mid-save (including ``kill -9``) can never corrupt an existing file;
* a file that fails to load (corrupt bytes, old format version) is
  reported through ``logging`` and :attr:`ArtifactStore.load_status`
  instead of silently looking like an empty store;
* optional LRU eviction bounds the entry count across *all* stages,
  with per-stage protected floors so a flood of cheap entries cannot
  evict the expensive, tiny artifacts of another stage.

The store is thread-safe: every dict mutation and every snapshot taken
for persistence/stats happens under one re-entrant lock, so the serving
daemon's concurrent readers and writers (see :mod:`repro.serve`) share
one store without torn reads or lost updates.  Stored values are never
mutated in place (both :meth:`ArtifactStore.get` and
:meth:`ArtifactStore.put` copy), so payload copying can safely happen
outside the lock.
"""

from __future__ import annotations

import copy
import os
import pickle
import tempfile
import threading
from collections import Counter
from pathlib import Path
from typing import Mapping

from repro.obs.log import get_logger
from repro.obs.telemetry import get_telemetry

#: Bumped whenever the on-disk layout changes; mismatching files are
#: ignored rather than risking unpickling into the wrong shape.  Version 1
#: was the census-only ``CensusCache`` layout; version 2 introduced the
#: ``(fingerprint, stage, config)`` key scheme.
_FORMAT_VERSION = 2

#: Canonical stage names used by the built-in pipelines.  Stage names are
#: open-ended — these exist so the layers agree on spelling.
STAGE_CENSUS = "census"
STAGE_WALKS = "walks"
STAGE_EMBED = "embed"
STAGE_FEATURES = "features"
STAGE_PARTITION = "partition"

#: Default per-stage eviction floors: the last N entries of these stages
#: are never evicted to make room for another stage's flood.  Partition
#: sets and embedding matrices are exactly the "expensive to rebuild,
#: few in number" artifacts a census burst used to wash out.
DEFAULT_STAGE_FLOORS: Mapping[str, int] = {
    STAGE_PARTITION: 4,
    STAGE_EMBED: 4,
}

ArtifactKey = tuple[str, str, tuple]

logger = get_logger(__name__)


def freeze_config(value):
    """Recursively convert a stage config into a hashable, picklable key.

    Dicts become sorted ``(key, value)`` tuples, sequences become tuples,
    sets become sorted tuples; scalars pass through.  Dataclass configs
    should be flattened by the caller (field order is part of the key) —
    see ``repro.core.cache.census_config_key`` for the census example.
    """
    if isinstance(value, Mapping):
        return tuple(
            (str(key), freeze_config(value[key])) for key in sorted(value)
        )
    if isinstance(value, (list, tuple)):
        return tuple(freeze_config(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(freeze_config(item) for item in value))
    return value


def artifact_key(fingerprint: str, stage: str, config) -> ArtifactKey:
    """The content address of one stage artifact."""
    return (str(fingerprint), str(stage), freeze_config(config))


def _copy_artifact(value):
    """Defensive copy so callers mutating a hit cannot corrupt later hits.

    ``numpy`` arrays get a C-level ``.copy()`` and ``Counter`` values (the
    census artifact — by far the hottest lookup in the serving path) get a
    shallow ``.copy()``, which is exact because their keys and counts are
    immutable and which preserves ``SampledCensus`` subclasses along with
    their confidence reports; everything else (tuples of arrays,
    dataclasses of plain data) goes through :func:`copy.deepcopy`.
    """
    copier = getattr(value, "copy", None)
    if copier is not None and type(value).__module__ == "numpy":
        return copier()
    if isinstance(value, Counter):
        return value.copy()
    return copy.deepcopy(value)


class ArtifactStore:
    """Content-addressed artifact memo with optional pickle persistence.

    Parameters
    ----------
    path:
        Optional file backing the store.  When given, existing entries are
        loaded eagerly and :meth:`save` writes the current contents back
        (atomically).  :attr:`load_status` records how the eager load
        went: ``None`` (no path), ``"missing"`` (no file yet),
        ``"loaded"``, ``"corrupt"``, or ``"version-mismatch"``.
    max_entries:
        Optional bound on the number of retained entries across all
        stages; inserting beyond it evicts the least-recently-used
        entries (every :meth:`get` hit and :meth:`put` overwrite
        refreshes an entry's recency).  ``None`` (default) never evicts.
    stage_floors:
        Per-stage protected floors for eviction: an entry is skipped by
        the eviction scan whenever removing it would drop its stage's
        entry count to below (or at) the floor, so e.g. a flood of
        census entries can never push out the last few ``partition`` or
        ``embed`` artifacts.  Defaults to :data:`DEFAULT_STAGE_FLOORS`;
        pass ``{}`` to disable protection.  When nothing is evictable
        the store temporarily overflows ``max_entries`` rather than
        dropping a protected artifact.
    description:
        Human name used in log messages (``"artifact store"`` by default;
        the census-cache shim passes ``"census cache"``).
    log:
        Logger for load/save diagnostics; defaults to this module's.

    Hits and misses are tracked globally (:attr:`hits`/:attr:`misses`)
    and per stage (:attr:`stage_hits`/:attr:`stage_misses`), and every
    lookup is counted in the run telemetry as ``artifact/{stage}/hits``
    or ``artifact/{stage}/misses`` — the run manifest's per-stage cache
    accounting reads exactly those counters.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        max_entries: int | None = None,
        *,
        stage_floors: Mapping[str, int] | None = None,
        description: str = "artifact store",
        log=None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.path = Path(path) if path is not None else None
        self.max_entries = max_entries
        self.stage_floors = dict(
            DEFAULT_STAGE_FLOORS if stage_floors is None else stage_floors
        )
        self.description = description
        self._log = log if log is not None else logger
        # One re-entrant lock guards _entries, _stage_counts, and the
        # hit/miss/eviction tallies; re-entrant because locked methods
        # (save, stats) call other locked methods.
        self._lock = threading.RLock()
        self._entries: dict[ArtifactKey, object] = {}
        self._stage_counts: Counter = Counter()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stage_hits: dict[str, int] = {}
        self.stage_misses: dict[str, int] = {}
        self.load_status: str | None = None
        if self.path is not None:
            if self.path.exists():
                self._load(self.path)
            else:
                self.load_status = "missing"
                get_telemetry().annotate("cache/load_status", self.load_status)

    # -- persistence ------------------------------------------------------
    def _load(self, path: Path) -> None:
        telemetry = get_telemetry()
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        # Corrupt bytes surface from pickle as almost any exception type
        # (the docs name UnpicklingError, AttributeError, EOFError,
        # ImportError, and IndexError; garbage opcodes also raise
        # ValueError/KeyError), so treat every failure as a corrupt file.
        except Exception as exc:
            self.load_status = "corrupt"
            telemetry.count("cache/load_corrupt")
            telemetry.annotate("cache/load_status", self.load_status)
            self._log.warning(
                "%s %s is unreadable (%s: %s); starting empty "
                "— the next save() will replace it",
                self.description,
                path,
                type(exc).__name__,
                exc,
            )
            return
        if (
            isinstance(payload, dict)
            and payload.get("version") == _FORMAT_VERSION
            and isinstance(payload.get("entries"), dict)
        ):
            with self._lock:
                self._entries.update(payload["entries"])
                self._stage_counts = Counter(
                    stage for _fp, stage, _cfg in self._entries
                )
            self.load_status = "loaded"
            telemetry.count("cache/loads")
            telemetry.count("cache/load_entries", len(payload["entries"]))
        else:
            found = payload.get("version") if isinstance(payload, dict) else None
            self.load_status = "version-mismatch"
            telemetry.count("cache/load_version_mismatch")
            self._log.warning(
                "%s %s has format version %r (expected %d); "
                "ignoring its contents — the next save() will upgrade it",
                self.description,
                path,
                found,
                _FORMAT_VERSION,
            )
        telemetry.annotate("cache/load_status", self.load_status)

    def save(self, path: str | Path | None = None) -> Path:
        """Atomically write the store to ``path`` (default: constructor path).

        The payload is written to a temp file in the destination
        directory and moved into place with :func:`os.replace`, so an
        interrupted save never clobbers the previous on-disk contents; a
        crash can only leave a stray temp file behind.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError(
                f"{self.description} has no path; pass one to save()"
            )
        # Snapshot under the lock, pickle outside it: entries are never
        # mutated in place (only replaced), so the shallow copy is a
        # consistent point-in-time view even while other threads write.
        with self._lock:
            entries = dict(self._entries)
        payload = {"version": _FORMAT_VERSION, "entries": entries}
        fd, tmp_name = tempfile.mkstemp(
            dir=target.parent or Path("."), prefix=f"{target.name}.", suffix=".tmp"
        )
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, target)
        telemetry = get_telemetry()
        telemetry.count("cache/saves")
        telemetry.count("cache/save_entries", len(entries))
        # Every persisted run gets store-wide stats in its manifest for
        # free (entry counts per stage, evictions, payload size).
        self.record_stats(telemetry)
        self._log.debug(
            "%s saved: %d entries -> %s",
            self.description,
            len(entries),
            target,
        )
        return target

    # -- memoisation ------------------------------------------------------
    def get(self, fingerprint: str, stage: str, config):
        """The stored artifact for the address, or ``None`` on a miss.

        A hit refreshes the entry's recency (touch-on-get), so LRU
        eviction spares working-set entries that are read repeatedly.
        """
        key = artifact_key(fingerprint, stage, config)
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                self.misses += 1
                self.stage_misses[stage] = self.stage_misses.get(stage, 0) + 1
            else:
                # Reinsert at the newest position: dicts iterate in
                # insertion order, so the eviction scan sees true LRU.
                self._entries[key] = entry
                self.hits += 1
                self.stage_hits[stage] = self.stage_hits.get(stage, 0) + 1
        if entry is None:
            get_telemetry().count(f"artifact/{stage}/misses")
            return None
        get_telemetry().count(f"artifact/{stage}/hits")
        # Copy outside the lock: stored values are only ever replaced,
        # never mutated, so the reference stays consistent.
        return _copy_artifact(entry)

    def _evict_locked(self) -> int:
        """Evict LRU entries to fit ``max_entries``; honours stage floors.

        Caller holds the lock, has already counted the incoming entry in
        ``_stage_counts``, and inserts it after this returns.  Entries
        are scanned oldest-first; one whose removal would leave its
        stage with fewer than its floor's worth of entries is skipped.
        Returns the number of evictions (0 when everything left is
        protected — the store then overflows rather than dropping a
        protected artifact).
        """
        overshoot = len(self._entries) - self.max_entries + 1
        if overshoot <= 0:
            return 0
        floors = self.stage_floors
        victims: list[ArtifactKey] = []
        if floors:
            # Track how many entries each stage would retain as victims
            # accumulate, so a floor cannot be breached by evicting two
            # entries of one protected stage in a single scan.
            remaining = Counter(self._stage_counts)
            for key in self._entries:
                stage = key[1]
                if remaining[stage] - 1 < floors.get(stage, 0):
                    continue
                remaining[stage] -= 1
                victims.append(key)
                if len(victims) == overshoot:
                    break
        else:
            victims = [
                key
                for key, _ in zip(self._entries, range(overshoot))
            ]
        for key in victims:
            del self._entries[key]
            self._stage_counts[key[1]] -= 1
        self.evictions += len(victims)
        return len(victims)

    def put(self, fingerprint: str, stage: str, config, value) -> None:
        """Store an artifact (overwrites any existing entry at the address).

        When ``max_entries`` is set, inserting a novel key beyond the
        bound evicts the least-recently-used entries first, skipping
        entries protected by a stage floor (see the constructor docs).
        An overwrite also refreshes the entry's recency.
        """
        key = artifact_key(fingerprint, stage, config)
        stored = _copy_artifact(value)
        evicted = 0
        with self._lock:
            if key in self._entries:
                # Refresh recency on overwrite; never triggers eviction.
                del self._entries[key]
            else:
                self._stage_counts[stage] += 1
                if self.max_entries is not None:
                    evicted = self._evict_locked()
            self._entries[key] = stored
        if evicted:
            get_telemetry().count("cache/evictions", evicted)

    def discard(self, fingerprint: str, stage: str, config) -> bool:
        """Drop the entry at the address, if present; returns whether it was.

        Used by the serving daemon's repair path to retire entries keyed
        under a superseded graph fingerprint after migrating them; a
        discard is not an eviction (it counts in neither tally).
        """
        key = artifact_key(fingerprint, stage, config)
        with self._lock:
            if key not in self._entries:
                return False
            del self._entries[key]
            self._stage_counts[stage] -= 1
            return True

    def move(self, fingerprint: str, new_fingerprint: str, stage: str, config) -> bool:
        """Atomically re-address one entry under a new fingerprint.

        The serve-layer key migration used to emulate this with
        ``get()`` + ``discard()`` + ``put()``, which deep-copied the
        artifact twice per migrated root and polluted the hit counters
        — and therefore :meth:`stats`'s hit-rate and payload accounting
        — with pure bookkeeping traffic.  ``move`` re-keys the stored
        object in place under the lock: no copies, no hit/miss
        mutation, and exact stage entry counts (a pre-existing entry at
        the destination is replaced, never double-counted).  The moved
        entry lands at the newest LRU position, matching the recency
        refresh the old emulation produced.  Returns whether a source
        entry existed.
        """
        src = artifact_key(fingerprint, stage, config)
        dst = artifact_key(new_fingerprint, stage, config)
        with self._lock:
            entry = self._entries.pop(src, None)
            if entry is None:
                return False
            if dst in self._entries:
                del self._entries[dst]
                self._stage_counts[stage] -= 1
            self._entries[dst] = entry
            return True

    # -- introspection ----------------------------------------------------
    def stage_stats(self) -> dict[str, dict[str, int]]:
        """Per-stage ``{"hits": ..., "misses": ..., "entries": ...}`` view."""
        with self._lock:
            stages: dict[str, dict[str, int]] = {}
            for name in set(self.stage_hits) | set(self.stage_misses):
                stages[name] = {
                    "hits": self.stage_hits.get(name, 0),
                    "misses": self.stage_misses.get(name, 0),
                    "entries": 0,
                }
            for stage, count in self._stage_counts.items():
                if not count:
                    continue
                stages.setdefault(stage, {"hits": 0, "misses": 0, "entries": 0})
                stages[stage]["entries"] = count
            return stages

    def approx_payload_bytes(self) -> int:
        """Approximate pickled size of all stored artifacts, in bytes.

        Computed on demand (one pickle pass over the entries), not per
        ``put`` — call it at manifest/save time, not in hot loops.
        """
        with self._lock:
            entries = list(self._entries.values())
        return sum(
            len(pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL))
            for entry in entries
        )

    def stats(self) -> dict:
        """Store-wide summary: totals, per-stage breakdown, payload size."""
        with self._lock:
            head = {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
        head["approx_payload_bytes"] = self.approx_payload_bytes()
        head["stages"] = self.stage_stats()
        return head

    def record_stats(self, telemetry=None) -> dict:
        """Record :meth:`stats` into the run telemetry (``store/*`` gauges).

        The run manifest's ``artifact_store`` section reads exactly
        these gauges, so partition-artifact reuse (and every other
        stage's residency) is visible alongside census-cache hit rates.
        Returns the recorded stats dict.
        """
        telemetry = telemetry if telemetry is not None else get_telemetry()
        stats = self.stats()
        telemetry.gauge("store/entries", stats["entries"])
        telemetry.gauge("store/evictions", stats["evictions"])
        telemetry.gauge("store/approx_payload_bytes", stats["approx_payload_bytes"])
        for stage, entry in stats["stages"].items():
            telemetry.gauge(f"store/entries/{stage}", entry["entries"])
        return stats

    def stage_entries(self, stage: str) -> int:
        """Number of stored entries belonging to one stage."""
        with self._lock:
            return int(self._stage_counts.get(stage, 0))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: ArtifactKey) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._stage_counts.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.stage_hits.clear()
            self.stage_misses.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArtifactStore(entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
