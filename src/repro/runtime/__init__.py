"""Unified execution runtime: context, artifact store, pipeline stages.

One layer answering "how should this run execute?" for every stage of
the library — see :mod:`repro.runtime.context` (engine/n_jobs/seed
policy), :mod:`repro.runtime.store` (content-addressed cross-stage
caching), and :mod:`repro.runtime.pipeline` (declared CLI stages).
"""

from repro.runtime.context import (
    ENGINE_FAST,
    ENGINE_REFERENCE,
    ENGINE_SAMPLED,
    EXACT_ENGINES,
    EXECUTOR_LOCAL,
    EXECUTOR_REMOTE,
    VALID_ENGINES,
    VALID_EXECUTORS,
    RunContext,
    resolve_engine,
    resolve_n_jobs,
)
from repro.runtime.pipeline import Pipeline, STAGES
from repro.runtime.store import (
    ArtifactStore,
    STAGE_CENSUS,
    STAGE_EMBED,
    STAGE_FEATURES,
    STAGE_PARTITION,
    STAGE_WALKS,
    artifact_key,
    freeze_config,
)

__all__ = [
    "RunContext",
    "resolve_engine",
    "resolve_n_jobs",
    "ENGINE_FAST",
    "ENGINE_REFERENCE",
    "ENGINE_SAMPLED",
    "EXACT_ENGINES",
    "VALID_ENGINES",
    "EXECUTOR_LOCAL",
    "EXECUTOR_REMOTE",
    "VALID_EXECUTORS",
    "Pipeline",
    "STAGES",
    "ArtifactStore",
    "artifact_key",
    "freeze_config",
    "STAGE_CENSUS",
    "STAGE_WALKS",
    "STAGE_EMBED",
    "STAGE_FEATURES",
    "STAGE_PARTITION",
]
