"""Declared pipeline stages executed through a :class:`RunContext`.

The CLI drivers used to be ad-hoc scripts: each command timed its own
phases, annotated its own ``experiment/engine`` keys, and logged its own
cache summary.  :class:`Pipeline` recasts them as a declared sequence of
named stages (``dataset → graph → census → features → embed →
experiment``) executed through the context, so every command gets the
same observability for free:

* each stage runs under a ``stage/{name}`` telemetry span (wall-clock and
  invocation counts land in the manifest's ``stages`` section);
* the context's engine / n_jobs / seed / store provenance is annotated
  once at pipeline start (``run/*`` keys), replacing the per-command
  ``_annotate_experiment`` helpers;
* artifact-store hit/miss counters accumulate per stage
  (``artifact/{stage}/*``) and are summarised into the manifest's
  ``artifact_store`` section.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.log import get_logger
from repro.runtime.context import RunContext

logger = get_logger(__name__)

#: The canonical stage order of the experiment drivers.  Pipelines may
#: run any subset (``repro census`` stops at "census"); declaring a stage
#: outside this list is allowed but keeps these names for shared stages.
STAGES = ("dataset", "graph", "census", "features", "embed", "experiment")

_SPAN_PREFIX = "stage/"


class Pipeline:
    """A named sequence of stages running under one :class:`RunContext`.

    Usage::

        pipeline = Pipeline("rank", ctx)
        with pipeline.stage("dataset"):
            dataset = make_dataset(...)
        with pipeline.stage("experiment"):
            result = experiment.run(...)

    Stages self-record: entering one opens a ``stage/{name}`` span in the
    context's telemetry registry and logs at DEBUG; the set of stages that
    actually ran is annotated as ``pipeline/stages`` so the manifest can
    report declared order versus executed stages.
    """

    def __init__(self, name: str, ctx: RunContext | None = None) -> None:
        self.name = name
        self.ctx = ctx if ctx is not None else RunContext()
        self.executed: list[str] = []
        telemetry = self.ctx.telemetry_registry
        telemetry.annotate("pipeline/name", name)
        self.ctx.annotate_provenance()

    @contextmanager
    def stage(self, name: str):
        """Run one named stage: ``stage/{name}`` span + executed-order record."""
        if name not in self.executed:
            self.executed.append(name)
        telemetry = self.ctx.telemetry_registry
        telemetry.annotate("pipeline/stages", tuple(self.executed))
        logger.debug("pipeline %s: stage %s", self.name, name)
        with telemetry.span(_SPAN_PREFIX + name):
            yield self.ctx
