"""Execution context: one object answering "how should this run execute?".

Before this layer existed every stage of the library grew its own
``engine=``/``n_jobs=`` keyword pair with subtly different validation
(``census.py`` raised :class:`~repro.exceptions.CensusError` without
naming the choices, ``walks.py`` said "unknown walk engine", ``forest.py``
enumerated its tuple) and its own cache handle.  :class:`RunContext`
bundles those execution concerns — engine selection, worker count, seed
policy, the telemetry registry, and the :class:`~repro.runtime.store.ArtifactStore`
handle — into a single object that every layer accepts as ``ctx=``.

Legacy call signatures keep working: each public entry point still takes
its old ``engine=``/``n_jobs=``/``cache=`` keywords and routes them
through :meth:`RunContext.ensure`, the deprecation shim that builds (or
specialises) a context from them.  New code should construct one context
per run and pass it down.

:func:`resolve_engine` is the single validator behind every engine
dispatch; its error message always enumerates the valid choices, so a
typo'd ``--engine`` reads the same no matter which stage rejects it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

from repro.obs.telemetry import Telemetry, get_telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.runtime.store import ArtifactStore


#: The engine registry — the single source of truth for engine names.
#: Every ``--engine`` choice list and every ``resolve_engine`` call site
#: derives from these constants instead of repeating string literals.
ENGINE_FAST = "fast"
ENGINE_REFERENCE = "reference"
ENGINE_SAMPLED = "sampled"

#: Engines that produce bit-identical exact results (interchangeable for
#: cache keys and any stage without a sampled implementation).
EXACT_ENGINES = (ENGINE_FAST, ENGINE_REFERENCE)

#: Every engine the library knows about.  Only the census implements
#: ``"sampled"``; stages without an approximate path validate against
#: :data:`EXACT_ENGINES`.
VALID_ENGINES = (ENGINE_FAST, ENGINE_REFERENCE, ENGINE_SAMPLED)

#: Where the sharded census fan-out executes: a local process pool, or
#: ``repro worker`` daemons reached over :mod:`repro.net`.
EXECUTOR_LOCAL = "local"
EXECUTOR_REMOTE = "remote"
VALID_EXECUTORS = (EXECUTOR_LOCAL, EXECUTOR_REMOTE)


def resolve_engine(
    name: str,
    choices: Sequence[str],
    *,
    param: str = "engine",
    error: type[Exception] = ValueError,
) -> str:
    """Validate an engine spec against ``choices``.

    Returns ``name`` unchanged when valid; otherwise raises ``error`` with
    a message that *always* enumerates the valid choices — the unified
    wording every call site shares::

        unknown engine 'turbo': valid choices are 'fast', 'reference'

    ``param`` names the parameter in the message (``"engine"``,
    ``"walk engine"``, ...); ``error`` lets domain layers keep their
    exception hierarchy (the census raises :class:`CensusError`).
    """
    if name in choices:
        return name
    listed = ", ".join(repr(str(choice)) for choice in choices)
    raise error(f"unknown {param} {name!r}: valid choices are {listed}")


def resolve_n_jobs(n_jobs) -> int:
    """Map an ``n_jobs`` spec to a worker count: ``0``/``None``/"auto" = all cores."""
    if n_jobs is None or n_jobs == 0 or n_jobs == "auto":
        return max(1, os.cpu_count() or 1)
    count = int(n_jobs)
    if count < 1:
        raise ValueError(f"n_jobs must be >= 1 (or 0/None for auto), got {n_jobs}")
    return count


@dataclass
class RunContext:
    """Execution policy for one run.

    Every field defaults to ``None`` meaning *unset* — resolution helpers
    fall back to the caller's legacy default, so a context only overrides
    what it explicitly carries.  This is what lets the :meth:`ensure` shim
    layer a context under existing keyword arguments without changing any
    default behaviour.

    Attributes
    ----------
    engine:
        Implementation selector shared by the census, walk/SGNS/LINE, and
        forest engines (each validates against its own choice tuple via
        :meth:`resolve_engine`).
    n_jobs:
        Worker-process count; ``0``/``"auto"`` means all cores.  Stages
        resolve it through :meth:`resolved_n_jobs`.
    partitions:
        Shard count for the partitioned census (see :mod:`repro.dist`);
        ``None`` keeps the single-shard root-fanning path.  Stages
        resolve it through :meth:`resolved_partitions`.
    executor:
        Where shard tasks run: ``"local"`` (process pool) or
        ``"remote"`` (``repro worker`` daemons over :mod:`repro.net`).
        Resolved through :meth:`resolved_executor`.
    workers:
        Worker endpoint specs (``host:port`` / ``unix:path``) for
        ``executor="remote"``.
    seed:
        Base RNG seed for stages that need one (embedding pipelines, the
        experiment drivers).
    store:
        Optional :class:`~repro.runtime.store.ArtifactStore`; stages that
        support artifact caching consult it and a warm store lets a rerun
        skip the stage entirely.
    telemetry:
        Registry to record into; ``None`` uses the process-global one.
    """

    engine: str | None = None
    n_jobs: int | None = None
    partitions: int | None = None
    executor: str | None = None
    workers: "tuple | list | None" = None
    seed: int | None = None
    store: "ArtifactStore | None" = None
    telemetry: Telemetry | None = field(default=None, repr=False)

    # -- construction shims ------------------------------------------------
    @classmethod
    def ensure(cls, ctx: "RunContext | None" = None, **overrides) -> "RunContext":
        """The deprecation shim behind every legacy call signature.

        Returns ``ctx`` specialised with any non-``None`` keyword
        overrides (``engine=``, ``n_jobs=``, ``seed=``, ``store=``), or a
        fresh context built from just the overrides when ``ctx`` is
        ``None``.  Explicit legacy keywords therefore keep winning over a
        passed context, which is exactly how the pre-context signatures
        behaved.
        """
        base = ctx if ctx is not None else cls()
        updates = {
            key: value for key, value in overrides.items() if value is not None
        }
        return replace(base, **updates) if updates else base

    # -- resolution --------------------------------------------------------
    def resolve_engine(
        self,
        choices: Sequence[str],
        *,
        default: str = "fast",
        param: str = "engine",
        error: type[Exception] = ValueError,
    ) -> str:
        """The context engine (or ``default``), validated against ``choices``."""
        name = self.engine if self.engine is not None else default
        return resolve_engine(name, choices, param=param, error=error)

    def resolved_n_jobs(self, default: int = 1) -> int:
        """The context worker count (or ``default``), ``0``/"auto"-expanded."""
        spec = self.n_jobs if self.n_jobs is not None else default
        return resolve_n_jobs(spec)

    def resolved_partitions(self, default: int | None = None) -> int | None:
        """The census shard count, or ``default`` when unset (validated)."""
        spec = self.partitions if self.partitions is not None else default
        if spec is None:
            return None
        count = int(spec)
        if count < 1:
            raise ValueError(f"partitions must be >= 1, got {spec}")
        return count

    def resolved_executor(self, default: str = EXECUTOR_LOCAL) -> str:
        """The shard executor (or ``default``), validated."""
        name = self.executor if self.executor is not None else default
        return resolve_engine(name, VALID_EXECUTORS, param="executor")

    def resolved_seed(self, default: int = 0) -> int:
        """The context seed, or ``default`` when unset."""
        return int(self.seed) if self.seed is not None else default

    # -- conveniences ------------------------------------------------------
    @property
    def telemetry_registry(self) -> Telemetry:
        """The registry to record into (context-local or process-global)."""
        return self.telemetry if self.telemetry is not None else get_telemetry()

    def span(self, name: str):
        """Shortcut for ``ctx.telemetry_registry.span(name)``."""
        return self.telemetry_registry.span(name)

    def annotate_provenance(self, prefix: str = "run") -> None:
        """Record the resolved execution policy into the run telemetry.

        Lands in the manifest's provenance annotations uniformly
        (``run/engine``, ``run/n_jobs``, ``run/seed``, ``run/store``),
        replacing the per-command ``_annotate_experiment`` helpers the CLI
        used to carry.
        """
        telemetry = self.telemetry_registry
        if self.engine is not None:
            telemetry.annotate(f"{prefix}/engine", self.engine)
        if self.n_jobs is not None:
            telemetry.annotate(f"{prefix}/n_jobs", self.resolved_n_jobs())
        if self.partitions is not None:
            telemetry.annotate(f"{prefix}/partitions", self.resolved_partitions())
        if self.executor is not None:
            telemetry.annotate(f"{prefix}/executor", self.resolved_executor())
        if self.workers:
            telemetry.annotate(f"{prefix}/workers", len(self.workers))
        if self.seed is not None:
            telemetry.annotate(f"{prefix}/seed", self.seed)
        if self.store is not None and self.store.path is not None:
            telemetry.annotate(f"{prefix}/store", self.store.path)
