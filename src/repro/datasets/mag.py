"""Synthetic Microsoft-Academic-Graph stand-in (Section 4.1 / 4.2).

The paper's rank-prediction task uses a proprietary MAG subset: 741
institutions whose authors published at KDD, ICML, FSE, MM, and MobiCom in
2007–2015, with a KDD-Cup-2016-style relevance ground truth.  This module
generates a publication world with the same moving parts:

* institutions with per-conference latent strength following an AR(1)
  process over years — so history *is* predictive, as the task requires;
* authors affiliated with institutions (rarely two, as the paper notes);
* per conference and year: papers with 1–4 authors sampled by institution
  strength, full/short status, topic-flavoured titles, and citations to
  earlier papers;
* the exact three KDD-Cup relevance directives: every accepted full paper
  has one vote, split equally over its authors, split equally over each
  author's affiliations.

Two graph views feed the experiments: :meth:`SyntheticMAG.build_rank_graph`
(labels I/A/P for one conference-year, with referenced papers up to a given
citation depth) and :meth:`SyntheticMAG.build_label_graph` (the six-label
network of Figure 2 right, for label prediction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.graph import HeteroGraph
from repro.datasets.schema import MAG_LABEL_SCHEMA, MAG_RANK_SCHEMA

CONFERENCES = ("KDD", "FSE", "ICML", "MM", "MOBICOM")

# Vocabulary for synthetic titles, grouped by word class so the linguistic
# features of Section 4.2.2 have real material to count.
_TOPIC_NOUNS = {
    "KDD": ["mining", "patterns", "clusters", "features", "graphs", "streams"],
    "FSE": ["software", "testing", "bugs", "refactoring", "builds", "apis"],
    "ICML": ["learning", "models", "kernels", "gradients", "bandits", "networks"],
    "MM": ["video", "images", "audio", "retrieval", "multimedia", "scenes"],
    "MOBICOM": ["wireless", "mobility", "spectrum", "sensing", "protocols", "radios"],
}
_COMMON_NOUNS = ["data", "systems", "analysis", "approach", "framework", "evaluation"]
_VERBS = ["predicting", "improving", "scaling", "detecting", "modeling", "ranking"]
_ADJECTIVES = ["efficient", "robust", "scalable", "deep", "adaptive", "fast"]
_ADVERBS = ["provably", "jointly", "rapidly"]
_NUMBERS = ["2", "10", "100"]
_STOPWORDS = {"a", "an", "the", "of", "for", "with", "in", "on", "and", "via"}
_FILLERS = ["for", "with", "of", "via", "in", "the", "a"]


@dataclass(frozen=True)
class Paper:
    """One synthetic publication record."""

    paper_id: str
    conference: str
    year: int
    authors: tuple[str, ...]
    #: Per-author affiliation tuples, aligned with ``authors``.
    affiliations: tuple[tuple[str, ...], ...]
    is_full: bool
    title: str
    keywords: tuple[str, ...]
    references: tuple[str, ...]


@dataclass
class MagConfig:
    """Size and dynamics knobs of the generator.

    Defaults target laptop-scale experiments: tens of institutions, a few
    hundred authors, a few thousand papers across all conference-years.
    """

    num_institutions: int = 60
    authors_per_institution: int = 8
    papers_per_conference_year: int = 70
    years: tuple[int, ...] = tuple(range(2007, 2016))
    conferences: tuple[str, ...] = CONFERENCES
    full_paper_rate: float = 0.7
    multi_affiliation_rate: float = 0.02
    strength_persistence: float = 0.85
    strength_noise: float = 0.35
    references_per_paper: float = 3.0
    seed: int = 7


class SyntheticMAG:
    """A synthetic publication world with a planted relevance signal."""

    def __init__(self, config: MagConfig | None = None) -> None:
        self.config = config if config is not None else MagConfig()
        rng = np.random.default_rng(self.config.seed)
        self._rng = rng
        self.institutions = [f"I{i}" for i in range(self.config.num_institutions)]
        self._build_authors(rng)
        self._build_strengths(rng)
        self._build_papers(rng)

    # ------------------------------------------------------------------
    # World construction
    # ------------------------------------------------------------------
    def _build_authors(self, rng: np.random.Generator) -> None:
        self.authors: list[str] = []
        self.author_affiliations: dict[str, tuple[str, ...]] = {}
        self.institution_authors: dict[str, list[str]] = {i: [] for i in self.institutions}
        counter = 0
        for institution in self.institutions:
            for _ in range(self.config.authors_per_institution):
                author = f"A{counter}"
                counter += 1
                affiliations = [institution]
                if rng.random() < self.config.multi_affiliation_rate:
                    other = self.institutions[rng.integers(len(self.institutions))]
                    if other != institution:
                        affiliations.append(other)
                self.authors.append(author)
                self.author_affiliations[author] = tuple(affiliations)
                for a in affiliations:
                    self.institution_authors[a].append(author)
        # Author seniority: seniors are likelier to hold the last-author slot
        # and to publish repeatedly, feeding the paper's classic features.
        self.author_seniority = {
            author: float(rng.gamma(2.0, 1.0)) for author in self.authors
        }

    def _build_strengths(self, rng: np.random.Generator) -> None:
        """AR(1) institution strength per conference and year."""
        cfg = self.config
        self.strength: dict[tuple[str, str, int], float] = {}
        for conference in cfg.conferences:
            level = rng.lognormal(mean=0.0, sigma=1.0, size=len(self.institutions))
            for year in cfg.years:
                noise = rng.normal(0.0, cfg.strength_noise, size=len(self.institutions))
                level = cfg.strength_persistence * level + noise
                level = np.maximum(level, 0.01)
                for institution, value in zip(self.institutions, level):
                    self.strength[(institution, conference, year)] = float(value)

    def _sample_title(self, conference: str, rng: np.random.Generator) -> tuple[str, tuple[str, ...]]:
        words = [
            rng.choice(_ADJECTIVES),
            rng.choice(_TOPIC_NOUNS[conference]),
            rng.choice(_FILLERS),
            rng.choice(_VERBS),
            rng.choice(_COMMON_NOUNS),
        ]
        if rng.random() < 0.3:
            words.insert(0, rng.choice(_NUMBERS))
        if rng.random() < 0.4:
            words.append(rng.choice(_ADVERBS))
        title = " ".join(str(w) for w in words)
        # Keywords carry a variant suffix so the field-of-study space is
        # wide (real MAG has tens of thousands of fields); without it the
        # handful of topic nouns would collapse into a few mega-hub F nodes.
        keywords = tuple(
            f"{w}-{rng.integers(0, 5)}"
            for w in rng.choice(
                _TOPIC_NOUNS[conference] + _COMMON_NOUNS, size=rng.integers(2, 5), replace=False
            )
        )
        return title, keywords

    def _build_papers(self, rng: np.random.Generator) -> None:
        cfg = self.config
        self.papers: dict[str, Paper] = {}
        self.papers_by_conf_year: dict[tuple[str, int], list[str]] = {}
        paper_counter = 0
        for conference in cfg.conferences:
            earlier: list[str] = []
            for year in cfg.years:
                strengths = np.array(
                    [self.strength[(i, conference, year)] for i in self.institutions]
                )
                probabilities = strengths / strengths.sum()
                bucket: list[str] = []
                for _ in range(cfg.papers_per_conference_year):
                    paper_id = f"P{paper_counter}"
                    paper_counter += 1
                    lead = self.institutions[
                        int(rng.choice(len(self.institutions), p=probabilities))
                    ]
                    num_authors = int(rng.integers(1, 5))
                    authors = self._sample_author_team(lead, num_authors, probabilities, rng)
                    affiliations = tuple(self.author_affiliations[a] for a in authors)
                    title, keywords = self._sample_title(conference, rng)
                    references = self._sample_references(earlier, rng)
                    paper = Paper(
                        paper_id=paper_id,
                        conference=conference,
                        year=year,
                        authors=tuple(authors),
                        affiliations=affiliations,
                        is_full=bool(rng.random() < cfg.full_paper_rate),
                        title=title,
                        keywords=keywords,
                        references=references,
                    )
                    self.papers[paper_id] = paper
                    bucket.append(paper_id)
                self.papers_by_conf_year[(conference, year)] = bucket
                earlier.extend(bucket)

    def _sample_author_team(
        self,
        lead_institution: str,
        num_authors: int,
        institution_probabilities: np.ndarray,
        rng: np.random.Generator,
    ) -> list[str]:
        """Author team: mostly the lead institution, sometimes collaborators.

        Cross-institution collaboration correlates with strength because
        collaborators are drawn from the same strength distribution — that
        is the structural signal Figure 4 later surfaces as discriminative.
        """
        team: list[str] = []
        for position in range(num_authors):
            if position == 0 or rng.random() < 0.7:
                institution = lead_institution
            else:
                institution = self.institutions[
                    int(rng.choice(len(self.institutions), p=institution_probabilities))
                ]
            candidates = self.institution_authors[institution]
            weights = np.array([self.author_seniority[a] for a in candidates])
            # The last slot prefers senior authors (the paper's feature viii).
            if position == num_authors - 1:
                weights = weights**2
            weights = weights / weights.sum()
            choice = candidates[int(rng.choice(len(candidates), p=weights))]
            if choice not in team:
                team.append(choice)
        return team

    def _sample_references(
        self, earlier: list[str], rng: np.random.Generator
    ) -> tuple[str, ...]:
        if not earlier:
            return ()
        count = min(int(rng.poisson(self.config.references_per_paper)), len(earlier))
        if count == 0:
            return ()
        # Preferential attachment to recent papers: linear recency weights.
        weights = np.arange(1, len(earlier) + 1, dtype=np.float64)
        weights = weights / weights.sum()
        picks = rng.choice(len(earlier), size=count, replace=False, p=weights)
        return tuple(earlier[i] for i in sorted(picks))

    # ------------------------------------------------------------------
    # Ground truth (the three KDD-Cup directives)
    # ------------------------------------------------------------------
    def relevance(self, conference: str, year: int) -> dict[str, float]:
        """Institution relevance for one conference-year.

        Directive (i): each accepted *full* paper has an equal vote.
        Directive (ii): each author contributes equally to its paper.
        Directive (iii): multi-affiliation authors split their contribution.
        """
        scores = {institution: 0.0 for institution in self.institutions}
        for paper_id in self._papers_for(conference, year):
            paper = self.papers[paper_id]
            if not paper.is_full:
                continue
            author_share = 1.0 / len(paper.authors)
            for affiliations in paper.affiliations:
                affiliation_share = author_share / len(affiliations)
                for institution in affiliations:
                    scores[institution] += affiliation_share
        return scores

    def _papers_for(self, conference: str, year: int) -> list[str]:
        try:
            return self.papers_by_conf_year[(conference, year)]
        except KeyError:
            raise KeyError(
                f"no papers generated for ({conference!r}, {year}); "
                f"conferences={self.config.conferences}, years={self.config.years}"
            ) from None

    # ------------------------------------------------------------------
    # Graph views
    # ------------------------------------------------------------------
    def build_rank_graph(
        self, conference: str, year: int, reference_depth: int = 2
    ) -> HeteroGraph:
        """The I/A/P network of one conference-year (Section 4.2.2).

        Contains every institution (so feature rows exist even for
        institutions without papers that year), the authors and papers of
        the conference-year, and referenced papers up to
        ``reference_depth`` citation hops.
        """
        paper_ids = set(self._papers_for(conference, year))
        frontier = set(paper_ids)
        for _ in range(reference_depth):
            next_frontier = set()
            for paper_id in frontier:
                for ref in self.papers[paper_id].references:
                    if ref not in paper_ids:
                        next_frontier.add(ref)
            paper_ids |= next_frontier
            frontier = next_frontier

        node_labels: dict[str, str] = {i: "I" for i in self.institutions}
        edges: set[tuple[str, str]] = set()
        # Sorted iteration keeps node index assignment deterministic across
        # processes (set order is hash-randomised); embeddings align their
        # random streams to node indices, so this matters for replay.
        for paper_id in sorted(paper_ids):
            paper = self.papers[paper_id]
            node_labels[paper_id] = "P"
            for author in paper.authors:
                node_labels[author] = "A"
                edges.add((author, paper_id))
                for institution in self.author_affiliations[author]:
                    edges.add((institution, author))
            for ref in paper.references:
                if ref in paper_ids:
                    edges.add((paper_id, ref))
        return HeteroGraph.from_edges(
            node_labels, edges, labelset=MAG_RANK_SCHEMA.labelset
        )

    def build_rank_digraph(
        self, conference: str, year: int, reference_depth: int = 2
    ):
        """Edge-typed variant of :meth:`build_rank_graph` with directed
        citations (Section 5's future-work discussion).

        Citation edges point from the citing to the cited paper (role
        ``out`` at the source, ``in`` at the target); affiliation and
        authorship edges carry the symmetric role ``und`` at both ends.
        The MAG is the paper's only network with meaningful directions, and
        the paper reports *no significant difference* between directed and
        undirected features on it — the ablation bench reproduces that.
        """
        from repro.core.labels import LabelSet
        from repro.extensions.edge_typed import EdgeTypedGraph, TypedEdge

        undirected = self.build_rank_graph(conference, year, reference_depth)
        roleset = LabelSet(("out", "in", "und"))
        out_role, in_role, und_role = 0, 1, 2

        ids = undirected.node_ids
        index_of = {node_id: i for i, node_id in enumerate(ids)}
        labels = [undirected.label_of(i) for i in range(undirected.num_nodes)]
        paper_label = undirected.labelset.index("P")
        edges = []
        for u, v in undirected.edges():
            if labels[u] == paper_label and labels[v] == paper_label:
                citing, cited = ids[u], ids[v]
                # Orientation from the generator: the younger paper cites.
                if cited in self.papers[citing].references:
                    s, t = index_of[citing], index_of[cited]
                else:
                    s, t = index_of[cited], index_of[citing]
                if s < t:
                    edges.append(TypedEdge(s, t, out_role, in_role))
                else:
                    edges.append(TypedEdge(t, s, in_role, out_role))
            else:
                a, b = (u, v) if u < v else (v, u)
                edges.append(TypedEdge(a, b, und_role, und_role))
        return EdgeTypedGraph(
            undirected.labelset, roleset, ids, labels, edges
        )

    def build_label_graph(
        self,
        conferences: Iterable[str] | None = None,
        years: Iterable[int] | None = None,
        journal_rate: float = 0.3,
        num_journals: int = 8,
    ) -> HeteroGraph:
        """The six-label MAG view of Figure 2 (right) for label prediction.

        Papers connect to their venue — a per-year conference ``C`` node
        (real MAG venues are conference *instances*), or for a
        ``journal_rate`` fraction of referenced papers one of
        ``num_journals`` journal ``J`` nodes — to one field-of-study ``F``
        node per keyword, to their authors ``A``, and authors to their
        institutions ``I``.  Spreading venues over years and fields over
        keywords keeps every label class populated by many moderate-degree
        nodes, as in the real MAG, instead of a couple of mega-hubs.
        """
        cfg = self.config
        conferences = tuple(conferences) if conferences is not None else cfg.conferences[:2]
        years = tuple(years) if years is not None else cfg.years[-5:]
        rng = np.random.default_rng(cfg.seed + 1)

        paper_ids: set[str] = set()
        for conference in conferences:
            for year in years:
                paper_ids |= set(self._papers_for(conference, year))
        referenced = set()
        for paper_id in paper_ids:
            referenced.update(self.papers[paper_id].references)
        all_papers = paper_ids | referenced

        journal_names = [f"J:journal-{i}" for i in range(num_journals)]

        node_labels: dict[str, str] = {}
        edges: set[tuple[str, str]] = set()
        for paper_id in sorted(all_papers):
            paper = self.papers[paper_id]
            node_labels[paper_id] = "P"
            # Venue: core papers go to their conference instance (one node
            # per conference and year); referenced papers are journal-
            # published with some probability.
            if paper_id in paper_ids or rng.random() > journal_rate:
                venue = f"C:{paper.conference}:{paper.year}"
                node_labels[venue] = "C"
            else:
                venue = journal_names[int(rng.integers(num_journals))]
                node_labels[venue] = "J"
            edges.add((paper_id, venue))
            for keyword in paper.keywords:
                field_name = f"F:{keyword}"
                node_labels[field_name] = "F"
                edges.add((paper_id, field_name))
            for author in paper.authors:
                node_labels[author] = "A"
                edges.add((author, paper_id))
                for institution in self.author_affiliations[author]:
                    node_labels[institution] = "I"
                    edges.add((institution, author))
            for ref in paper.references:
                if ref in all_papers:
                    edges.add((paper_id, ref))
        return HeteroGraph.from_edges(
            node_labels, edges, labelset=MAG_LABEL_SCHEMA.labelset
        )


def stopwords() -> set[str]:
    """The stopword list used by the linguistic classic features."""
    return set(_STOPWORDS)
