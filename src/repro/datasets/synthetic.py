"""Generic synthetic heterogeneous graph generators.

These are the building blocks of the dataset stand-ins and of the test
suite: a degree-corrected label-affinity model (Chung-Lu flavoured) that
produces heavy-tailed heterogeneous networks, and small deterministic
fixtures (stars, paths, complete bipartite) used by unit tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import HeteroGraph
from repro.core.labels import LabelSet


def powerlaw_weights(
    size: int, exponent: float = 2.5, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Heavy-tailed positive weights via inverse-CDF sampling.

    ``P(w > x) ~ x^(1 - exponent)``; exponents around 2–3 match the skewed
    degree distributions the paper's heuristics target.
    """
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    if exponent <= 1.0:
        raise ValueError(f"exponent must be > 1, got {exponent}")
    rng = np.random.default_rng(rng)
    uniform = rng.random(size)
    return (1.0 - uniform) ** (-1.0 / (exponent - 1.0))


def affinity_graph(
    label_sizes: dict[str, int],
    affinity: dict[tuple[str, str], float],
    mean_degree: float = 8.0,
    degree_exponent: float = 2.5,
    rng: np.random.Generator | int | None = None,
    id_prefix: str = "n",
) -> HeteroGraph:
    """Degree-corrected heterogeneous random graph.

    Parameters
    ----------
    label_sizes:
        Number of nodes per label, e.g. ``{"L": 100, "O": 50}``.
    affinity:
        Relative edge propensity per unordered label pair; pairs absent from
        the mapping get zero (no edges).  Keys may be given in either order.
    mean_degree:
        Target average degree of the whole network.
    degree_exponent:
        Power-law exponent of the per-node propensity weights.
    rng:
        Seed or generator.
    id_prefix:
        Node ids are ``f"{id_prefix}:{label}{i}"``.

    Notes
    -----
    Edges are sampled Chung-Lu style: the expected number of edges between
    two nodes is proportional to the product of their weights times the
    affinity of their label pair, then scaled so the expected total degree
    matches ``mean_degree``.  Self loops and duplicates are discarded.
    """
    if not label_sizes:
        raise ValueError("label_sizes must not be empty")
    rng = np.random.default_rng(rng)
    labelset = LabelSet(tuple(label_sizes))

    # Flatten nodes with per-node propensity weights.
    node_labels: dict[str, str] = {}
    label_of: list[int] = []
    weights: list[float] = []
    members: dict[int, list[int]] = {i: [] for i in range(len(labelset))}
    for label, size in label_sizes.items():
        if size < 1:
            raise ValueError(f"label {label!r} must have at least one node")
        w = powerlaw_weights(size, degree_exponent, rng)
        for i in range(size):
            node_id = f"{id_prefix}:{label}{i}"
            index = len(label_of)
            node_labels[node_id] = label
            label_of.append(labelset.index(label))
            weights.append(float(w[i]))
            members[labelset.index(label)].append(index)
    ids = list(node_labels)
    weights_arr = np.asarray(weights)
    num_nodes = len(ids)

    def pair_affinity(a: str, b: str) -> float:
        return affinity.get((a, b), affinity.get((b, a), 0.0))

    # Expected edge budget per label pair, proportional to affinity and the
    # participating weight masses.
    target_edges = mean_degree * num_nodes / 2.0
    pair_masses: dict[tuple[int, int], float] = {}
    names = labelset.names
    for i, a in enumerate(names):
        for j, b in enumerate(names[i:], start=i):
            aff = pair_affinity(a, b)
            if aff <= 0:
                continue
            mass_a = weights_arr[members[i]].sum()
            mass_b = weights_arr[members[j]].sum()
            raw = aff * mass_a * mass_b
            if i == j:
                raw /= 2.0
            pair_masses[(i, j)] = raw
    total_mass = sum(pair_masses.values())
    if total_mass <= 0:
        raise ValueError("affinity admits no edges")

    edges: set[tuple[str, str]] = set()
    for (i, j), mass in pair_masses.items():
        budget = int(round(target_edges * mass / total_mass))
        if budget == 0:
            continue
        side_a = np.asarray(members[i])
        side_b = np.asarray(members[j])
        prob_a = weights_arr[side_a] / weights_arr[side_a].sum()
        prob_b = weights_arr[side_b] / weights_arr[side_b].sum()
        picks_a = rng.choice(side_a, size=budget, p=prob_a)
        picks_b = rng.choice(side_b, size=budget, p=prob_b)
        for u, v in zip(picks_a, picks_b):
            if u == v:
                continue
            edge = (ids[u], ids[v]) if u < v else (ids[v], ids[u])
            edges.add(edge)
    return HeteroGraph.from_edges(node_labels, edges, labelset=labelset)


def star(center_label: str, leaf_labels: list[str]) -> HeteroGraph:
    """Deterministic star fixture: one centre connected to each leaf."""
    node_labels = {"c": center_label}
    edges = []
    for i, label in enumerate(leaf_labels):
        node_labels[f"l{i}"] = label
        edges.append(("c", f"l{i}"))
    return HeteroGraph.from_edges(node_labels, edges)


def path(labels: list[str]) -> HeteroGraph:
    """Deterministic path fixture following the given label sequence."""
    node_labels = {f"p{i}": label for i, label in enumerate(labels)}
    edges = [(f"p{i}", f"p{i + 1}") for i in range(len(labels) - 1)]
    return HeteroGraph.from_edges(node_labels, edges)


def complete_bipartite(
    label_a: str, size_a: int, label_b: str, size_b: int
) -> HeteroGraph:
    """Deterministic complete bipartite fixture K_{a,b}."""
    node_labels = {}
    for i in range(size_a):
        node_labels[f"a{i}"] = label_a
    for j in range(size_b):
        node_labels[f"b{j}"] = label_b
    edges = [
        (f"a{i}", f"b{j}") for i in range(size_a) for j in range(size_b)
    ]
    return HeteroGraph.from_edges(node_labels, edges)
