"""Label schemas of the evaluation networks (Figure 2).

Each schema records the labels of one evaluation network and which label
pairs its label connectivity graph connects.  The generators in this package
are validated against these schemas: a generated LOAD network must have a
fully connected label connectivity graph with self loops, a generated IMDB
network must be a star through ``M``, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.connectivity import LabelConnectivity
from repro.core.labels import LabelSet


@dataclass(frozen=True)
class NetworkSchema:
    """Expected label structure of an evaluation network.

    Attributes
    ----------
    name:
        Dataset name used in tables.
    labelset:
        The label alphabet.
    allowed_pairs:
        Unordered label-name pairs that may carry edges; a pair ``(x, x)``
        marks an allowed self loop in the label connectivity graph.
    """

    name: str
    labelset: LabelSet
    allowed_pairs: frozenset[frozenset[str]]

    def allows(self, label_a: str, label_b: str) -> bool:
        """Whether an edge between these labels fits the schema."""
        return frozenset((label_a, label_b)) in self.allowed_pairs

    @property
    def has_loops(self) -> bool:
        return any(len(pair) == 1 for pair in self.allowed_pairs)

    def validate(self, connectivity: LabelConnectivity) -> list[str]:
        """Return schema violations of an observed label connectivity graph
        (empty list when the graph fits)."""
        violations = []
        for a, b, count in connectivity.label_pairs():
            if not self.allows(a, b):
                violations.append(f"unexpected {a}--{b} edges ({count})")
        return violations


def _pairs(*pairs: tuple[str, str]) -> frozenset[frozenset[str]]:
    return frozenset(frozenset(pair) for pair in pairs)


#: MAG subset for rank prediction: institutions, authors, papers.
#: Authors affiliate with institutions, author papers, papers cite papers.
MAG_RANK_SCHEMA = NetworkSchema(
    name="MAG-rank",
    labelset=LabelSet(("I", "A", "P")),
    allowed_pairs=_pairs(("I", "A"), ("A", "P"), ("P", "P")),
)

#: MAG subset for label prediction: six labels as in Figure 2 (right).
MAG_LABEL_SCHEMA = NetworkSchema(
    name="MAG",
    labelset=LabelSet(("A", "I", "C", "J", "F", "P")),
    allowed_pairs=_pairs(
        ("A", "I"),
        ("A", "P"),
        ("P", "P"),
        ("P", "C"),
        ("P", "J"),
        ("P", "F"),
    ),
)

#: LOAD entity co-occurrence network: fully connected with self loops.
LOAD_SCHEMA = NetworkSchema(
    name="LOAD",
    labelset=LabelSet(("L", "O", "A", "D")),
    allowed_pairs=_pairs(
        *[
            (a, b)
            for i, a in enumerate("LOAD")
            for b in "LOAD"[i:]
        ]
    ),
)

#: IMDB movie network: star through M, no satellite-satellite edges.
IMDB_SCHEMA = NetworkSchema(
    name="IMDB",
    labelset=LabelSet(("M", "A", "D", "W", "C", "K")),
    allowed_pairs=_pairs(("M", "A"), ("M", "D"), ("M", "W"), ("M", "C"), ("M", "K")),
)
