"""Synthetic IMDB movie network (Section 4.1).

The paper's IMDB subset covers Golden-Age movies (1930–1940): each movie
``M`` connects to its actors ``A``, directors ``D``, writers ``W``,
composers ``C``, and keywords ``K`` — and to nothing else, giving the
sparse star-shaped label connectivity graph of Figure 2 with no same-label
edges.

The stand-in reproduces that relational record structure.  Satellites are
reused across movies with Zipf-like popularity, and each role has a
characteristic cast size (many actors per movie, one director, ...), so a
masked node's label remains inferable from how many movies it touches and
what else those movies touch — the only signal a star topology offers,
which is exactly why IMDB is the paper's hardest label-prediction dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graph import HeteroGraph
from repro.datasets.load import sample_nodes_per_label
from repro.datasets.schema import IMDB_SCHEMA


@dataclass
class ImdbConfig:
    """Size knobs: roughly one satellite pool per role, shared by movies."""

    num_movies: int = 400
    num_actors: int = 600
    num_directors: int = 120
    num_writers: int = 180
    num_composers: int = 80
    num_keywords: int = 150
    actors_per_movie: tuple[int, int] = (3, 8)
    writers_per_movie: tuple[int, int] = (1, 3)
    keywords_per_movie: tuple[int, int] = (2, 5)
    composer_rate: float = 0.8
    popularity_exponent: float = 1.2
    seed: int = 23


class SyntheticIMDB:
    """Generator wrapper exposing the IMDB star network."""

    def __init__(self, config: ImdbConfig | None = None) -> None:
        self.config = config if config is not None else ImdbConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        pools = {
            "A": [f"imdb:A{i}" for i in range(cfg.num_actors)],
            "D": [f"imdb:D{i}" for i in range(cfg.num_directors)],
            "W": [f"imdb:W{i}" for i in range(cfg.num_writers)],
            "C": [f"imdb:C{i}" for i in range(cfg.num_composers)],
            "K": [f"imdb:K{i}" for i in range(cfg.num_keywords)],
        }
        popularity = {
            role: self._zipf_weights(len(members), cfg.popularity_exponent)
            for role, members in pools.items()
        }

        node_labels: dict[str, str] = {}
        edges: set[tuple[str, str]] = set()
        for role, members in pools.items():
            for member in members:
                node_labels[member] = role

        for movie_index in range(cfg.num_movies):
            movie = f"imdb:M{movie_index}"
            node_labels[movie] = "M"
            cast = {
                "A": rng.integers(cfg.actors_per_movie[0], cfg.actors_per_movie[1] + 1),
                "D": 1,
                "W": rng.integers(cfg.writers_per_movie[0], cfg.writers_per_movie[1] + 1),
                "C": 1 if rng.random() < cfg.composer_rate else 0,
                "K": rng.integers(cfg.keywords_per_movie[0], cfg.keywords_per_movie[1] + 1),
            }
            for role, count in cast.items():
                if count == 0:
                    continue
                members = pools[role]
                count = min(int(count), len(members))
                picks = rng.choice(
                    len(members), size=count, replace=False, p=popularity[role]
                )
                for pick in picks:
                    edges.add((movie, members[int(pick)]))

        self.graph = HeteroGraph.from_edges(
            node_labels, edges, labelset=IMDB_SCHEMA.labelset
        )

    @staticmethod
    def _zipf_weights(size: int, exponent: float) -> np.ndarray:
        ranks = np.arange(1, size + 1, dtype=np.float64)
        weights = ranks**-exponent
        return weights / weights.sum()

    @property
    def schema(self):
        return IMDB_SCHEMA

    def sample_nodes_per_label(self, per_label: int, rng=None):
        """Sample up to ``per_label`` non-isolated nodes of each label."""
        return sample_nodes_per_label(self.graph, per_label, rng)
