"""Synthetic LOAD entity co-occurrence network (Section 4.1).

The real LOAD network is built from disambiguated entity mentions in
Wikipedia's American-Civil-War articles: locations ``L``, organisations
``O``, actors ``A``, and dates ``D``, very dense (~40 edges per node), with
every label pair connected *including* self loops — the fully connected
label connectivity graph of Figure 2.

This stand-in uses the degree-corrected affinity model of
:mod:`repro.datasets.synthetic` with a mixing profile chosen so that labels
remain predictable from masked neighbourhoods alone: dates behave like
broad hubs touching everything, locations bind strongly to each other and
to organisations, actors co-occur with actors and dates.  Those asymmetries
are what the subgraph features (and the embeddings) must pick up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graph import HeteroGraph
from repro.datasets.schema import LOAD_SCHEMA
from repro.datasets.synthetic import affinity_graph


@dataclass
class LoadConfig:
    """Size knobs for the LOAD stand-in (defaults keep the census fast)."""

    num_locations: int = 300
    num_organizations: int = 200
    num_actors: int = 350
    num_dates: int = 150
    mean_degree: float = 14.0
    degree_exponent: float = 2.3
    seed: int = 11


#: Label-pair affinities defining the LOAD mixing profile.  All pairs are
#: positive (fully connected label connectivity graph, Figure 2) but with
#: label-characteristic emphasis.
LOAD_AFFINITY = {
    ("L", "L"): 3.0,
    ("L", "O"): 2.0,
    ("L", "A"): 0.3,
    ("L", "D"): 0.5,
    ("O", "O"): 0.3,
    ("O", "A"): 2.2,
    ("O", "D"): 0.4,
    ("A", "A"): 2.5,
    ("A", "D"): 3.0,
    ("D", "D"): 0.2,
}


class SyntheticLOAD:
    """Generator wrapper exposing the LOAD graph and sampling helpers."""

    def __init__(self, config: LoadConfig | None = None) -> None:
        self.config = config if config is not None else LoadConfig()
        cfg = self.config
        self.graph: HeteroGraph = affinity_graph(
            label_sizes={
                "L": cfg.num_locations,
                "O": cfg.num_organizations,
                "A": cfg.num_actors,
                "D": cfg.num_dates,
            },
            affinity=LOAD_AFFINITY,
            mean_degree=cfg.mean_degree,
            degree_exponent=cfg.degree_exponent,
            rng=cfg.seed,
            id_prefix="load",
        )

    @property
    def schema(self):
        return LOAD_SCHEMA

    def sample_nodes_per_label(
        self, per_label: int, rng: np.random.Generator | int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample up to ``per_label`` non-isolated nodes of each label.

        Returns ``(node_indices, label_indices)`` aligned arrays — the
        evaluation protocol of Section 4.3.2 (250 nodes per label).
        """
        return sample_nodes_per_label(self.graph, per_label, rng)


def sample_nodes_per_label(
    graph: HeteroGraph,
    per_label: int,
    rng: np.random.Generator | int | None = None,
    max_degree_percentile: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample up to ``per_label`` non-isolated nodes of each label of any
    heterogeneous graph (shared by all three label-prediction datasets).

    ``max_degree_percentile`` implements the sampling refinement of
    Section 4.3.5: hubs above the given global degree percentile are never
    chosen as roots (the paper finds prediction performance intact when
    the top 5% of degrees are skipped, while the runtime tail disappears).
    """
    if per_label < 1:
        raise ValueError(f"per_label must be >= 1, got {per_label}")
    if max_degree_percentile is not None and not 0 < max_degree_percentile <= 100:
        raise ValueError(
            f"max_degree_percentile must be in (0, 100], got {max_degree_percentile}"
        )
    rng = np.random.default_rng(rng)
    degrees = graph.degrees()
    cap = None
    if max_degree_percentile is not None and max_degree_percentile < 100:
        positive = degrees[degrees > 0]
        if positive.size:
            cap = float(np.percentile(positive, max_degree_percentile))
    nodes: list[int] = []
    labels: list[int] = []
    for label in range(len(graph.labelset)):
        members = graph.nodes_with_label(label)
        members = members[degrees[members] > 0]
        if cap is not None:
            capped = members[degrees[members] <= cap]
            # Fall back to the uncapped pool when a label is all hubs.
            if capped.size:
                members = capped
        if members.size == 0:
            continue
        take = min(per_label, members.size)
        picks = rng.choice(members, size=take, replace=False)
        nodes.extend(int(p) for p in picks)
        labels.extend([label] * take)
    return np.asarray(nodes, dtype=np.int64), np.asarray(labels, dtype=np.int64)
