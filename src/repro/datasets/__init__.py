"""Synthetic stand-ins for the paper's three evaluation networks.

The real data (Microsoft Academic Graph, the LOAD Wikipedia network, IMDB
lists) is proprietary or unavailable offline; these generators produce
networks with the same label schemas (Figure 2), skewed degrees, and — for
MAG — a planted relevance ground truth computed from the KDD-Cup
directives.  See DESIGN.md for the substitution rationale.
"""

from repro.datasets.imdb import ImdbConfig, SyntheticIMDB
from repro.datasets.load import LoadConfig, SyntheticLOAD, sample_nodes_per_label
from repro.datasets.mag import (
    CONFERENCES,
    MagConfig,
    Paper,
    SyntheticMAG,
    stopwords,
)
from repro.datasets.schema import (
    IMDB_SCHEMA,
    LOAD_SCHEMA,
    MAG_LABEL_SCHEMA,
    MAG_RANK_SCHEMA,
    NetworkSchema,
)
from repro.datasets.synthetic import (
    affinity_graph,
    complete_bipartite,
    path,
    powerlaw_weights,
    star,
)

__all__ = [
    "CONFERENCES",
    "IMDB_SCHEMA",
    "ImdbConfig",
    "LOAD_SCHEMA",
    "LoadConfig",
    "MAG_LABEL_SCHEMA",
    "MAG_RANK_SCHEMA",
    "MagConfig",
    "NetworkSchema",
    "Paper",
    "SyntheticIMDB",
    "SyntheticLOAD",
    "SyntheticMAG",
    "affinity_graph",
    "complete_bipartite",
    "path",
    "powerlaw_weights",
    "sample_nodes_per_label",
    "star",
    "stopwords",
]
