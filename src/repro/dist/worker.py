"""Shard-worker daemon: answer census RPCs for loaded graph shards.

``repro worker --listen ENDPOINT`` runs one of these per machine (or
per core, in a local topology test): an asyncio server on the shared
:mod:`repro.net` substrate — same newline-framed JSON protocol, same
typed error codes, same listener/connection loop as the feature-serving
daemon — whose job is purely computational: hold halo-complete
:class:`~repro.dist.partition.GraphPartition` shards in memory and
census the roots the coordinator sends.

Operations (blob payloads are pickled+zlib+base64, trusted deployments
only — the worker protocol is for coordinator↔worker links you control,
not the open internet):

* ``ping`` — liveness + shard inventory (the remote executor's
  heartbeat and scheduling both key off this).
* ``load_shard`` — install a shipped :class:`GraphPartition` under its
  partition id; idempotent, so a retried ship is harmless.
* ``census`` — census the given global roots against a loaded shard via
  the exact :func:`repro.dist.sharded._census_partition` the local pool
  runs, returning results plus the worker-side telemetry snapshot —
  this shared code path is what makes remote results bit-identical to
  the in-process executor.
* ``stats`` — counters for inspection.
* ``shutdown`` — acknowledge, drain, exit.

Census work runs on a single worker thread so one long shard census
never blocks the event loop: heartbeats keep answering while the CPU
burns, which is exactly the signal the coordinator needs to tell a
*slow* worker from a *dead* one.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ThreadPoolExecutor

from repro.dist.partition import GraphPartition
from repro.dist.sharded import _census_partition
from repro.exceptions import ReproError
from repro.net.endpoint import parse_endpoint
from repro.net.protocol import (
    MAX_LINE_BYTES,
    NetError,
    decode_blob,
    decode_message,
    encode_blob,
    error_response,
    ok_response,
    require,
)
from repro.net.server import serve_lines, start_listener
from repro.obs.log import get_logger
from repro.obs.telemetry import Telemetry, get_telemetry

logger = get_logger(__name__)

#: Operations a shard worker answers.
WORKER_OPS = ("ping", "load_shard", "census", "stats", "shutdown")


class ShardWorker:
    """One shard-holding census worker on a :mod:`repro.net` endpoint."""

    def __init__(
        self,
        endpoint,
        *,
        partitions: dict[int, GraphPartition] | None = None,
    ) -> None:
        self.endpoint = parse_endpoint(endpoint)
        self.shards: dict[int, GraphPartition] = dict(partitions or {})
        self.requests = 0
        self.censuses = 0
        #: Census RPCs currently executing (0 or 1 — one compute thread);
        #: visible through ``stats`` so orchestration tests and monitors
        #: can tell a busy worker from an idle one.
        self.inflight = 0
        self._stop: asyncio.Event | None = None
        self._executor: ThreadPoolExecutor | None = None

    # -- lifecycle --------------------------------------------------------
    async def run(self, ready: asyncio.Event | None = None) -> None:
        """Serve census RPCs until ``shutdown`` (or :meth:`stop`)."""
        self._stop = asyncio.Event()
        # One census at a time: shard censuses are CPU-bound, and the
        # coordinator assigns at most one task per worker anyway.  The
        # loop itself stays free for pings.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-worker"
        )
        listener = await start_listener(
            self.endpoint, self._handle_connection, limit=MAX_LINE_BYTES
        )
        self.endpoint = listener.endpoint
        logger.info("worker serving on %s (pid %d)", self.endpoint, os.getpid())
        if ready is not None:
            ready.set()
        try:
            await self._stop.wait()
        finally:
            listener.close()
            self._executor.shutdown(wait=True)
            await listener.wait_closed()
            logger.info(
                "worker stopped after %d requests (%d censuses)",
                self.requests,
                self.censuses,
            )

    def stop(self) -> None:
        if self._stop is not None:
            self._stop.set()

    # -- request handling -------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        await serve_lines(reader, writer, self._handle_line)

    async def _handle_line(self, line: bytes) -> bytes:
        telemetry = get_telemetry()
        request_id = None
        try:
            request = decode_message(line)
            request_id = request.get("id")
            op = request["op"]
            if op not in WORKER_OPS:
                raise NetError("unknown_op", f"unknown worker op {op!r}")
            handler = getattr(self, f"_op_{op}")
            response = ok_response(request_id, await handler(request))
        except NetError as exc:
            telemetry.count("worker/errors")
            response = error_response(request_id, exc.code, exc.message)
        except ReproError as exc:
            # Census/partition failures are the shard's problem, not the
            # transport's: ship them back typed so the coordinator can
            # fail the run with the real message instead of retrying.
            telemetry.count("worker/errors")
            response = error_response(request_id, "shard_error", str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("internal error in worker request")
            telemetry.count("worker/errors")
            response = error_response(
                request_id, "internal", f"{type(exc).__name__}: {exc}"
            )
        self.requests += 1
        telemetry.count("worker/requests")
        return response

    async def _op_ping(self, request: dict) -> dict:
        return {
            "pid": os.getpid(),
            "shards": sorted(self.shards),
            "requests": self.requests,
        }

    async def _op_stats(self, request: dict) -> dict:
        return {
            "shards": sorted(self.shards),
            "requests": self.requests,
            "censuses": self.censuses,
            "inflight": self.inflight,
        }

    async def _op_shutdown(self, request: dict) -> dict:
        self.stop()
        return {"stopping": True}

    async def _op_load_shard(self, request: dict) -> dict:
        shard_id = require(request, "shard", int)
        partition = decode_blob(require(request, "blob"))
        if not isinstance(partition, GraphPartition):
            raise NetError(
                "bad_request",
                f"load_shard blob decoded to {type(partition).__name__}, "
                "expected GraphPartition",
            )
        if partition.part_id != shard_id:
            raise NetError(
                "bad_request",
                f"shard id mismatch: frame says {shard_id}, "
                f"partition says {partition.part_id}",
            )
        self.shards[shard_id] = partition
        get_telemetry().count("worker/shards_loaded")
        logger.info("loaded shard %d", shard_id)
        return {"loaded": shard_id, "shards": sorted(self.shards)}

    async def _op_census(self, request: dict) -> dict:
        shard_id = require(request, "shard", int)
        partition = self.shards.get(shard_id)
        if partition is None:
            raise NetError(
                "shard_error",
                f"shard {shard_id} not loaded "
                f"(have {sorted(self.shards)}); ship it with load_shard",
            )
        roots, config, engine, sampled = decode_blob(require(request, "blob"))
        loop = asyncio.get_running_loop()

        def _run() -> bytes:
            telemetry = Telemetry()
            results = _census_partition(
                partition, roots, config, engine, telemetry, sampled
            )
            return encode_blob((results, telemetry.snapshot()))

        self.inflight += 1
        try:
            blob = await loop.run_in_executor(self._executor, _run)
        finally:
            self.inflight -= 1
        self.censuses += 1
        get_telemetry().count("worker/censuses")
        return {"shard": shard_id, "blob": blob}


def run_worker(
    endpoint,
    *,
    partitions: dict[int, GraphPartition] | None = None,
) -> ShardWorker:
    """Blocking entry point behind ``repro worker``: serve until shutdown."""
    worker = ShardWorker(endpoint, partitions=partitions)
    asyncio.run(worker.run())
    return worker
