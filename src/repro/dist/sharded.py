"""Sharded census driver: fan halo-complete partitions across workers.

:func:`subgraph_census_sharded` is the scale-out counterpart of
``SubgraphFeatureExtractor.census_many``: instead of fanning *roots*
over one shared in-memory graph (every worker receives the whole
pickled graph), it fans *partitions* — each worker receives one compact
shard (owned nodes + halo, built once by :mod:`repro.dist.partition`)
and censuses only the roots its shard owns.  Halo nodes are read-only
context, per-root results are translated back to global node ids, and
the merged list is restored to input order — **bit-identical** to the
single-shard fast engine.

Partition sets are content-addressed in the
:class:`~repro.runtime.store.ArtifactStore` under the ``"partition"``
stage (keyed by graph fingerprint, ``k``, strategy, halo depth, and
``d_max``), so warm reruns skip the partitioning step entirely.

Telemetry: per-partition wall clock (``dist/partition_wall`` timer and
the ``dist/straggler_s`` peak gauge), owned/halo node counts and the
halo expansion ratio (``dist/*`` counters/gauges), all merged into the
run manifest alongside the census-cache counters.
"""

from __future__ import annotations

from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from repro.core.census import CensusConfig, subgraph_census
from repro.core.graph import HeteroGraph
from repro.core.sampled import SampledCensusConfig
from repro.dist.partition import (
    GraphPartition,
    PartitionConfig,
    PartitionSet,
    partition_graph,
    partition_store_config,
)
from repro.exceptions import CensusError, PartitionError
from repro.obs.telemetry import Telemetry, get_telemetry
from repro.runtime.context import VALID_EXECUTORS, RunContext, resolve_engine
from repro.runtime.store import STAGE_PARTITION


def ensure_partitions(
    graph: HeteroGraph,
    config: PartitionConfig,
    census_config: CensusConfig,
    ctx: RunContext | None = None,
) -> PartitionSet:
    """Fetch the partition set from the context store, or build it.

    Store hits/misses land under ``artifact/partition/*`` like every
    other stage, so a warm rerun's skipped partitioning is auditable.
    """
    store = ctx.store if ctx is not None else None
    if store is None:
        return partition_graph(graph, config, census_config)
    stage_config = partition_store_config(config, census_config)
    cached = store.get(graph.fingerprint(), STAGE_PARTITION, stage_config)
    if cached is not None:
        return cached
    pset = partition_graph(graph, config, census_config)
    store.put(graph.fingerprint(), STAGE_PARTITION, stage_config, pset)
    return pset


def _census_partition(
    partition: GraphPartition,
    roots: list,
    config: CensusConfig,
    engine: str | None,
    telemetry: Telemetry,
    sampled: SampledCensusConfig | None = None,
) -> dict:
    """Census the owned ``roots`` (global ids) against one shard.

    Sampled censuses seed their probe RNG from the *global* root id
    (``sample_root_key``), not the shard-local index — local indices
    depend on the partition count, and the determinism contract promises
    bit-identical estimates at any ``k``.
    """
    results: dict = {}
    part_graph = partition.graph
    with telemetry.span("dist/partition_wall") as span:
        for root in roots:
            local = partition.local(root)
            with telemetry.span("census/root"):
                try:
                    results[root] = subgraph_census(
                        part_graph,
                        local,
                        config,
                        engine=engine,
                        sampled=sampled,
                        sample_root_key=root,
                    )
                except CensusError as exc:
                    # Shard-local node ids are meaningless to the caller:
                    # re-raise with the global root and the shard named.
                    raise CensusError(
                        f"{exc} [global root {root}, "
                        f"partition {partition.part_id}]"
                    ) from exc
    telemetry.count("dist/partition_tasks")
    telemetry.count("dist/roots_censused", len(roots))
    telemetry.gauge_max("dist/straggler_s", span.elapsed)
    return results


def _partition_census_worker(
    partition: GraphPartition,
    roots: list,
    config: CensusConfig,
    engine: str | None,
    sampled: SampledCensusConfig | None = None,
) -> tuple[dict, dict]:
    """Pool task: census one shard's roots, ship results + telemetry."""
    telemetry = Telemetry()
    results = _census_partition(
        partition, roots, config, engine, telemetry, sampled
    )
    return results, telemetry.snapshot()


def sharded_census_map(
    graph: HeteroGraph,
    roots: Sequence[int],
    config: CensusConfig,
    partitions: PartitionSet,
    *,
    engine: str | None = None,
    sampled: SampledCensusConfig | None = None,
    n_jobs: int = 1,
    executor: str = "local",
    workers: Sequence | None = None,
) -> dict:
    """Census unique global ``roots`` through the shards; return a dict.

    Roots are routed to their owning partition; shard tasks are
    dispatched heaviest-first (summed root degree) so straggler shards
    start early, mirroring the hub-first scheduling of the root-fanning
    driver.

    ``executor="local"`` (the default) fans tasks over a process pool —
    ``n_jobs == 1`` (or a single loaded shard) runs in-process, no pool
    startup for small work.  ``executor="remote"`` ships the *same*
    task list to ``workers`` (a sequence of ``repro worker`` endpoint
    specs) through :class:`repro.dist.remote.RemoteExecutor`; the shard
    census code is shared, so results are bit-identical either way.
    """
    resolve_engine(executor, VALID_EXECUTORS, param="executor")
    telemetry = get_telemetry()
    telemetry.annotate("dist/partitions", len(partitions))
    telemetry.annotate("dist/strategy", partitions.config.strategy)
    telemetry.annotate("dist/executor", executor)
    by_partition: dict[int, list] = {}
    for root in roots:
        root = int(root)
        by_partition.setdefault(partitions.owner_of(root), []).append(root)
    tasks = [
        (partitions.partitions[part_id], owned_roots)
        for part_id, owned_roots in by_partition.items()
    ]
    degrees = graph.flat().degrees
    tasks.sort(
        key=lambda task: sum(degrees[r] for r in task[1]), reverse=True
    )
    results: dict = {}
    if executor == "remote":
        from repro.dist.remote import RemoteExecutor

        if not workers:
            raise PartitionError(
                "executor='remote' needs worker endpoints "
                "(--workers HOST:PORT[,HOST:PORT...])"
            )
        return RemoteExecutor(workers).census_map(
            tasks, config, engine=engine, sampled=sampled, telemetry=telemetry
        )
    if n_jobs == 1 or len(tasks) <= 1:
        for partition, owned_roots in tasks:
            results.update(
                _census_partition(
                    partition, owned_roots, config, engine, telemetry, sampled
                )
            )
    else:
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(tasks))) as pool:
            futures = [
                pool.submit(
                    _partition_census_worker,
                    partition,
                    owned_roots,
                    config,
                    engine,
                    sampled,
                )
                for partition, owned_roots in tasks
            ]
            for future in futures:
                shard_results, snapshot = future.result()
                results.update(shard_results)
                telemetry.merge(snapshot)
    return results


def subgraph_census_sharded(
    graph: HeteroGraph,
    nodes: Sequence[int],
    config: CensusConfig | None = None,
    *,
    partitions: "int | PartitionConfig | PartitionSet",
    engine: str | None = None,
    sampled: SampledCensusConfig | None = None,
    n_jobs: int | None = None,
    executor: str | None = None,
    workers: Sequence | None = None,
    ctx: RunContext | None = None,
) -> list[Counter]:
    """Rooted censuses for ``nodes``, computed over graph shards.

    Parameters
    ----------
    graph:
        The full heterogeneous network (used for routing and, on a cold
        store, for cutting the shards).
    nodes:
        Root node indices; results align positionally, duplicates are
        censused once and fanned out as independent copies.
    config:
        Census parameters; defaults to ``CensusConfig()``.
    partitions:
        Shard count, a :class:`~repro.dist.partition.PartitionConfig`,
        or a prebuilt :class:`~repro.dist.partition.PartitionSet`.
    engine:
        Census engine each worker runs (default: the census default).
    sampled:
        Estimator knobs for ``engine="sampled"``; the per-root budget
        rides into each shard task unchanged and the probe RNG seeds
        from global root ids, so estimates are bit-identical at any
        partition count.
    n_jobs:
        Worker processes for the shard fan-out (``0``/``None`` = all
        cores via the context).
    executor:
        ``"local"`` (process pool, the default) or ``"remote"`` (ship
        tasks to ``repro worker`` daemons over :mod:`repro.net`).
    workers:
        Worker endpoint specs for ``executor="remote"``.
    ctx:
        Optional :class:`~repro.runtime.context.RunContext`; supplies
        the artifact store memoising partition sets and default
        ``engine``/``n_jobs``.

    Returns
    -------
    list[Counter]
        Per-root censuses, bit-identical to
        ``subgraph_census(graph, root, config)`` for every root.
    """
    if config is None:
        config = CensusConfig()
    ctx = RunContext.ensure(
        ctx, engine=engine, n_jobs=n_jobs, executor=executor, workers=workers
    )
    if isinstance(partitions, PartitionSet):
        pset = partitions
        if pset.fingerprint != graph.fingerprint():
            raise PartitionError(
                "partition set was built for a different graph"
            )
    else:
        if isinstance(partitions, PartitionConfig):
            pconfig = partitions
        else:
            pconfig = PartitionConfig(num_partitions=int(partitions))
        pset = ensure_partitions(graph, pconfig, config, ctx)

    positions: dict[int, list[int]] = {}
    for pos, node in enumerate(nodes):
        positions.setdefault(int(node), []).append(pos)
    computed = sharded_census_map(
        graph,
        list(positions),
        config,
        pset,
        engine=ctx.engine,
        sampled=sampled,
        n_jobs=ctx.resolved_n_jobs(default=1),
        executor=ctx.resolved_executor(),
        workers=ctx.workers,
    )
    results: list = [None] * len(nodes)
    for node, node_positions in positions.items():
        census = computed[node]
        results[node_positions[0]] = census
        for pos in node_positions[1:]:
            # copy() rather than Counter(): a SampledCensus copy keeps
            # its confidence report.
            results[pos] = census.copy()
    return results
