"""Remote shard executor: fan census tasks across worker processes.

This is the ``executor="remote"`` arm of
:func:`repro.dist.sharded.sharded_census_map`: instead of a local
process pool, shard tasks go over the :mod:`repro.net` wire to
:class:`~repro.dist.worker.ShardWorker` daemons (``repro worker``) that
may live on other machines.  The task list, the per-shard census code
(:func:`~repro.dist.sharded._census_partition` runs *inside the
worker*), and the merge are identical to the local pool — which is the
whole bit-identity argument: the only thing that changes is where the
loop body executes.

Scheduling is pull-based: one coordinator thread per worker drains a
shared task queue, shipping each shard (pickled, once per worker) on
first use and reusing it for later tasks.  Fault handling layers:

* **Per-shard request timeouts** — a census RPC is bounded by
  ``request_timeout``; a worker that blows the deadline is treated as
  dead for scheduling purposes.
* **Bounded retry with backoff** — transport-level failures reconnect
  and retry under the client's :class:`~repro.net.client.RetryPolicy`
  before the worker is declared dead.
* **Heartbeats** — a monitor thread pings every worker each
  ``heartbeat_interval`` over a separate connection (workers answer
  pings even mid-census), so a crashed worker is detected while its
  census RPC is still waiting out the timeout.
* **Reassignment** — a dead worker's in-flight task goes back on the
  queue and a survivor picks it up; each task survives at most
  ``max_task_retries`` reassignments before the run fails with
  :class:`~repro.exceptions.RPCError`.  Results are per-root and
  deterministic, so a task that ran 1.5 times merges identically.

Worker deaths, shard ships, reassignments, and census RPC latencies all
land under ``net/*`` in the run manifest.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.core.census import CensusConfig
from repro.core.sampled import SampledCensusConfig
from repro.dist.partition import GraphPartition
from repro.exceptions import RPCError
from repro.net.client import NetClient, RetryPolicy
from repro.net.endpoint import Endpoint, parse_endpoint
from repro.net.protocol import NetError, decode_blob, encode_blob
from repro.obs.log import get_logger
from repro.obs.telemetry import Telemetry, get_telemetry

logger = get_logger(__name__)

#: Protocol error codes that condemn the *task*, not the worker: the
#: census itself failed, and retrying elsewhere would fail identically.
_TASK_FATAL_CODES = ("shard_error", "bad_request", "unknown_op", "unknown_node")


@dataclass
class _WorkerState:
    """Coordinator-side view of one worker endpoint."""

    endpoint: Endpoint
    alive: bool = True
    loaded: set = field(default_factory=set)
    tasks_done: int = 0


class _TaskQueue:
    """Shared task pool with reassignment and fatal-abort semantics.

    ``next()`` blocks while tasks are in flight elsewhere (a dying
    worker may requeue its task); it returns ``None`` only when every
    task completed or the run aborted.
    """

    def __init__(self, tasks: list) -> None:
        self._pending = deque(tasks)
        self._cond = threading.Condition()
        self._inflight = 0
        self.fatal: Exception | None = None

    def next(self):
        with self._cond:
            while True:
                if self.fatal is not None:
                    return None
                if self._pending:
                    self._inflight += 1
                    return self._pending.popleft()
                if self._inflight == 0:
                    return None
                self._cond.wait()

    def complete(self) -> None:
        with self._cond:
            self._inflight -= 1
            self._cond.notify_all()

    def requeue(self, task) -> None:
        with self._cond:
            self._pending.appendleft(task)
            self._inflight -= 1
            self._cond.notify_all()

    def abort(self, exc: Exception) -> None:
        with self._cond:
            if self.fatal is None:
                self.fatal = exc
            self._cond.notify_all()


@dataclass
class _Task:
    """One shard census assignment plus its reassignment history."""

    partition: GraphPartition
    roots: list
    attempts: int = 0


class RemoteExecutor:
    """Census executor running shard tasks on remote workers.

    ``workers`` is a sequence of endpoint specs (anything
    :func:`repro.net.parse_endpoint` accepts).  The executor is
    per-call stateless — construct, :meth:`census_map`, discard.
    """

    def __init__(
        self,
        workers,
        *,
        request_timeout: float = 600.0,
        connect_timeout: float = 5.0,
        retry: RetryPolicy | None = None,
        heartbeat_interval: float = 1.0,
        max_task_retries: int = 3,
    ) -> None:
        endpoints = [parse_endpoint(spec) for spec in workers]
        if not endpoints:
            raise ValueError("remote executor needs at least one worker endpoint")
        if request_timeout <= 0:
            raise ValueError(f"request_timeout must be > 0, got {request_timeout}")
        if max_task_retries < 0:
            raise ValueError(
                f"max_task_retries must be >= 0, got {max_task_retries}"
            )
        self.workers = [_WorkerState(endpoint) for endpoint in endpoints]
        self.request_timeout = float(request_timeout)
        self.connect_timeout = float(connect_timeout)
        self.retry = retry if retry is not None else RetryPolicy()
        self.heartbeat_interval = float(heartbeat_interval)
        self.max_task_retries = int(max_task_retries)

    # -- public API --------------------------------------------------------
    def census_map(
        self,
        tasks: list,
        config: CensusConfig,
        *,
        engine: str | None = None,
        sampled: SampledCensusConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> dict:
        """Run ``[(partition, roots), ...]`` on the workers; merge results.

        Raises :class:`RPCError` when the work cannot complete: every
        worker died with tasks outstanding, a task exhausted its
        reassignment budget, or a worker reported a census failure.
        """
        telemetry = telemetry if telemetry is not None else get_telemetry()
        queue = _TaskQueue([_Task(partition, roots) for partition, roots in tasks])
        results: dict = {}
        merge_lock = threading.Lock()
        stop_heartbeat = threading.Event()
        threads = [
            threading.Thread(
                target=self._serve_tasks,
                args=(worker, queue, config, engine, sampled,
                      results, merge_lock, telemetry),
                name=f"repro-remote-{i}",
                daemon=True,
            )
            for i, worker in enumerate(self.workers)
        ]
        monitor = threading.Thread(
            target=self._heartbeat,
            args=(stop_heartbeat, telemetry),
            name="repro-remote-heartbeat",
            daemon=True,
        )
        for thread in threads:
            thread.start()
        monitor.start()
        try:
            for thread in threads:
                thread.join()
        finally:
            stop_heartbeat.set()
            monitor.join()
        if queue.fatal is not None:
            raise RPCError(str(queue.fatal)) from queue.fatal
        leftover = queue.next()
        if leftover is not None:
            raise RPCError(
                f"all {len(self.workers)} workers died with shard tasks "
                f"outstanding (first unfinished: partition "
                f"{leftover.partition.part_id})"
            )
        telemetry.annotate(
            "net/workers_alive", sum(1 for w in self.workers if w.alive)
        )
        return results

    # -- worker conversation ----------------------------------------------
    def _serve_tasks(
        self,
        worker: _WorkerState,
        queue: _TaskQueue,
        config: CensusConfig,
        engine: str | None,
        sampled: SampledCensusConfig | None,
        results: dict,
        merge_lock: threading.Lock,
        telemetry: Telemetry,
    ) -> None:
        client = NetClient(
            worker.endpoint,
            connect_timeout=self.connect_timeout,
            request_timeout=self.request_timeout,
            retry=self.retry,
        )
        try:
            try:
                inventory = client.ping(timeout=self.connect_timeout)
            except NetError as exc:
                logger.warning("worker %s unreachable: %s", worker.endpoint, exc)
                worker.alive = False
                telemetry.count("net/worker_deaths")
                return
            worker.loaded.update(inventory.get("shards", ()))
            while worker.alive:
                task = queue.next()
                if task is None:
                    return
                try:
                    self._run_task(
                        client, worker, task, config, engine, sampled,
                        results, merge_lock, telemetry,
                    )
                except NetError as exc:
                    if exc.code in _TASK_FATAL_CODES:
                        # The shard itself failed; no worker can save it.
                        queue.abort(exc)
                        queue.complete()
                        return
                    # Transport failure / timeout: this worker is gone.
                    if worker.alive:  # heartbeat may have beaten us to it
                        worker.alive = False
                        telemetry.count("net/worker_deaths")
                    task.attempts += 1
                    if task.attempts > self.max_task_retries:
                        queue.abort(
                            RPCError(
                                f"partition {task.partition.part_id} failed on "
                                f"{task.attempts} workers (last: "
                                f"{worker.endpoint}): {exc}"
                            )
                        )
                        queue.complete()
                    else:
                        logger.warning(
                            "worker %s lost (%s); reassigning partition %d",
                            worker.endpoint, exc, task.partition.part_id,
                        )
                        telemetry.count("net/reassignments")
                        queue.requeue(task)
                    return
                else:
                    worker.tasks_done += 1
                    queue.complete()
        finally:
            client.close()

    def _run_task(
        self,
        client: NetClient,
        worker: _WorkerState,
        task: _Task,
        config: CensusConfig,
        engine: str | None,
        sampled: SampledCensusConfig | None,
        results: dict,
        merge_lock: threading.Lock,
        telemetry: Telemetry,
    ) -> None:
        shard_id = task.partition.part_id
        if shard_id not in worker.loaded:
            client.call(
                {
                    "op": "load_shard",
                    "shard": shard_id,
                    "blob": encode_blob(task.partition),
                },
            )
            worker.loaded.add(shard_id)
            telemetry.count("net/shards_shipped")
        with telemetry.span("net/census_rpc"):
            response = client.call(
                {
                    "op": "census",
                    "shard": shard_id,
                    "blob": encode_blob((task.roots, config, engine, sampled)),
                },
            )
        shard_results, snapshot = decode_blob(response["blob"])
        with merge_lock:
            results.update(shard_results)
            telemetry.merge(snapshot)
        telemetry.count("net/tasks_dispatched")

    # -- liveness monitoring ----------------------------------------------
    def _heartbeat(self, stop: threading.Event, telemetry: Telemetry) -> None:
        """Ping live workers on separate connections until stopped.

        Workers answer pings even while a census burns their one compute
        thread, so a missed heartbeat means the *process* is gone — the
        worker is marked dead immediately instead of after the census
        RPC times out.
        """
        clients: dict[int, NetClient] = {}
        try:
            while not stop.wait(self.heartbeat_interval):
                for i, worker in enumerate(self.workers):
                    if not worker.alive:
                        continue
                    client = clients.get(i)
                    if client is None:
                        client = clients[i] = NetClient(
                            worker.endpoint,
                            connect_timeout=self.connect_timeout,
                            request_timeout=self.connect_timeout,
                            retry=RetryPolicy(retries=0),
                        )
                    try:
                        client.ping(timeout=self.connect_timeout)
                        telemetry.count("net/heartbeats")
                    except NetError:
                        telemetry.count("net/heartbeat_failures")
                        logger.warning(
                            "heartbeat lost for worker %s", worker.endpoint
                        )
                        if worker.alive:
                            worker.alive = False
                            telemetry.count("net/worker_deaths")
        finally:
            for client in clients.values():
                client.close()
