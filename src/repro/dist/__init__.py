"""Distributed census: halo-complete graph shards + partition fan-out.

The census is local by construction (a rooted subgraph with ``e_max``
edges never leaves the ``e_max``-ball of its root), so it shards: cut
the node set into ``k`` owned ranges, expand each shard with the halo
its roots can reach, and every shard censuses its own roots against a
compact local adjacency — bit-identical to the single-shard engines.
See ``docs/distributed_census.md`` for the partitioning scheme, the
halo-depth derivation, and the merge semantics; a socket/RPC dispatch
layer (ROADMAP item 2) plugs in above :func:`sharded_census_map`.
"""

from repro.dist.partition import (
    GraphPartition,
    PartitionConfig,
    PartitionGraph,
    PartitionSet,
    STRATEGIES,
    partition_graph,
    partition_store_config,
    required_halo_depth,
)
from repro.dist.sharded import (
    ensure_partitions,
    sharded_census_map,
    subgraph_census_sharded,
)

__all__ = [
    "GraphPartition",
    "PartitionConfig",
    "PartitionGraph",
    "PartitionSet",
    "STRATEGIES",
    "ensure_partitions",
    "partition_graph",
    "partition_store_config",
    "required_halo_depth",
    "sharded_census_map",
    "subgraph_census_sharded",
]
