"""Distributed census: halo-complete graph shards + partition fan-out.

The census is local by construction (a rooted subgraph with ``e_max``
edges never leaves the ``e_max``-ball of its root), so it shards: cut
the node set into ``k`` owned ranges, expand each shard with the halo
its roots can reach, and every shard censuses its own roots against a
compact local adjacency — bit-identical to the single-shard engines.
See ``docs/distributed_census.md`` for the partitioning scheme, the
halo-depth derivation, and the merge semantics.

Above :func:`sharded_census_map` sits the cross-machine dispatch layer:
``repro worker`` runs a :class:`~repro.dist.worker.ShardWorker` daemon
on a :mod:`repro.net` endpoint, and ``executor="remote"`` routes the
same shard tasks through :class:`~repro.dist.remote.RemoteExecutor`
(shard shipping, per-shard timeouts, heartbeats, dead-worker
reassignment) — results stay bit-identical to the local pool.
"""

from repro.dist.partition import (
    GraphPartition,
    PartitionConfig,
    PartitionGraph,
    PartitionSet,
    STRATEGIES,
    partition_graph,
    partition_store_config,
    required_halo_depth,
)
from repro.dist.remote import RemoteExecutor
from repro.dist.sharded import (
    ensure_partitions,
    sharded_census_map,
    subgraph_census_sharded,
)
from repro.dist.worker import WORKER_OPS, ShardWorker, run_worker

__all__ = [
    "GraphPartition",
    "PartitionConfig",
    "PartitionGraph",
    "PartitionSet",
    "STRATEGIES",
    "RemoteExecutor",
    "ShardWorker",
    "WORKER_OPS",
    "ensure_partitions",
    "partition_graph",
    "partition_store_config",
    "required_halo_depth",
    "run_worker",
    "sharded_census_map",
    "subgraph_census_sharded",
]
