"""Graph partitioning with halo-complete shards for the rooted census.

A rooted census (``repro.core.census``) only ever touches the ball of
radius ``e_max`` around its root: a connected subgraph with at most
``e_max`` edges cannot contain a node further than ``e_max`` hops away.
That locality is what makes the census shardable: split the node set
into ``k`` *owned* ranges, expand every shard with the halo nodes its
owned roots can reach, and each shard can census its own roots without
ever consulting the rest of the graph — the per-partition results are
**bit-identical** to the single-shard engines (asserted by the
randomized parity suite in ``tests/test_census_partitioned.py``).

Halo depth derivation
---------------------
The halo must contain every node a census subgraph rooted at an owned
node can include:

* ``e_max`` bounds the depth outright — reaching a node at hop distance
  ``d`` costs at least ``d`` of the ``e_max`` edge budget, so depth
  ``h = e_max`` always suffices (edges between two depth-``h`` nodes
  would need ``e_max + 1`` edges to reach and are never enumerated);
* the ``d_max`` hub heuristic tightens the *frontier*: the census never
  expands past a node whose **global** degree exceeds ``d_max`` (the
  root itself is exempt), so halo BFS stops at hubs too — hub-heavy
  graphs get dramatically smaller halos.  Owned nodes are all treated
  as potential roots (always expanded), which can only enlarge the
  halo, never corrupt a count.

Because the hub check compares *global* degree, every partition carries
the global degree of each of its nodes; a hub whose local degree drops
below ``d_max`` inside a shard must still be treated as a hub.

Local ids
---------
Each partition re-indexes its nodes into a dense local id space (global
order preserved) and rebuilds a compact
:class:`~repro.core.graph.FlatAdjacency` over it once, at partition
time.  Canonical census codes only mention labels — never node ids —
so re-indexing cannot perturb emitted keys, and the per-node adjacency
order (sorted by label, then global index) is preserved by filtering,
keeping the grouping heuristic's same-label runs contiguous.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.census import CensusConfig
from repro.core.graph import FlatAdjacency, FlatGraph, HeteroGraph
from repro.core.labels import LabelSet
from repro.exceptions import PartitionError
from repro.obs.telemetry import get_telemetry
from repro.runtime.context import resolve_engine

#: Valid partitioning strategies: ``"contiguous"`` slices the node index
#: space into k near-equal ranges (preserves locality of index-clustered
#: datasets); ``"hash"`` assigns node ``v`` to partition ``v % k``
#: (spreads hubs and index-correlated load).
STRATEGIES = ("contiguous", "hash")


def required_halo_depth(config: CensusConfig) -> int:
    """The halo depth guaranteeing local completeness for ``config``.

    ``e_max`` hops — see the module docstring for the derivation.
    """
    return config.max_edges


@dataclass(frozen=True)
class PartitionConfig:
    """How a graph is split into census shards.

    Attributes
    ----------
    num_partitions:
        ``k`` — how many shards to cut the node set into.
    strategy:
        ``"contiguous"`` (node ranges) or ``"hash"`` (``node % k``).
    halo_depth:
        Hop depth of the halo, or ``None`` (default) to derive it from
        the census config via :func:`required_halo_depth`.  Values below
        the derived depth are rejected at partition time — a too-shallow
        halo would silently undercount.
    """

    num_partitions: int
    strategy: str = "contiguous"
    halo_depth: int | None = None

    def __post_init__(self) -> None:
        if self.num_partitions < 1:
            raise PartitionError(
                f"num_partitions must be >= 1, got {self.num_partitions}"
            )
        resolve_engine(
            self.strategy,
            STRATEGIES,
            param="partition strategy",
            error=PartitionError,
        )
        if self.halo_depth is not None and self.halo_depth < 1:
            raise PartitionError(
                f"halo_depth must be >= 1, got {self.halo_depth}"
            )


class PartitionGraph(FlatGraph):
    """Census-compatible view of one shard (owned nodes plus halo).

    A plain :class:`~repro.core.graph.FlatGraph` over the shard's compact
    local adjacency — the flat-adjacency contract is exactly the surface
    the census engines touch.  The one shard-specific wrinkle is that
    ``degree``/``degrees`` report the node's degree in the *full* graph
    (the snapshot's ``degrees`` are recorded globally at partition time,
    see the module docstring) so ``d_max`` hub checks inside a shard
    match the single-shard engines bit for bit, while node ids are
    partition-local.
    """

    storage_kind = "partition"

    __slots__ = ()


@dataclass
class GraphPartition:
    """One shard: owned node set, halo, local graph, and id maps.

    ``global_ids[local] -> global`` and ``local_of[global] -> local``
    translate between the shard's dense id space and the parent graph;
    ``owned_locals`` are the local ids this shard is authoritative for
    (workers census only those — halo nodes are read-only context).
    """

    part_id: int
    graph: PartitionGraph
    global_ids: list
    local_of: dict
    owned_locals: list
    halo_depth: int
    stats: dict = field(default_factory=dict)

    @property
    def owned_count(self) -> int:
        return len(self.owned_locals)

    @property
    def halo_count(self) -> int:
        return len(self.global_ids) - len(self.owned_locals)

    def local(self, global_index: int) -> int:
        """Local id of a global node index (must be present in the shard)."""
        try:
            return self.local_of[int(global_index)]
        except KeyError:
            raise PartitionError(
                f"node {global_index} is not in partition {self.part_id}"
            ) from None


@dataclass
class PartitionSet:
    """All shards of one graph under one :class:`PartitionConfig`.

    Owner assignment is an exact cover: every global node index belongs
    to exactly one partition's owned set, so routing roots via
    :meth:`owner_of` can never drop or double-census a root.
    """

    config: PartitionConfig
    fingerprint: str
    num_nodes: int
    halo_depth: int
    partitions: list

    def owner_of(self, node: int) -> int:
        """Partition id owning the global node index ``node``."""
        node = int(node)
        if not 0 <= node < self.num_nodes:
            raise PartitionError(f"node index {node} out of range")
        k = self.config.num_partitions
        if self.config.strategy == "hash":
            return node % k
        bound = -(-self.num_nodes // k)  # ceil-divided contiguous ranges
        return min(node // bound, k - 1) if bound else 0

    def __len__(self) -> int:
        return len(self.partitions)

    def __iter__(self):
        return iter(self.partitions)

    def aggregate_stats(self) -> dict:
        """Shard-size summary used for telemetry and the run manifest."""
        owned = [part.owned_count for part in self.partitions]
        halo = [part.halo_count for part in self.partitions]
        edges = [part.graph.num_edges for part in self.partitions]
        total_owned = sum(owned) or 1
        return {
            "num_partitions": len(self.partitions),
            "halo_depth": self.halo_depth,
            "strategy": self.config.strategy,
            "owned_nodes": sum(owned),
            "halo_nodes": sum(halo),
            "halo_ratio": sum(halo) / total_owned,
            "max_partition_nodes": max(
                (o + h for o, h in zip(owned, halo)), default=0
            ),
            "local_edges": sum(edges),
        }


def partition_store_config(
    config: PartitionConfig, census_config: CensusConfig
) -> tuple:
    """The artifact-store stage config addressing one partition set.

    Only the census parameters the halo shape depends on participate
    (``max_edges`` via the derived depth, ``max_degree`` via hub
    pruning) — key modes, masking, and caps reuse the same shards.
    """
    depth = (
        config.halo_depth
        if config.halo_depth is not None
        else required_halo_depth(census_config)
    )
    return (
        config.num_partitions,
        config.strategy,
        depth,
        census_config.max_degree,
    )


def _owned_ranges(num_nodes: int, config: PartitionConfig) -> list:
    """Global node indices owned by each partition (exact cover)."""
    k = config.num_partitions
    if config.strategy == "hash":
        return [list(range(p, num_nodes, k)) for p in range(k)]
    bound = -(-num_nodes // k) if num_nodes else 0
    owned = [[] for _ in range(k)]
    for part in range(k):
        lo = min(part * bound, num_nodes)
        hi = min(lo + bound, num_nodes) if part < k - 1 else num_nodes
        owned[part] = list(range(lo, hi))
    return owned


def _halo_bfs(
    flat: FlatAdjacency, owned: list, depth: int, max_degree: int | None
) -> set:
    """Nodes reachable by a census rooted anywhere in ``owned``.

    Mirrors the census frontier exactly: seeds (potential roots) are
    always expanded, later levels stop at global-degree hubs when the
    ``d_max`` heuristic is active, and everything stops at ``depth``
    hops.  Returns the full included node set (owned plus halo).
    """
    indptr = flat.indptr
    neighbors = flat.neighbors
    degrees = flat.degrees
    seen = set(owned)
    frontier = owned
    for level in range(depth):
        nxt = []
        for node in frontier:
            if level > 0 and max_degree is not None and degrees[node] > max_degree:
                continue  # census never expands past a non-root hub
            for other in neighbors[indptr[node]: indptr[node + 1]]:
                if other not in seen:
                    seen.add(other)
                    nxt.append(other)
        if not nxt:
            break
        frontier = nxt
    return seen


def _build_partition(
    part_id: int,
    flat: FlatAdjacency,
    labelset: LabelSet,
    owned: list,
    depth: int,
    max_degree: int | None,
) -> GraphPartition:
    """Cut one shard: halo BFS, local re-index, compact flat adjacency."""
    included = _halo_bfs(flat, owned, depth, max_degree)
    global_ids = sorted(included)
    local_of = {g: i for i, g in enumerate(global_ids)}
    owned_set = set(owned)

    indptr_g = flat.indptr
    neighbors_g = flat.neighbors
    labels: list = []
    degrees: list = []
    indptr = [0]
    neighbors: list = []
    edge_ids: list = []
    edge_u: list = []
    edge_v: list = []
    id_of: dict = {}
    for g in global_ids:
        labels.append(flat.labels[g])
        degrees.append(flat.degrees[g])  # global degree, deliberately
        u = local_of[g]
        for w in neighbors_g[indptr_g[g]: indptr_g[g + 1]]:
            lw = local_of.get(w)
            if lw is None:
                continue  # neighbour outside the shard: never census-reachable
            neighbors.append(lw)
            key = (u, lw) if u < lw else (lw, u)
            eid = id_of.get(key)
            if eid is None:
                eid = len(edge_u)
                id_of[key] = eid
                edge_u.append(key[0])
                edge_v.append(key[1])
            edge_ids.append(eid)
        indptr.append(len(neighbors))
    local_flat = FlatAdjacency(
        labels=labels,
        degrees=degrees,
        indptr=indptr,
        neighbors=neighbors,
        edge_ids=edge_ids,
        edge_u=edge_u,
        edge_v=edge_v,
    )
    owned_locals = [local_of[g] for g in owned]
    partition = GraphPartition(
        part_id=part_id,
        graph=PartitionGraph(local_flat, labelset),
        global_ids=global_ids,
        local_of=local_of,
        owned_locals=owned_locals,
        halo_depth=depth,
    )
    partition.stats = {
        "owned": len(owned),
        "halo": len(global_ids) - len(owned),
        "local_edges": len(edge_u),
    }
    return partition


def partition_graph(
    graph: HeteroGraph,
    config: PartitionConfig,
    census_config: CensusConfig | None = None,
) -> PartitionSet:
    """Split ``graph`` into halo-complete census shards.

    ``census_config`` supplies the halo parameters (``e_max`` depth and
    the ``d_max`` frontier cut) unless the partition config pins an
    explicit ``halo_depth``; an explicit depth below the derived
    requirement is rejected because it would silently undercount.
    Partition-size telemetry lands under ``dist/*`` counters.
    """
    census_config = census_config if census_config is not None else CensusConfig()
    needed = required_halo_depth(census_config)
    depth = config.halo_depth if config.halo_depth is not None else needed
    if depth < needed:
        raise PartitionError(
            f"halo_depth={depth} is below the e_max-derived requirement "
            f"{needed}; rooted censuses would be locally incomplete"
        )
    flat = graph.flat()
    labelset = graph.labelset
    telemetry = get_telemetry()
    partitions = []
    with telemetry.span("dist/partition_build"):
        for part_id, owned in enumerate(_owned_ranges(graph.num_nodes, config)):
            partitions.append(
                _build_partition(
                    part_id,
                    flat,
                    labelset,
                    owned,
                    depth,
                    census_config.max_degree,
                )
            )
    pset = PartitionSet(
        config=config,
        fingerprint=graph.fingerprint(),
        num_nodes=graph.num_nodes,
        halo_depth=depth,
        partitions=partitions,
    )
    stats = pset.aggregate_stats()
    telemetry.count("dist/partition_builds")
    telemetry.count("dist/halo_nodes", stats["halo_nodes"])
    telemetry.count("dist/owned_nodes", stats["owned_nodes"])
    telemetry.gauge_max("dist/halo_ratio_max", stats["halo_ratio"])
    return pset
