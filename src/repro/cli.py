"""Command-line interface.

Exposes the library's day-to-day operations on serialised graphs::

    python -m repro info graph.json
    python -m repro connectivity graph.hel
    python -m repro ingest graph.hel --out graph.hmg
    python -m repro census graph.hmg --root MIT --emax 4
    python -m repro features graph.json --nodes MIT,ETH --out features.json
    python -m repro collisions --labels 2 --max-edges 5 --no-loops
    python -m repro embed graph.json --method deepwalk --out emb.npy
    python -m repro runtime graph.json --roots 25
    python -m repro rank --conferences KDD --families classic,subgraph
    python -m repro label graph.json --per-label 16
    python -m repro serve graph.json --socket /tmp/repro.sock

Graphs load from the labelled edge-list format (``.hel``, see
:mod:`repro.io.edgelist`), the out-of-core mmap format (``.hmg``, built
by ``repro ingest`` — see ``docs/out_of_core.md``), or the JSON format
(anything else).  ``--mmap-graph`` on the census/features/rank/label
commands converts an in-memory graph to mmap storage before the run.

Results (tables, matrices, counts) go to stdout via ``print``;
diagnostics go to stderr through :mod:`repro.obs.log` and are controlled
by ``--log-level``/``-v``.  Every analysis command accepts
``--telemetry-out run.json`` to write a JSON run manifest (config,
engine/n_jobs provenance, cache hit rates, per-stage wall clock, peak
RSS — see ``docs/observability.md``).

Commands execute as declared pipeline stages (``dataset → graph →
census → features → embed → experiment``, see
:mod:`repro.runtime.pipeline`) running under one
:class:`~repro.runtime.context.RunContext`.  ``--artifact-store PATH``
attaches a content-addressed :class:`~repro.runtime.store.ArtifactStore`
memoising census counters, walk corpora, embedding matrices, and feature
matrices across runs, so a warm rerun skips every computed stage;
``--census-cache`` remains as a deprecated alias (see
``docs/architecture.md``).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.core import (
    CensusCache,
    CensusConfig,
    SampledCensusConfig,
    SubgraphFeatureExtractor,
    code_to_string,
    describe_code,
    find_collisions,
    label_connectivity,
)
from repro.core.census import effective_labelset
from repro.io import read_edgelist, read_graph_json, write_features_json
from repro.obs import (
    add_logging_args,
    configure_logging,
    fresh_telemetry,
    get_logger,
    get_telemetry,
    write_manifest,
)
from repro.runtime import (
    ENGINE_SAMPLED,
    EXACT_ENGINES,
    VALID_ENGINES,
    VALID_EXECUTORS,
    ArtifactStore,
    Pipeline,
    RunContext,
)

logger = get_logger(__name__)


def _load_graph(path: str, *, mmap: bool = False):
    """Load a graph file, dispatching on suffix.

    ``mmap=True`` (the ``--mmap-graph`` flag) converts an in-memory
    graph to out-of-core mmap storage through a temp ``.hmg`` file;
    graphs already opened from ``.hmg`` are returned as they are.
    """
    from repro.core.mmap_graph import HMG_SUFFIX, MmapGraph

    path = Path(path)
    if not path.exists():
        raise SystemExit(f"error: no such file: {path}")
    if path.suffix == HMG_SUFFIX:
        graph = MmapGraph(path)
    elif path.suffix == ".hel":
        graph = read_edgelist(path)
    else:
        graph = read_graph_json(path)
    if mmap:
        from repro.io.stream import to_mmap_graph

        graph = to_mmap_graph(graph)
    return graph


def _census_config(args) -> CensusConfig:
    return CensusConfig(
        max_edges=args.emax,
        max_degree=args.dmax,
        mask_start_label=args.mask,
    )


def _sampled_config(args) -> SampledCensusConfig | None:
    """Estimator knobs for ``--engine sampled``; ``None`` for exact engines.

    Giving a sampling flag with an exact engine is rejected rather than
    silently ignored — the run would otherwise look budgeted but be exact.
    """
    engine = getattr(args, "engine", None)
    given = [
        flag
        for flag, value in (
            ("--sample-budget", getattr(args, "sample_budget", None)),
            ("--sample-rel-err", getattr(args, "sample_rel_err", None)),
        )
        if value is not None
    ]
    if engine != ENGINE_SAMPLED:
        if given:
            raise SystemExit(
                f"error: {', '.join(given)} requires --engine sampled "
                f"(got --engine {engine})"
            )
        return None
    kwargs = {"seed": getattr(args, "sample_seed", 0)}
    if args.sample_budget is not None:
        kwargs["budget"] = args.sample_budget
    if args.sample_rel_err is not None:
        kwargs["rel_err"] = args.sample_rel_err
    return SampledCensusConfig(**kwargs)


def _build_context(args) -> RunContext:
    """Construct the :class:`RunContext` a command's pipeline runs under.

    ``--artifact-store`` opens (or creates) the content-addressed store;
    ``--census-cache`` is honoured as a deprecated alias for it.  Engine,
    worker count, and seed come from the command's own flags when it
    defines them, so every stage sees one consistent execution policy.
    """
    store_path = getattr(args, "artifact_store", None)
    legacy_path = getattr(args, "census_cache", None)
    if legacy_path and not store_path:
        logger.debug("--census-cache is a deprecated alias for --artifact-store")
        store_path = legacy_path
    store = None
    if store_path:
        store = ArtifactStore(store_path)
        get_telemetry().annotate("cache/path", str(store_path))
    workers = getattr(args, "workers", None)
    if workers:
        workers = tuple(
            spec.strip() for group in workers for spec in group.split(",") if spec.strip()
        )
    return RunContext(
        engine=getattr(args, "engine", None),
        n_jobs=getattr(args, "n_jobs", None),
        partitions=getattr(args, "partitions", None),
        executor=getattr(args, "executor", None),
        workers=workers or None,
        seed=getattr(args, "seed", None),
        store=store,
    )


def _save_store(args, ctx: RunContext) -> None:
    """Persist the run's artifact store (if any) and log a summary.

    Runs opened through the deprecated ``--census-cache`` alias keep the
    historical census-cache log line, whose counts cover just the census
    stage; ``--artifact-store`` runs summarise every stage.
    """
    store = ctx.store
    if store is None or store.path is None:
        return
    store.save()
    if getattr(args, "artifact_store", None):
        logger.info(
            "artifact store: %d entries (%d hits, %d misses) -> %s",
            len(store),
            store.hits,
            store.misses,
            store.path,
        )
    else:
        cache = CensusCache.over(store)
        logger.info(
            "census cache: %d entries (%d hits, %d misses) -> %s",
            len(cache),
            cache.hits,
            cache.misses,
            store.path,
        )


def _csv(value: str, caster=str) -> list:
    return [caster(item) for item in value.split(",") if item]


def cmd_info(args) -> int:
    graph = _load_graph(args.graph)
    print(graph)
    counts = graph.label_counts()
    for i, name in enumerate(graph.labelset.names):
        print(f"  {name}: {int(counts[i])} nodes")
    degrees = graph.degrees()
    if graph.num_nodes:
        print(f"  degree: mean {degrees.mean():.2f}, max {int(degrees.max())}")
    return 0


def cmd_connectivity(args) -> int:
    graph = _load_graph(args.graph)
    connectivity = label_connectivity(graph)
    print(connectivity.render())
    print(f"collision-free e_max: {connectivity.collision_free_emax()}")
    return 0


def cmd_ingest(args) -> int:
    from repro.core.mmap_graph import HMG_SUFFIX, MmapGraph
    from repro.exceptions import GraphError
    from repro.io.stream import build_mmap_graph

    source = Path(args.edgelist)
    if not source.exists():
        raise SystemExit(f"error: no such file: {source}")
    out = Path(args.out) if args.out else source.with_suffix(HMG_SUFFIX)
    try:
        build_mmap_graph(
            source,
            out,
            chunk_edges=args.chunk_edges,
            store_ids=not args.no_ids,
        )
    except GraphError as exc:
        raise SystemExit(f"error: {exc}") from None
    with MmapGraph(out) as graph:
        print(f"{out}: {out.stat().st_size} bytes")
        print(f"  nodes: {graph.num_nodes}")
        print(f"  edges: {graph.num_edges}")
        print(f"  labels: {', '.join(graph.labelset.names)}")
        print(f"  fingerprint: {graph.fingerprint()}")
    return 0


def cmd_census(args) -> int:
    ctx = _build_context(args)
    pipeline = Pipeline("census", ctx)
    with pipeline.stage("dataset"):
        graph = _load_graph(args.graph, mmap=args.mmap_graph)
    config = _census_config(args)
    extractor = SubgraphFeatureExtractor(
        config, sampled=_sampled_config(args), ctx=ctx
    )
    with pipeline.stage("census"):
        counts = extractor.census_many(graph, [graph.index(args.root)])[0]
    _save_store(args, ctx)
    labelset = effective_labelset(graph, config)
    for code, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])):
        # Sampled censuses carry float estimates; exact engines stay ints.
        shown = f"{count:g}" if isinstance(count, float) else str(count)
        line = f"{shown}\t{code_to_string(code, labelset)}"
        if args.describe:
            line += f"\t{describe_code(code, labelset)}"
        print(line)
    logger.info(
        "%s subgraphs in %d classes around %r",
        f"{sum(counts.values()):g}",
        len(counts),
        args.root,
    )
    return 0


def cmd_features(args) -> int:
    ctx = _build_context(args)
    pipeline = Pipeline("features", ctx)
    with pipeline.stage("dataset"):
        graph = _load_graph(args.graph, mmap=args.mmap_graph)
    config = _census_config(args)
    names = _csv(args.nodes)
    if not names:
        raise SystemExit("error: --nodes must list at least one node id")
    nodes = [graph.index(name) for name in names]
    extractor = SubgraphFeatureExtractor(
        config, sampled=_sampled_config(args), ctx=ctx
    )
    # The census stage runs inside fit_transform (and is skipped entirely
    # when the store already holds this feature matrix).
    with pipeline.stage("features"):
        features = extractor.fit_transform(graph, nodes)
    _save_store(args, ctx)
    write_features_json(features, effective_labelset(graph, config), args.out)
    print(
        f"wrote {features.matrix.shape[0]} x {features.matrix.shape[1]} "
        f"feature matrix to {args.out}"
    )
    return 0


def cmd_embed(args) -> int:
    import json

    import numpy as np

    from repro.experiments.common import EmbeddingParams, embedding_matrix

    ctx = _build_context(args)
    pipeline = Pipeline("embed", ctx)
    with pipeline.stage("dataset"):
        graph = _load_graph(args.graph)
    params = EmbeddingParams(
        dim=args.dim,
        num_walks=args.num_walks,
        walk_length=args.walk_length,
        window=args.window,
        negative=args.negative,
        p=args.p,
        q=args.q,
        line_samples=args.line_samples,
    )
    with pipeline.stage("embed"):
        with get_telemetry().span(f"phase/embed_{args.method}"):
            matrix = embedding_matrix(
                graph,
                np.arange(graph.num_nodes),
                args.method,
                params,
                seed=args.seed,
                ctx=ctx,
            )
    _save_store(args, ctx)
    out = Path(args.out)
    if out.suffix == ".npy":
        np.save(out, matrix)
    else:
        payload = {
            str(node_id): [float(x) for x in matrix[i]]
            for i, node_id in enumerate(graph.node_ids)
        }
        out.write_text(json.dumps(payload) + "\n")
    print(
        f"wrote {matrix.shape[0]} x {matrix.shape[1]} {args.method} embedding "
        f"(engine={args.engine}, n_jobs={args.n_jobs}) to {out}"
    )
    return 0


def cmd_runtime(args) -> int:
    import numpy as np

    from repro.experiments.common import EmbeddingParams
    from repro.experiments.reporting import render_table3
    from repro.experiments.runtime import runtime_report

    ctx = _build_context(args)
    pipeline = Pipeline("runtime", ctx)
    with pipeline.stage("dataset"):
        graph = _load_graph(args.graph)
    if graph.num_nodes == 0:
        raise SystemExit("error: graph has no nodes")
    rng = np.random.default_rng(args.seed)
    roots = rng.choice(
        graph.num_nodes, size=min(args.roots, graph.num_nodes), replace=False
    )
    params = (
        EmbeddingParams.paper() if args.preset == "paper" else EmbeddingParams.fast()
    )
    with pipeline.stage("experiment"):
        report = runtime_report(
            Path(args.graph).stem,
            graph,
            [int(r) for r in roots],
            emax=args.emax,
            dmax_percentile=args.dmax_percentile,
            embedding_params=params,
            seed=args.seed,
            engine=args.engine,
            embedding_engine=args.engine,
            embedding_n_jobs=args.n_jobs,
            ctx=ctx,
        )
    _save_store(args, ctx)
    print(render_table3([report]))
    return 0


def cmd_rank(args) -> int:
    from repro.datasets.mag import MagConfig, SyntheticMAG
    from repro.experiments.rank_prediction import (
        FEATURE_FAMILIES,
        REGRESSOR_NAMES,
        RankPredictionExperiment,
        RankTaskConfig,
    )
    from repro.experiments.reporting import render_figure3, render_table1

    families = tuple(_csv(args.families)) if args.families else FEATURE_FAMILIES
    regressors = tuple(_csv(args.regressors)) if args.regressors else REGRESSOR_NAMES
    mag_config = MagConfig(
        num_institutions=args.institutions,
        authors_per_institution=args.authors,
        papers_per_conference_year=args.papers,
        seed=args.seed + 7,
    )
    conferences = tuple(_csv(args.conferences)) if args.conferences else None
    task = RankTaskConfig(
        train_years=tuple(_csv(args.train_years, int)),
        test_year=args.test_year,
        conferences=conferences,
        emax=args.emax,
        forest_trees=args.trees,
        seed=args.seed,
        layout=args.layout,
        engine=args.engine,
        sampled=_sampled_config(args),
        # The forest has no sampled implementation; an approximate census
        # still trains an exact (fast) forest.
        forest_engine=args.engine if args.engine in EXACT_ENGINES else "fast",
        n_jobs=args.n_jobs,
        storage="mmap" if args.mmap_graph else "dict",
    )
    ctx = _build_context(args)
    pipeline = Pipeline("rank", ctx)
    with pipeline.stage("dataset"):
        with get_telemetry().span("phase/build_world"):
            mag = SyntheticMAG(mag_config)
    logger.info(
        "rank world: %d institutions, %d conferences, years %d-%d",
        mag_config.num_institutions,
        len(conferences or mag.config.conferences),
        min(task.train_years),
        task.test_year,
    )
    experiment = RankPredictionExperiment(mag, task, ctx=ctx)
    with pipeline.stage("experiment"):
        result = experiment.run(families=families, regressors=regressors)
    _save_store(args, ctx)
    print(render_table1(result, families=families))
    if args.per_conference:
        print()
        print(render_figure3(result, families=families))
    return 0


def cmd_label(args) -> int:
    from repro.experiments.label_prediction import (
        FEATURE_TYPES,
        LabelPredictionExperiment,
        LabelTaskConfig,
    )
    from repro.experiments.reporting import render_sweep

    ctx = _build_context(args)
    pipeline = Pipeline("label", ctx)
    with pipeline.stage("dataset"):
        graph = _load_graph(args.graph, mmap=args.mmap_graph)
    features = tuple(_csv(args.features)) if args.features else FEATURE_TYPES
    config = LabelTaskConfig(
        per_label=args.per_label,
        emax=args.emax,
        dmax_percentile=args.dmax_percentile,
        train_fractions=tuple(_csv(args.fractions, float)),
        removal_fractions=tuple(_csv(args.removal_fractions, float)),
        n_repeats=args.repeats,
        seed=args.seed,
        layout=args.layout,
        engine=args.engine,
        sampled=_sampled_config(args),
        n_jobs=args.n_jobs,
    )
    experiment = LabelPredictionExperiment(graph, config, ctx=ctx)
    logger.info(
        "label task: %d sampled roots over %d labels, mode=%s",
        len(experiment.nodes),
        len(graph.labelset),
        args.mode,
    )
    telemetry = get_telemetry()
    with pipeline.stage("experiment"):
        if args.mode == "removal":
            with telemetry.span("phase/label_removal"):
                sweep = experiment.run_label_removal(features=features)
            title = "Figure 5D-F: macro-F1 vs removed label fraction"
        else:
            with telemetry.span("phase/label_sweep"):
                sweep = experiment.run_training_sweep(features=features)
            title = "Figure 5A-C: macro-F1 vs training fraction"
    _save_store(args, ctx)
    print(render_sweep(title, sweep))
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.net import parse_endpoint
    from repro.serve import (
        FeatureService,
        ReplayConfig,
        ServeConfig,
        ServeDaemon,
        generate_trace,
        serve_and_replay,
    )

    ctx = _build_context(args)
    pipeline = Pipeline("serve", ctx)
    with pipeline.stage("dataset"):
        graph = _load_graph(args.graph)
    config = ServeConfig(
        emax=args.emax,
        dmax=args.dmax,
        engine=args.engine,
        n_jobs=args.n_jobs,
        top_k=args.top_k,
    )
    service = FeatureService(graph, config, store=ctx.store)
    if args.warm:
        with get_telemetry().span("phase/serve_warm"):
            warmed = service.warm()
        logger.info("warmed %d roots", warmed)
    endpoint = parse_endpoint(
        f"tcp:{args.tcp}" if args.tcp is not None else f"unix:{args.socket}"
    )
    daemon = ServeDaemon(
        service,
        endpoint,
        request_timeout=args.request_timeout,
        max_inflight=args.max_inflight,
    )
    if args.replay is not None:
        # Self-contained benchmark mode: serve, fire a generated trace at
        # ourselves, report, exit.
        replay_config = ReplayConfig(
            requests=args.replay,
            connections=args.connections,
            write_fraction=args.write_fraction,
            seed=args.seed,
        )
        trace = generate_trace(service.graph, replay_config)
        with get_telemetry().span("phase/serve_replay"):
            report = asyncio.run(
                serve_and_replay(
                    daemon, trace, connections=replay_config.connections
                )
            )
        _save_store(args, ctx)
        print(report.summary())
        return 0
    try:
        asyncio.run(daemon.run())
    except KeyboardInterrupt:
        logger.info("interrupted; shutting down")
    _save_store(args, ctx)
    print(
        f"served {daemon.requests} requests "
        f"({daemon.shed_requests} shed, {daemon.timeouts} timeouts)"
    )
    return 0


def cmd_worker(args) -> int:
    from repro.dist import PartitionConfig, partition_graph, run_worker
    from repro.net import parse_endpoint

    endpoint = parse_endpoint(args.listen)
    shards = None
    if args.graph is not None:
        if args.partitions is None:
            raise SystemExit("error: --graph preloading requires --partitions")
        graph = _load_graph(args.graph, mmap=getattr(args, "mmap_graph", False))
        config = CensusConfig(max_edges=args.emax, max_degree=args.dmax)
        pset = partition_graph(
            graph, PartitionConfig(num_partitions=args.partitions), config
        )
        wanted = (
            sorted(int(s) for s in args.shards.split(","))
            if args.shards
            else range(len(pset))
        )
        shards = {i: pset.partitions[i] for i in wanted}
        logger.info("preloaded shards %s", sorted(shards))
    worker = run_worker(endpoint, partitions=shards)
    print(
        f"worker stopped after {worker.requests} requests "
        f"({worker.censuses} censuses)"
    )
    return 0


def cmd_collisions(args) -> int:
    report = find_collisions(
        num_labels=args.labels,
        max_edges=args.max_edges,
        allow_same_label_edges=not args.no_loops,
        stop_at_first=args.first,
    )
    print(report.summary())
    for collision in report.collisions[: args.show]:
        print(f"  {collision.first}")
        print(f"  {collision.second}")
        print("  --")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro", description="heterogeneous subgraph features toolkit"
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common_args(p, telemetry: bool = True):
        add_logging_args(p)
        if telemetry:
            p.add_argument(
                "--telemetry-out",
                default=None,
                metavar="PATH",
                help="write a JSON run manifest (see docs/observability.md)",
            )

    def store_args(p):
        p.add_argument(
            "--artifact-store",
            default=None,
            metavar="PATH",
            help="content-addressed store memoising census, walk, embedding "
            "and feature artifacts across runs (see docs/architecture.md)",
        )
        p.add_argument(
            "--census-cache",
            default=None,
            metavar="PATH",
            help="deprecated alias for --artifact-store",
        )

    p_info = sub.add_parser("info", help="summarise a graph file")
    p_info.add_argument("graph")
    common_args(p_info, telemetry=False)
    p_info.set_defaults(func=cmd_info)

    p_conn = sub.add_parser("connectivity", help="print the label connectivity graph")
    p_conn.add_argument("graph")
    common_args(p_conn, telemetry=False)
    p_conn.set_defaults(func=cmd_connectivity)

    p_ingest = sub.add_parser(
        "ingest", help="build an out-of-core .hmg graph from an edge list"
    )
    p_ingest.add_argument("edgelist", help="labelled edge-list file (.hel)")
    p_ingest.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output .hmg path (default: the edge list with a .hmg suffix)",
    )
    p_ingest.add_argument(
        "--chunk-edges",
        type=int,
        default=1 << 18,
        metavar="N",
        help="edges sorted per in-memory run; bounds the ingester's "
        "working set (see docs/out_of_core.md)",
    )
    p_ingest.add_argument(
        "--no-ids",
        action="store_true",
        help="drop external node ids; nodes are addressed by dense index",
    )
    common_args(p_ingest)
    p_ingest.set_defaults(func=cmd_ingest)

    def sample_args(p):
        p.add_argument(
            "--sample-budget",
            type=int,
            default=None,
            metavar="N",
            help="probe draws per root for --engine sampled "
            "(default: 2000; see docs/sampled_census.md)",
        )
        p.add_argument(
            "--sample-seed",
            type=int,
            default=0,
            help="rng seed for the sampled census estimator",
        )
        p.add_argument(
            "--sample-rel-err",
            type=float,
            default=None,
            metavar="EPS",
            help="stop a root early once its CI half-width falls below "
            "EPS x the total estimate",
        )

    def mmap_args(p):
        p.add_argument(
            "--mmap-graph",
            action="store_true",
            help="convert the graph to out-of-core mmap storage before the "
            "run; results are bit-identical (see docs/out_of_core.md)",
        )

    def executor_args(p):
        p.add_argument(
            "--executor",
            choices=VALID_EXECUTORS,
            default=None,
            help="where sharded census tasks run: a local process pool "
            "(default) or repro worker daemons (requires --partitions "
            "and --workers; see docs/distributed_census.md)",
        )
        p.add_argument(
            "--workers",
            action="append",
            default=None,
            metavar="ENDPOINT[,ENDPOINT...]",
            help="worker endpoints (host:port or unix:path) for "
            "--executor remote; repeat the flag or comma-separate",
        )

    def census_args(p):
        p.add_argument("graph")
        p.add_argument("--emax", type=int, default=4, help="max subgraph edges")
        p.add_argument("--dmax", type=int, default=None, help="hub degree cut-off")
        p.add_argument("--mask", action="store_true", help="mask the start label")
        p.add_argument(
            "--engine",
            choices=VALID_ENGINES,
            default="fast",
            help="census implementation (sampled = budgeted estimates "
            "with confidence bounds)",
        )
        sample_args(p)
        p.add_argument(
            "--n-jobs",
            "--jobs",
            dest="n_jobs",
            type=int,
            default=1,
            help="worker processes for the census (0 = all cores)",
        )
        p.add_argument(
            "--partitions",
            type=int,
            default=None,
            help="shard the census over this many halo-complete graph "
            "partitions (default: fan out individual roots)",
        )
        executor_args(p)
        mmap_args(p)
        store_args(p)
        common_args(p)

    p_census = sub.add_parser("census", help="rooted census around one node")
    census_args(p_census)
    p_census.add_argument("--root", required=True, help="node id of the start node")
    p_census.add_argument(
        "--describe", action="store_true", help="append decoded descriptions"
    )
    p_census.set_defaults(func=cmd_census)

    p_feat = sub.add_parser("features", help="extract a feature matrix to JSON")
    census_args(p_feat)
    p_feat.add_argument("--nodes", required=True, help="comma-separated node ids")
    p_feat.add_argument("--out", required=True, help="output JSON path")
    p_feat.set_defaults(func=cmd_features)

    def pipeline_args(p):
        p.add_argument(
            "--engine",
            choices=EXACT_ENGINES,
            default="fast",
            help="embedding pipeline implementation",
        )
        p.add_argument(
            "--n-jobs",
            "--jobs",
            dest="n_jobs",
            type=int,
            default=1,
            help="worker processes for corpus generation",
        )
        p.add_argument("--seed", type=int, default=0, help="rng seed")
        store_args(p)
        common_args(p)

    p_embed = sub.add_parser("embed", help="train an embedding baseline")
    p_embed.add_argument("graph")
    p_embed.add_argument(
        "--method",
        required=True,
        choices=("deepwalk", "node2vec", "line"),
        help="embedding baseline to train",
    )
    p_embed.add_argument("--out", required=True, help="output path (.npy or JSON)")
    p_embed.add_argument("--dim", type=int, default=128)
    p_embed.add_argument("--num-walks", type=int, default=10)
    p_embed.add_argument("--walk-length", type=int, default=80)
    p_embed.add_argument("--window", type=int, default=10)
    p_embed.add_argument("--negative", type=int, default=5)
    p_embed.add_argument("--p", type=float, default=1.0)
    p_embed.add_argument("--q", type=float, default=1.0)
    p_embed.add_argument("--line-samples", type=int, default=None)
    pipeline_args(p_embed)
    p_embed.set_defaults(func=cmd_embed)

    p_runtime = sub.add_parser(
        "runtime", help="Table-3 style census + embedding timing row"
    )
    p_runtime.add_argument("graph")
    p_runtime.add_argument(
        "--roots", type=int, default=25, help="number of census roots to time"
    )
    p_runtime.add_argument("--emax", type=int, default=3, help="max subgraph edges")
    p_runtime.add_argument(
        "--dmax-percentile",
        type=float,
        default=90.0,
        help="hub degree cut-off percentile",
    )
    p_runtime.add_argument(
        "--preset",
        choices=("fast", "paper"),
        default="fast",
        help="embedding hyper-parameter preset",
    )
    pipeline_args(p_runtime)
    p_runtime.set_defaults(func=cmd_runtime)

    p_rank = sub.add_parser(
        "rank", help="Table-1 style rank prediction on a synthetic MAG world"
    )
    p_rank.add_argument(
        "--conferences", default=None, help="comma-separated subset (default: all)"
    )
    p_rank.add_argument(
        "--families", default=None, help="feature families (default: all)"
    )
    p_rank.add_argument(
        "--regressors", default=None, help="regressors (default: all)"
    )
    p_rank.add_argument(
        "--train-years",
        default="2011,2012,2013,2014",
        help="comma-separated training sample years",
    )
    p_rank.add_argument("--test-year", type=int, default=2015)
    p_rank.add_argument("--emax", type=int, default=3, help="max subgraph edges")
    p_rank.add_argument("--trees", type=int, default=150, help="random forest size")
    p_rank.add_argument(
        "--institutions", type=int, default=60, help="synthetic world size"
    )
    p_rank.add_argument("--authors", type=int, default=8, help="authors/institution")
    p_rank.add_argument("--papers", type=int, default=70, help="papers/conference-year")
    p_rank.add_argument(
        "--per-conference",
        action="store_true",
        help="also print the Figure-3 per-conference grids",
    )
    p_rank.add_argument("--seed", type=int, default=0, help="rng seed")
    p_rank.add_argument(
        "--layout",
        choices=("dense", "sparse"),
        default="dense",
        help="count-feature matrix layout",
    )
    p_rank.add_argument(
        "--engine",
        choices=VALID_ENGINES,
        default="fast",
        help="census + random forest implementation (sampled applies to "
        "the census only; the forest stays fast)",
    )
    sample_args(p_rank)
    p_rank.add_argument(
        "--n-jobs",
        "--jobs",
        dest="n_jobs",
        type=int,
        default=1,
        help="worker processes for the experiment grid and forests "
        "(results are identical for any value)",
    )
    p_rank.add_argument(
        "--partitions",
        type=int,
        default=None,
        help="shard the census stage over this many halo-complete graph "
        "partitions (results are identical for any value)",
    )
    mmap_args(p_rank)
    store_args(p_rank)
    common_args(p_rank)
    p_rank.set_defaults(func=cmd_rank)

    p_label = sub.add_parser(
        "label", help="Figure-5 style label prediction on a graph file"
    )
    p_label.add_argument("graph")
    p_label.add_argument(
        "--mode",
        choices=("sweep", "removal"),
        default="sweep",
        help="training-size sweep (5A-C) or label removal (5D-F)",
    )
    p_label.add_argument("--per-label", type=int, default=40)
    p_label.add_argument("--emax", type=int, default=3, help="max subgraph edges")
    p_label.add_argument("--dmax-percentile", type=float, default=90.0)
    p_label.add_argument(
        "--features", default=None, help="feature types (default: all)"
    )
    p_label.add_argument(
        "--fractions", default="0.1,0.3,0.5,0.7,0.9", help="training fractions"
    )
    p_label.add_argument(
        "--removal-fractions", default="0.0,0.25,0.5,0.75", help="removal fractions"
    )
    p_label.add_argument("--repeats", type=int, default=10, help="splits per point")
    p_label.add_argument("--seed", type=int, default=0, help="rng seed")
    p_label.add_argument(
        "--layout",
        choices=("dense", "sparse"),
        default="dense",
        help="count-feature matrix layout",
    )
    p_label.add_argument(
        "--engine",
        choices=VALID_ENGINES,
        default="fast",
        help="census/embedding pipeline implementation (sampled applies "
        "to the census only; embeddings keep their default engine)",
    )
    sample_args(p_label)
    p_label.add_argument(
        "--n-jobs",
        "--jobs",
        dest="n_jobs",
        type=int,
        default=1,
        help="worker processes for the training sweep "
        "(results are identical for any value)",
    )
    p_label.add_argument(
        "--partitions",
        type=int,
        default=None,
        help="shard the census stage over this many halo-complete graph "
        "partitions (results are identical for any value)",
    )
    mmap_args(p_label)
    store_args(p_label)
    common_args(p_label)
    p_label.set_defaults(func=cmd_label)

    p_serve = sub.add_parser(
        "serve", help="feature-serving daemon with incremental census repair"
    )
    p_serve.add_argument("graph")
    listen = p_serve.add_mutually_exclusive_group(required=True)
    listen.add_argument(
        "--socket",
        metavar="PATH",
        help="unix domain socket to listen on (see docs/serving.md)",
    )
    listen.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        help="TCP endpoint to listen on instead of a unix socket "
        "(port 0 binds an ephemeral port; the resolved address is logged)",
    )
    p_serve.add_argument("--emax", type=int, default=4, help="max subgraph edges")
    p_serve.add_argument("--dmax", type=int, default=None, help="hub degree cut-off")
    p_serve.add_argument(
        "--engine",
        choices=EXACT_ENGINES,
        default="fast",
        help="census implementation (exact engines only: incremental "
        "repair must be bit-identical to a cold recompute)",
    )
    p_serve.add_argument(
        "--n-jobs",
        "--jobs",
        dest="n_jobs",
        type=int,
        default=1,
        help="worker processes for warm-up and repair censuses",
    )
    p_serve.add_argument(
        "--top-k", type=int, default=10, help="default result size for rank queries"
    )
    p_serve.add_argument(
        "--warm",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="precompute every root's census before accepting connections",
    )
    p_serve.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-request deadline before a typed timeout error",
    )
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        metavar="N",
        help="concurrent requests before shedding with the overloaded error",
    )
    p_serve.add_argument(
        "--replay",
        type=int,
        default=None,
        metavar="N",
        help="benchmark mode: serve, fire N generated requests at the "
        "daemon, print the latency report, and exit",
    )
    p_serve.add_argument(
        "--connections",
        type=int,
        default=8,
        help="client connections in --replay mode",
    )
    p_serve.add_argument(
        "--write-fraction",
        type=float,
        default=0.1,
        help="edge-mutation share of the --replay trace",
    )
    p_serve.add_argument("--seed", type=int, default=0, help="rng seed for --replay")
    store_args(p_serve)
    common_args(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_worker = sub.add_parser(
        "worker",
        help="shard-census worker daemon for --executor remote "
        "(see docs/distributed_census.md)",
    )
    p_worker.add_argument(
        "--listen",
        required=True,
        metavar="ENDPOINT",
        help="endpoint to serve census RPCs on: host:port, unix:PATH, "
        "or a socket path (TCP port 0 binds an ephemeral port)",
    )
    p_worker.add_argument(
        "--graph",
        default=None,
        help="optional graph file to preload shards from (otherwise the "
        "coordinator ships shards over the wire)",
    )
    p_worker.add_argument(
        "--partitions",
        type=int,
        default=None,
        help="partition count used to cut preloaded shards (must match "
        "the coordinator's --partitions)",
    )
    p_worker.add_argument(
        "--shards",
        default=None,
        metavar="I[,I...]",
        help="shard ids to preload (default: all of them)",
    )
    p_worker.add_argument("--emax", type=int, default=4, help="max subgraph edges")
    p_worker.add_argument("--dmax", type=int, default=None, help="hub degree cut-off")
    mmap_args(p_worker)
    common_args(p_worker)
    p_worker.set_defaults(func=cmd_worker)

    p_coll = sub.add_parser("collisions", help="enumerate encoding collisions")
    p_coll.add_argument("--labels", type=int, default=2)
    p_coll.add_argument("--max-edges", type=int, default=5)
    p_coll.add_argument(
        "--no-loops",
        action="store_true",
        help="forbid same-label edges (the e_max=5 regime)",
    )
    p_coll.add_argument("--first", action="store_true", help="stop at first collision")
    p_coll.add_argument("--show", type=int, default=3, help="collisions to print")
    common_args(p_coll, telemetry=False)
    p_coll.set_defaults(func=cmd_collisions)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.log_level, args.verbosity)
    with fresh_telemetry() as telemetry:
        with telemetry.span("phase/total"):
            code = args.func(args)
        if getattr(args, "telemetry_out", None):
            config = {
                key: value
                for key, value in vars(args).items()
                if key not in ("func", "verbosity")
            }
            write_manifest(args.telemetry_out, args.command, config=config)
        if args.verbosity > 0:
            from repro.experiments.reporting import render_telemetry

            logger.debug("%s", render_telemetry(telemetry))
    return code


if __name__ == "__main__":
    raise SystemExit(main())
