"""Edge-typed subgraph features — the paper's future-work directions.

Section 5 leaves two extensions open: *directed* subgraph features and an
adaptation to *edge-heterogeneous* graphs.  Both reduce to one
generalisation: give every edge a **role at each endpoint**.

* An edge-labelled graph assigns the same role (the edge's label) at both
  endpoints.
* A directed edge ``u -> v`` assigns role ``out`` at ``u`` and ``in`` at
  ``v``.

The characteristic sequence generalises accordingly: node ``v`` inside a
subgraph contributes ``(label(v), t[l][r] ...)`` where ``t[l][r]`` counts
in-subgraph neighbours with node label ``l`` reached over an edge whose
role at ``v`` is ``r``.  Sorting node sequences in descending order keeps
the code order-invariant exactly as in the undirected case.

The census reuses the same enumeration discipline as
:mod:`repro.core.census` (connected edge-set growth with exclusion), over
the underlying undirected structure, while encodings carry the roles.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence

from repro.core.labels import LabelSet
from repro.exceptions import CensusError, EncodingError, GraphError

NodeId = Hashable

#: Role alphabet used by directed graphs.
OUT, IN = "out", "in"


@dataclass(frozen=True)
class TypedEdge:
    """One undirected edge with a role at each endpoint (internal form).

    ``u < v`` by internal index; ``role_u``/``role_v`` are role indices.
    """

    u: int
    v: int
    role_u: int
    role_v: int

    def role_at(self, node: int) -> int:
        if node == self.u:
            return self.role_u
        if node == self.v:
            return self.role_v
        raise GraphError(f"node {node} is not an endpoint of {self}")

    def other(self, node: int) -> int:
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise GraphError(f"node {node} is not an endpoint of {self}")


class EdgeTypedGraph:
    """An undirected node-labelled graph whose edges carry endpoint roles.

    Use :meth:`from_directed` for digraphs or :meth:`from_edge_labels` for
    edge-heterogeneous networks; the constructor takes pre-encoded data.
    """

    def __init__(
        self,
        labelset: LabelSet,
        roleset: LabelSet,
        ids: Sequence[NodeId],
        labels: Sequence[int],
        edges: Sequence[TypedEdge],
    ) -> None:
        self.labelset = labelset
        self.roleset = roleset
        self._ids = tuple(ids)
        self._index_of = {node_id: i for i, node_id in enumerate(self._ids)}
        self._labels = tuple(labels)
        self._edges = tuple(edges)
        incident: list[list[TypedEdge]] = [[] for _ in self._ids]
        seen: set[tuple[int, int]] = set()
        for edge in self._edges:
            if edge.u == edge.v:
                raise GraphError("self loops are not allowed")
            if (edge.u, edge.v) in seen:
                raise GraphError(f"duplicate edge ({edge.u}, {edge.v})")
            seen.add((edge.u, edge.v))
            incident[edge.u].append(edge)
            incident[edge.v].append(edge)
        self._incident = [tuple(edges) for edges in incident]

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def from_directed(
        cls,
        node_labels: Mapping[NodeId, str],
        directed_edges: Iterable[tuple[NodeId, NodeId]],
        labelset: LabelSet | None = None,
    ) -> "EdgeTypedGraph":
        """Build from a digraph: role ``out`` at the source, ``in`` at the
        target.  Antiparallel pairs ``u->v`` and ``v->u`` are rejected —
        they would need a third role and the evaluation networks have none.
        """
        ids = tuple(node_labels)
        index_of = {node_id: i for i, node_id in enumerate(ids)}
        if labelset is None:
            labelset = LabelSet.from_labelling(node_labels[i] for i in ids)
        roleset = LabelSet((OUT, IN))
        labels = [labelset.index(node_labels[i]) for i in ids]
        out_role, in_role = roleset.index(OUT), roleset.index(IN)
        edges = []
        for source, target in directed_edges:
            try:
                s, t = index_of[source], index_of[target]
            except KeyError as exc:
                raise GraphError(f"edge names unknown node {exc}") from None
            if s < t:
                edges.append(TypedEdge(s, t, out_role, in_role))
            else:
                edges.append(TypedEdge(t, s, in_role, out_role))
        return cls(labelset, roleset, ids, labels, edges)

    @classmethod
    def from_edge_labels(
        cls,
        node_labels: Mapping[NodeId, str],
        labelled_edges: Iterable[tuple[NodeId, NodeId, str]],
        labelset: LabelSet | None = None,
        roleset: LabelSet | None = None,
    ) -> "EdgeTypedGraph":
        """Build from an edge-heterogeneous network: each edge carries one
        symmetric edge label (the same role at both endpoints)."""
        ids = tuple(node_labels)
        index_of = {node_id: i for i, node_id in enumerate(ids)}
        if labelset is None:
            labelset = LabelSet.from_labelling(node_labels[i] for i in ids)
        labelled_edges = list(labelled_edges)
        if roleset is None:
            roleset = LabelSet.from_labelling(label for _u, _v, label in labelled_edges)
        labels = [labelset.index(node_labels[i]) for i in ids]
        edges = []
        for a, b, edge_label in labelled_edges:
            try:
                u, v = index_of[a], index_of[b]
            except KeyError as exc:
                raise GraphError(f"edge names unknown node {exc}") from None
            role = roleset.index(edge_label)
            if u > v:
                u, v = v, u
            edges.append(TypedEdge(u, v, role, role))
        return cls(labelset, roleset, ids, labels, edges)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._ids)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def index(self, node_id: NodeId) -> int:
        try:
            return self._index_of[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id!r}") from None

    def label_of(self, index: int) -> int:
        return self._labels[index]

    def degree(self, index: int) -> int:
        return len(self._incident[index])

    def incident_edges(self, index: int) -> tuple[TypedEdge, ...]:
        return self._incident[index]

    def edges(self) -> tuple[TypedEdge, ...]:
        return self._edges


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------
def encode_typed_subgraph(
    labels: Sequence[int],
    edges: Iterable[tuple[int, int, int, int]],
    num_labels: int,
    num_roles: int,
):
    """Canonical code of an edge-typed subgraph.

    ``edges`` are ``(u, v, role_u, role_v)`` tuples over subgraph-local
    indices.  Node ``v``'s sequence is ``(label, t[0][0], t[0][1], ...)``
    flattened row-major over (neighbour label, role at v).
    """
    n = len(labels)
    width = num_labels * num_roles
    counts = [[0] * width for _ in range(n)]
    for u, v, role_u, role_v in edges:
        if not (0 <= u < n and 0 <= v < n):
            raise EncodingError(f"edge ({u}, {v}) outside the subgraph")
        if not (0 <= role_u < num_roles and 0 <= role_v < num_roles):
            raise EncodingError(f"roles ({role_u}, {role_v}) outside the alphabet")
        counts[u][labels[v] * num_roles + role_u] += 1
        counts[v][labels[u] * num_roles + role_v] += 1
    return tuple(sorted(((labels[i], *counts[i]) for i in range(n)), reverse=True))


# ---------------------------------------------------------------------------
# Census
# ---------------------------------------------------------------------------
def typed_subgraph_census(
    graph: EdgeTypedGraph,
    root: int,
    max_edges: int = 4,
    max_degree: int | None = None,
    mask_start_label: bool = False,
) -> Counter:
    """Rooted census over an edge-typed graph.

    Same enumeration as :func:`repro.core.census.subgraph_census` —
    connected edge-set growth with the exclusion discipline and the
    ``d_max`` hub cut-off — with edge-typed encodings as keys.
    ``mask_start_label`` replaces the root's node label with an artificial
    mask label in every encoding, for label-prediction parity with
    Section 4.3.2.
    """
    if not 0 <= root < graph.num_nodes:
        raise CensusError(f"root index {root} out of range")
    if max_edges < 1:
        raise CensusError(f"max_edges must be >= 1, got {max_edges}")

    num_labels = len(graph.labelset) + (1 if mask_start_label else 0)
    mask_label = num_labels - 1 if mask_start_label else None
    num_roles = len(graph.roleset)
    counts: Counter = Counter()
    members: dict[int, None] = {root: None}
    sub_edges: list[TypedEdge] = []
    in_sub: set[TypedEdge] = set()
    banned: set[TypedEdge] = set()

    def expansion(node: int) -> list[TypedEdge]:
        if (
            max_degree is not None
            and node != root
            and graph.degree(node) > max_degree
        ):
            return []
        return [
            e
            for e in graph.incident_edges(node)
            if e not in in_sub and e not in banned
        ]

    def effective_label(node: int) -> int:
        if mask_label is not None and node == root:
            return mask_label
        return graph.label_of(node)

    def emit() -> None:
        local = {node: i for i, node in enumerate(members)}
        labels = [effective_label(node) for node in members]
        edges = [
            (local[e.u], local[e.v], e.role_u, e.role_v) for e in sub_edges
        ]
        counts[encode_typed_subgraph(labels, edges, num_labels, num_roles)] += 1

    def grow(candidates: list[TypedEdge]) -> None:
        local_bans = []
        for i, edge in enumerate(candidates):
            if edge in banned or edge in in_sub:
                continue
            new_node = None
            for endpoint in (edge.u, edge.v):
                if endpoint not in members:
                    members[endpoint] = None
                    new_node = endpoint
            sub_edges.append(edge)
            in_sub.add(edge)
            emit()
            if len(sub_edges) < max_edges:
                remaining = candidates[i + 1:]
                exposed = expansion(new_node) if new_node is not None else []
                if exposed:
                    remaining_set = set(remaining)
                    child = remaining + [e for e in exposed if e not in remaining_set]
                else:
                    child = remaining
                if child:
                    grow(child)
            sub_edges.pop()
            in_sub.discard(edge)
            if new_node is not None:
                del members[new_node]
            banned.add(edge)
            local_bans.append(edge)
        for edge in local_bans:
            banned.discard(edge)

    grow(expansion(root))
    return counts


def directed_census_matrix(
    graph: EdgeTypedGraph,
    nodes: Sequence[int],
    max_edges: int = 3,
    max_degree: int | None = None,
):
    """Aligned feature matrix over typed censuses (vocabulary first-seen).

    Returns ``(matrix, codes)`` with one row per node.
    """
    import numpy as np

    censuses = [
        typed_subgraph_census(graph, int(node), max_edges, max_degree)
        for node in nodes
    ]
    codes: list = []
    index: dict = {}
    for census in censuses:
        for code in census:
            if code not in index:
                index[code] = len(codes)
                codes.append(code)
    matrix = np.zeros((len(nodes), len(codes)))
    for row, census in enumerate(censuses):
        for code, count in census.items():
            matrix[row, index[code]] = count
    return matrix, codes
