"""Future-work extensions of the paper (Section 5): directed and
edge-heterogeneous subgraph features via endpoint-role-typed edges."""

from repro.extensions.edge_typed import (
    IN,
    OUT,
    EdgeTypedGraph,
    TypedEdge,
    directed_census_matrix,
    encode_typed_subgraph,
    typed_subgraph_census,
)

__all__ = [
    "EdgeTypedGraph",
    "IN",
    "OUT",
    "TypedEdge",
    "directed_census_matrix",
    "encode_typed_subgraph",
    "typed_subgraph_census",
]
