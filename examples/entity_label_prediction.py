"""Node-label prediction on a dense entity co-occurrence network.

Reproduces the Section 4.3 workflow on a LOAD-style network: sample nodes
per label, extract masked subgraph features and DeepWalk/LINE embeddings,
train one-vs-rest logistic regression, and compare macro-F1 across
training sizes — plus the label-removal robustness sweep of Figure 5D-F.

Run:  python examples/entity_label_prediction.py        (~1 minute)
"""

from repro.datasets import LoadConfig, SyntheticLOAD
from repro.experiments import (
    EmbeddingParams,
    LabelPredictionExperiment,
    LabelTaskConfig,
    render_sweep,
)


def main() -> None:
    load = SyntheticLOAD(
        LoadConfig(
            num_locations=150,
            num_organizations=100,
            num_actors=180,
            num_dates=80,
            mean_degree=12,
            seed=7,
        )
    )
    print(load.graph)

    config = LabelTaskConfig(
        per_label=30,
        emax=3,
        dmax_percentile=90.0,
        train_fractions=(0.3, 0.6, 0.9),
        n_repeats=5,
        removal_fractions=(0.0, 0.5),
        embedding_params=EmbeddingParams.fast(),
        logreg_grid=(0.1, 1.0, 10.0),
        seed=0,
    )
    experiment = LabelPredictionExperiment(load.graph, config)

    print("\nmacro-F1 vs training size (Figure 5A style):")
    sweep = experiment.run_training_sweep(features=("subgraph", "deepwalk", "line"))
    print(render_sweep("LOAD", sweep))

    print("\nmacro-F1 vs removed labels (Figure 5D style):")
    removal = experiment.run_label_removal(features=("subgraph", "deepwalk"))
    print(render_sweep("LOAD, 90% train", removal))


if __name__ == "__main__":
    main()
