"""Directed subgraph features on a citation-style network (future work).

Section 5 of the paper leaves directed subgraph features as future work,
suspecting they pay off on denser directed networks.  This example builds a
small citation digraph, compares the undirected census with the edge-typed
(directed) census around the same node, and shows how direction splits one
undirected class into several directed ones.

Run:  python examples/directed_citations.py
"""

from repro.core import CensusConfig, HeteroGraph, code_to_string, subgraph_census
from repro.extensions import EdgeTypedGraph, typed_subgraph_census


def main() -> None:
    node_labels = {
        "survey": "P",
        "classic": "P",
        "recent-1": "P",
        "recent-2": "P",
        "author": "A",
    }
    directed_edges = [
        ("survey", "classic"),      # the survey cites the classic
        ("recent-1", "classic"),
        ("recent-2", "classic"),
        ("recent-2", "survey"),
        ("author", "recent-2"),     # authorship modelled as directed too
    ]

    digraph = EdgeTypedGraph.from_directed(node_labels, directed_edges)
    shadow = HeteroGraph.from_edges(node_labels, directed_edges)
    root_name = "classic"

    print("undirected census around", root_name)
    counts = subgraph_census(
        shadow, shadow.index(root_name), CensusConfig(max_edges=2)
    )
    for code, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        print(f"  {count} x {code_to_string(code, shadow.labelset)}")
    print(f"  {len(counts)} classes")

    print("\ndirected census around", root_name)
    typed_counts = typed_subgraph_census(
        digraph, digraph.index(root_name), max_edges=2
    )
    for code, count in sorted(typed_counts.items(), key=lambda kv: -kv[1]):
        print(f"  {count} x {code}")
    print(f"  {len(typed_counts)} classes")

    print(
        "\ndirection splits classes: "
        f"{len(counts)} undirected -> {len(typed_counts)} directed"
    )
    assert len(typed_counts) >= len(counts)


if __name__ == "__main__":
    main()
