"""Role classification in a star-shaped movie network, with persistence.

IMDB-style networks are the paper's hardest label-prediction case: every
edge passes through a movie node, so a masked satellite is only
identifiable from how many movies it touches and what else those movies
touch.  This example classifies node roles (actor / director / writer /
composer / keyword / movie) from subgraph features, inspects the degree
cap's effect (Table 2's theme), and round-trips the extracted features
through the JSON store so the expensive census is paid once.

Run:  python examples/movie_roles.py        (~30 seconds)
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import CensusConfig, SubgraphFeatureExtractor
from repro.core.census import effective_labelset
from repro.datasets import ImdbConfig, SyntheticIMDB
from repro.experiments import percentile_degree
from repro.io import read_features_json, write_features_json
from repro.ml import RandomForestClassifier, macro_f1, train_test_split


def main() -> None:
    imdb = SyntheticIMDB(ImdbConfig(num_movies=250, seed=3))
    graph = imdb.graph
    print(graph)

    nodes, labels = imdb.sample_nodes_per_label(35, rng=0)
    label_names = np.array([graph.labelset.name(int(l)) for l in labels])

    for percentile in (90.0, 100.0):
        dmax = percentile_degree(graph, percentile)
        config = CensusConfig(max_edges=3, max_degree=dmax, mask_start_label=True)
        extractor = SubgraphFeatureExtractor(config)
        features = extractor.fit_transform(graph, nodes)
        X = np.log1p(features.matrix)
        X_train, X_test, y_train, y_test = train_test_split(
            X, label_names, test_size=0.3, rng=0, stratify=label_names
        )
        model = RandomForestClassifier(n_estimators=60, random_state=0)
        model.fit(X_train, y_train)
        score = macro_f1(y_test, model.predict(X_test))
        cap = "none" if dmax is None else dmax
        print(
            f"d_max percentile {percentile:>5.0f}% (cap={cap}): "
            f"{features.num_features} features, macro-F1 {score:.3f}"
        )

    # --- persist the census so it is paid once -------------------------
    config = CensusConfig(max_edges=3, mask_start_label=True)
    extractor = SubgraphFeatureExtractor(config)
    features = extractor.fit_transform(graph, nodes[:10])
    labelset = effective_labelset(graph, config)
    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "imdb_features.json"
        write_features_json(features, labelset, target)
        restored = read_features_json(target)
        assert np.array_equal(restored.matrix, features.matrix)
        print(f"\npersisted and restored {restored.matrix.shape} feature matrix "
              f"({target.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
