"""Institution rank prediction on a synthetic publication network.

Reproduces the Section 4.2 workflow end to end on a small world: build a
MAG-like network with a planted KDD-Cup-style relevance ground truth, train
the four regressors on classic vs subgraph vs combined features, report
NDCG@20 for the held-out year, and decode the most discriminative
subgraphs the random forest found (Figure 4's analysis).

Run:  python examples/publication_ranking.py        (~1 minute)
"""

from repro.core import rank_features
from repro.datasets import MagConfig, SyntheticMAG
from repro.experiments import (
    EmbeddingParams,
    RankPredictionExperiment,
    RankTaskConfig,
    render_table1,
)


def main() -> None:
    mag = SyntheticMAG(
        MagConfig(
            num_institutions=30,
            authors_per_institution=6,
            papers_per_conference_year=40,
            conferences=("KDD", "ICML"),
            years=tuple(range(2010, 2016)),
            seed=42,
        )
    )
    config = RankTaskConfig(
        train_years=(2012, 2013, 2014),
        test_year=2015,
        emax=3,
        forest_trees=80,
        embedding_params=EmbeddingParams.fast(),
        seed=0,
    )
    experiment = RankPredictionExperiment(mag, config)

    print("running rank prediction (classic / subgraph / combined / LINE)...")
    result = experiment.run(
        families=("classic", "subgraph", "combined", "line"),
        regressors=("LinRegr", "DecTree", "RanForest", "BayRidge"),
    )
    print()
    print(render_table1(result, families=("classic", "subgraph", "combined", "line")))
    print()

    # --- Figure 4 style interpretation --------------------------------
    print("most discriminative subgraphs (random forest, KDD):")
    model, space = experiment.fit_forest_on_family("KDD", "subgraph")
    graph = mag.build_rank_graph("KDD", 2012)
    for feature in rank_features(model.feature_importances_, space, graph.labelset, top=3):
        print(" ", feature.render(graph.labelset))


if __name__ == "__main__":
    main()
