"""Quickstart: heterogeneous subgraph features in five minutes.

Builds the small publication network of the paper's Figure 1A, runs the
rooted subgraph census around an institution, prints every discovered
subgraph class with its count and a human-readable decoding, and finally
assembles an aligned feature matrix for several nodes.

Run:  python examples/quickstart.py
"""

from repro.core import (
    CensusConfig,
    HeteroGraph,
    SubgraphFeatureExtractor,
    code_to_string,
    describe_code,
    label_connectivity,
    subgraph_census,
)


def build_network() -> HeteroGraph:
    """A miniature scientific publication network: institutions (I),
    authors (A), and papers (P) with one citation."""
    return HeteroGraph.from_edges(
        node_labels={
            "MIT": "I",
            "ETH": "I",
            "alice": "A",
            "bob": "A",
            "carol": "A",
            "paper-1": "P",
            "paper-2": "P",
        },
        edges=[
            ("MIT", "alice"),
            ("MIT", "bob"),
            ("ETH", "carol"),
            ("alice", "paper-1"),
            ("bob", "paper-1"),
            ("carol", "paper-1"),
            ("carol", "paper-2"),
            ("paper-1", "paper-2"),
        ],
    )


def main() -> None:
    graph = build_network()
    print(graph)
    print()
    print(label_connectivity(graph).render())
    print()

    # --- rooted census around one node --------------------------------
    config = CensusConfig(max_edges=3)
    root = graph.index("MIT")
    counts = subgraph_census(graph, root, config)
    print(f"rooted subgraphs around MIT (e_max={config.max_edges}):")
    for code, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        rendered = code_to_string(code, graph.labelset)
        print(f"  {count:>3} x {rendered:<30} {describe_code(code, graph.labelset)}")
    print(f"  total: {sum(counts.values())} subgraphs, {len(counts)} classes")
    print()

    # --- aligned feature matrix for several nodes ---------------------
    extractor = SubgraphFeatureExtractor(config)
    nodes = [graph.index(name) for name in ("MIT", "ETH", "alice", "carol")]
    features = extractor.fit_transform(graph, nodes)
    print(f"feature matrix: {features.matrix.shape[0]} nodes x "
          f"{features.num_features} subgraph classes")
    for row, node in enumerate(features.nodes):
        name = graph.node_id(node)
        total = int(features.matrix[row].sum())
        print(f"  {name:<8} row sum = {total}")


if __name__ == "__main__":
    main()
