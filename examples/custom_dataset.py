"""Bring your own data: from raw records to subgraph features.

Walks the full adoption path on external-style data: parse raw relational
records (here a small in-memory event log), build a labelled edge list,
save it in the library's interchange format, load it back, validate its
label structure, extract features, and fit a model — the workflow a
downstream user of this library would follow with a real dataset.

Run:  python examples/custom_dataset.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import (
    CensusConfig,
    HeteroGraph,
    SubgraphFeatureExtractor,
    label_connectivity,
)
from repro.io import read_edgelist, write_edgelist
from repro.ml import RandomForestClassifier, macro_f1, train_test_split

#: Raw records: (customer, product, store) purchase events.
PURCHASES = [
    ("ana", "espresso", "downtown"),
    ("ana", "croissant", "downtown"),
    ("ben", "espresso", "downtown"),
    ("ben", "baguette", "harbor"),
    ("cho", "croissant", "harbor"),
    ("cho", "baguette", "harbor"),
    ("dia", "espresso", "downtown"),
    ("dia", "croissant", "downtown"),
    ("dia", "macaron", "harbor"),
    ("eli", "macaron", "harbor"),
    ("eli", "baguette", "harbor"),
]


def records_to_graph(purchases) -> HeteroGraph:
    """Customers (C), products (P), stores (S); an edge per relationship."""
    node_labels: dict[str, str] = {}
    edges: set[tuple[str, str]] = set()
    for customer, product, store in purchases:
        node_labels[f"c:{customer}"] = "C"
        node_labels[f"p:{product}"] = "P"
        node_labels[f"s:{store}"] = "S"
        edges.add((f"c:{customer}", f"p:{product}"))
        edges.add((f"p:{product}", f"s:{store}"))
    return HeteroGraph.from_edges(node_labels, edges)


def main() -> None:
    graph = records_to_graph(PURCHASES)
    print(graph)
    print(label_connectivity(graph).render())

    # Persist and reload through the interchange format.
    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "purchases.hel"
        write_edgelist(graph, target)
        graph = read_edgelist(target)
        print(f"\nround-tripped through {target.name}: {graph}")

    # Features for every node, with the node's own label masked so a model
    # must work from structure alone.
    extractor = SubgraphFeatureExtractor(
        CensusConfig(max_edges=3, mask_start_label=True)
    )
    nodes = list(range(graph.num_nodes))
    features = extractor.fit_transform(graph, nodes)
    X = np.log1p(features.matrix)
    y = np.array([graph.labelset.name(graph.label_of(v)) for v in nodes])
    print(f"\nfeature matrix: {X.shape[0]} nodes x {X.shape[1]} subgraph classes")

    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_size=0.4, rng=0, stratify=y
    )
    model = RandomForestClassifier(n_estimators=30, random_state=0)
    model.fit(X_train, y_train)
    predictions = model.predict(X_test)
    print(f"role prediction macro-F1: {macro_f1(y_test, predictions):.3f}")
    for node_type, prediction in zip(y_test, predictions):
        marker = "ok " if node_type == prediction else "MISS"
        print(f"  {marker} true={node_type} predicted={prediction}")


if __name__ == "__main__":
    main()
