"""Figure 3: NDCG per regressor, feature family, and conference.

Paper claims (shape, not absolute numbers): classic and subgraph features
perform well overall while embedded features are consistently worse; for
the stable methods (random forest, Bayesian ridge) subgraph features are at
least competitive with classic features.
"""

import numpy as np

from repro.experiments import render_figure3
from repro.experiments.rank_prediction import FEATURE_FAMILIES


def test_fig3_rank_prediction_grid(benchmark, rank_result):
    result = benchmark.pedantic(lambda: rank_result, rounds=1, iterations=1)

    print()
    print(render_figure3(result))

    conferences = result.conferences()
    assert len(conferences) == 5

    # Every cell of the grid exists and is a valid NDCG.
    for regressor in ("LinRegr", "DecTree", "RanForest", "BayRidge"):
        for family in FEATURE_FAMILIES:
            for conference in conferences:
                score = result.ndcg[(regressor, family, conference)]
                assert 0.0 <= score <= 1.0

    # Shape: for the stable regressors, label-aware features beat the
    # average embedding on average over conferences.
    for regressor in ("RanForest", "BayRidge"):
        informative = np.mean(
            [result.average(regressor, f) for f in ("classic", "subgraph", "combined")]
        )
        embedded = np.mean(
            [result.average(regressor, f) for f in ("node2vec", "deepwalk", "line")]
        )
        print(f"{regressor}: informative avg {informative:.3f} vs embedded avg {embedded:.3f}")
        assert informative > embedded
