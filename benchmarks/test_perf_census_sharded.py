"""Perf gate: the partitioned census over sharded graphs vs. one shard.

Times the Table-3-style MAG workload (``e_max = 3``, ``d_max`` at the
90th degree percentile, masked root) through
:func:`repro.dist.subgraph_census_sharded` twice: once over a single
shard in-process, and once over 4 halo-complete shards fanned across 4
worker processes.  Partition sets are cut *outside* the timed region
(their cost is reported separately as ``partition_build_s`` — on a warm
artifact store real runs skip it entirely) and the shard results are
asserted bit-identical to the single-shard fast engine before any
number is reported, because a perf figure for a wrong answer is
worthless.

Writes ``BENCH_census_sharded.json`` next to the repo root so future
PRs have a perf trajectory to compare against.  The ≥2.5x wall-clock
gate only applies on boxes with at least 4 CPU cores — sharding buys
wall-clock through process parallelism, and a 1-core runner can only
measure the sharding overhead, not the speedup (the JSON records why
the gate was waived).  ``--smoke`` shrinks the workload to seconds,
skips the gate, and does not write the JSON artefact.
"""

from __future__ import annotations

import os
import time

from _bench import bench_path, gate_block, write_bench
from repro.core.census import CensusConfig, subgraph_census
from repro.datasets import sample_nodes_per_label
from repro.dist import PartitionConfig, partition_graph, subgraph_census_sharded
from repro.experiments.common import percentile_degree

RESULT_PATH = bench_path("census_sharded")

#: The acceptance gate: sharded wall-clock speedup at 4 partitions.
MIN_SPEEDUP = 2.5

#: Shard count (and worker count) of the parallel arm.
NUM_PARTITIONS = 4

#: The parallel gate needs real cores to have anything to measure.
MIN_CORES_FOR_GATE = 4


def _timed_sharded(graph, roots, config, pset, n_jobs):
    started = time.perf_counter()
    results = subgraph_census_sharded(
        graph, roots, config, partitions=pset, n_jobs=n_jobs
    )
    return time.perf_counter() - started, results


def test_sharded_census_speedup(benchmark, smoke, mag_label_graph):
    graph = mag_label_graph
    dmax = percentile_degree(graph, 90.0)
    emax = 2 if smoke else 3
    config = CensusConfig(max_edges=emax, max_degree=dmax, mask_start_label=True)
    nodes, _ = sample_nodes_per_label(graph, 2 if smoke else 10, rng=0)
    roots = [int(n) for n in nodes]
    graph.flat()  # adjacency snapshot shared by both arms, built once

    # Shards are content-addressed artifacts in real runs; cut them
    # outside the timed region and report the cost separately.
    build_started = time.perf_counter()
    single = partition_graph(graph, PartitionConfig(num_partitions=1), config)
    sharded = partition_graph(
        graph, PartitionConfig(num_partitions=NUM_PARTITIONS), config
    )
    partition_build_s = time.perf_counter() - build_started

    sharded_s, sharded_results = benchmark.pedantic(
        lambda: _timed_sharded(
            graph, roots, config, sharded, n_jobs=NUM_PARTITIONS
        ),
        rounds=1,
        iterations=1,
    )
    single_s, single_results = _timed_sharded(
        graph, roots, config, single, n_jobs=1
    )
    speedup = single_s / sharded_s

    # Bit-identity first: every shard arm must match the plain fast engine.
    expected = [subgraph_census(graph, r, config, engine="fast") for r in roots]
    assert sharded_results == expected, "sharded census diverged from fast engine"
    assert single_results == expected, "single-shard census diverged from fast engine"

    cores = os.cpu_count() or 1
    gated = cores >= MIN_CORES_FOR_GATE
    print()
    print(
        f"sharded census perf: 1 shard {single_s:.3f}s vs {NUM_PARTITIONS} shards "
        f"{sharded_s:.3f}s over {len(roots)} roots -> {speedup:.2f}x "
        f"(gate {MIN_SPEEDUP}x, {cores} cores"
        + ("" if gated else ", waived: needs >= 4 cores")
        + (", smoke: gate+JSON skipped)" if smoke else ")")
    )

    if smoke:
        return

    stats = sharded.aggregate_stats()
    write_bench(
        "census_sharded",
        workload={
            "graph": "MAG label graph (3 years)",
            "num_nodes": graph.num_nodes,
            "num_roots": len(roots),
            "e_max": config.max_edges,
            "d_max": dmax,
            "mask_start_label": True,
        },
        results={
            "partitions": {
                "count": NUM_PARTITIONS,
                "strategy": sharded.config.strategy,
                "halo_depth": sharded.halo_depth,
                "halo_ratio": stats["halo_ratio"],
                "max_partition_nodes": stats["max_partition_nodes"],
                "partition_build_s": partition_build_s,
            },
            "single_shard_s": single_s,
            "sharded_s": sharded_s,
            "speedup": speedup,
            "cpu_cores": cores,
        },
        gate=gate_block(
            MIN_SPEEDUP,
            applied=gated,
            waiver=None
            if gated
            else f"parallel gate needs >= {MIN_CORES_FOR_GATE} cores, "
            f"box has {cores}",
        ),
    )

    if gated:
        assert speedup >= MIN_SPEEDUP, (
            f"sharded census speedup {speedup:.2f}x below the {MIN_SPEEDUP}x gate"
        )
