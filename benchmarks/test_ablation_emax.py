"""Ablation: subgraph size e_max vs cost and discriminative power.

Section 3.1 claims higher ``e_max`` buys more discriminative features at a
cost that grows roughly exponentially with subgraph size.  This bench
sweeps ``e_max`` on the LOAD network and reports census time, vocabulary
size, total subgraph count, and downstream macro-F1.
"""

import time

import numpy as np

from repro.core.census import CensusConfig, census_total, subgraph_census
from repro.core.features import FeatureSpace
from repro.experiments.label_prediction import LabelPredictionExperiment
from repro.ml import StandardScaler, macro_f1, train_test_split, tune_regularization
from repro.ml.preprocessing import log1p_counts
from benchmarks.conftest import label_task_config

EMAX_LEVELS = (1, 2, 3, 4)


def test_ablation_emax_sweep(benchmark, load_dataset):
    graph = load_dataset.graph
    config = label_task_config(per_label=25)
    experiment = LabelPredictionExperiment(graph, config)
    dmax = int(np.percentile(graph.degrees(), 90))

    def run():
        rows = []
        for emax in EMAX_LEVELS:
            census_config = CensusConfig(
                max_edges=emax, max_degree=dmax, mask_start_label=True
            )
            started = time.perf_counter()
            censuses = [
                subgraph_census(graph, int(node), census_config)
                for node in experiment.nodes
            ]
            elapsed = time.perf_counter() - started
            full_space = FeatureSpace().fit(censuses)
            # Prune one-off codes: at bench scale (~100 samples) the raw
            # e_max=4 vocabulary has thousands of singleton columns that
            # overfit the classifier; the paper works at 250 nodes/label.
            space = full_space.prune(censuses, min_nodes=3)
            X = log1p_counts(space.to_matrix(censuses))
            X_train, X_test, y_train, y_test = train_test_split(
                X, experiment.targets, test_size=0.3, rng=0,
                stratify=experiment.targets,
            )
            scaler = StandardScaler().fit(X_train)
            model = tune_regularization(
                scaler.transform(X_train), y_train, grid=(0.1, 1.0), rng=0
            )
            f1 = macro_f1(y_test, model.predict(scaler.transform(X_test)))
            rows.append(
                {
                    "emax": emax,
                    "seconds": elapsed,
                    "vocabulary": len(full_space),
                    "subgraphs": sum(census_total(c) for c in censuses),
                    "macro_f1": f1,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Ablation -- e_max sweep (LOAD)")
    print(f"{'emax':>4} {'seconds':>9} {'vocab':>7} {'subgraphs':>11} {'macroF1':>8}")
    for row in rows:
        print(
            f"{row['emax']:>4} {row['seconds']:>9.2f} {row['vocabulary']:>7} "
            f"{row['subgraphs']:>11} {row['macro_f1']:>8.3f}"
        )

    # Cost and vocabulary grow monotonically (roughly exponentially).
    for prev, curr in zip(rows, rows[1:]):
        assert curr["vocabulary"] > prev["vocabulary"]
        assert curr["subgraphs"] > prev["subgraphs"]
    # Superlinear growth of the subgraph space between consecutive levels.
    assert rows[-1]["subgraphs"] > 5 * rows[-2]["subgraphs"] / 2

    # Discriminative power: the best level beats the 1-edge baseline, and
    # the richest level stays within noise of it (the paper's monotone
    # improvement needs its 250-nodes-per-label sample sizes).
    best = max(row["macro_f1"] for row in rows)
    assert best >= rows[0]["macro_f1"]
    assert rows[-1]["macro_f1"] >= rows[0]["macro_f1"] - 0.1
