"""Perf gate: the fast embedding pipeline vs. the reference implementation.

Times the three embedding baselines end to end — walk generation, pair
extraction, and SGNS training for DeepWalk and node2vec; edge sampling and
training for LINE — on the Table-3 MAG embedding workload, once with
``engine="fast"`` and once with ``engine="reference"``, and writes
``BENCH_embeddings.json`` next to the repo root so future PRs have a perf
trajectory to compare against.

The gate asserts the fast pipeline is at least 3x faster in aggregate.
Both pipelines sample the same distributions (tier-1 covers the
distributional parity and the reference engines' seeded bit-exactness);
here we only sanity-check that each run produced a finite embedding of
the right shape, because a perf number for a broken answer is worthless.

``--smoke`` shrinks the workload to a few seconds, skips the gate, and
does not write the JSON artefact.
"""

from __future__ import annotations

import time

import numpy as np

from _bench import bench_path, gate_block, write_bench
from repro.embeddings import DeepWalk, LINE, Node2Vec
from repro.experiments.common import EmbeddingParams

RESULT_PATH = bench_path("embeddings")

#: The acceptance gate: aggregate fast-pipeline speedup on this workload.
MIN_SPEEDUP = 3.0

#: Smoke-mode preset: same shape as the bench workload, seconds not minutes.
SMOKE_EMBEDDING = EmbeddingParams(
    dim=8, num_walks=2, walk_length=8, window=3, negative=3, line_samples=2_000
)


def _models(params: EmbeddingParams, engine: str) -> dict:
    """The three baselines configured for one pipeline engine.

    node2vec runs in the biased (p != 1) regime so the bench exercises the
    rejection-sampling path, not the uniform delegation.
    """
    return {
        "deepwalk": DeepWalk(
            dim=params.dim,
            num_walks=params.num_walks,
            walk_length=params.walk_length,
            window=params.window,
            negative=params.negative,
            seed=0,
            engine=engine,
        ),
        "node2vec": Node2Vec(
            dim=params.dim,
            num_walks=params.num_walks,
            walk_length=params.walk_length,
            window=params.window,
            negative=params.negative,
            p=0.5,
            q=2.0,
            seed=0,
            engine=engine,
        ),
        "line": LINE(
            dim=params.dim,
            num_samples=params.line_samples,
            negative=params.negative,
            seed=0,
            engine=engine,
        ),
    }


def _time_pipeline(graph, params: EmbeddingParams, engine: str) -> dict[str, float]:
    seconds = {}
    for name, model in _models(params, engine).items():
        started = time.perf_counter()
        model.fit(graph)
        seconds[name] = time.perf_counter() - started
        embedding = model.embedding_
        assert embedding.shape[0] == graph.num_nodes
        assert np.all(np.isfinite(embedding))
    return seconds


def test_fast_pipeline_speedup(benchmark, mag_label_graph, smoke):
    graph = mag_label_graph
    params = SMOKE_EMBEDDING if smoke else EmbeddingParams.fast()
    graph.flat()  # build the adjacency snapshot outside the timed region

    fast = benchmark.pedantic(
        lambda: _time_pipeline(graph, params, "fast"), rounds=1, iterations=1
    )
    reference = _time_pipeline(graph, params, "reference")
    total_fast = sum(fast.values())
    total_reference = sum(reference.values())
    speedup = total_reference / total_fast

    print()
    for name in fast:
        print(
            f"  {name:<9} fast {fast[name]:7.3f}s vs reference "
            f"{reference[name]:7.3f}s -> {reference[name] / fast[name]:.2f}x"
        )
    print(
        f"embedding perf: fast {total_fast:.3f}s vs reference "
        f"{total_reference:.3f}s -> {speedup:.2f}x (gate {MIN_SPEEDUP}x)"
        + (" [smoke: gate skipped]" if smoke else f" -> {RESULT_PATH.name}")
    )

    if smoke:
        return

    write_bench(
        "embeddings",
        workload={
            "graph": "MAG label graph (3 years)",
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "dim": params.dim,
            "num_walks": params.num_walks,
            "walk_length": params.walk_length,
            "window": params.window,
            "negative": params.negative,
            "line_samples": params.line_samples,
            "node2vec_pq": [0.5, 2.0],
        },
        results={
            "fast": {k: float(v) for k, v in fast.items()},
            "reference": {k: float(v) for k, v in reference.items()},
            "total_fast_s": float(total_fast),
            "total_reference_s": float(total_reference),
            "speedup": float(speedup),
        },
        gate=gate_block(MIN_SPEEDUP),
    )

    assert speedup >= MIN_SPEEDUP, (
        f"fast pipeline speedup {speedup:.2f}x below the {MIN_SPEEDUP}x gate"
    )
