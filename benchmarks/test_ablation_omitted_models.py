"""Appendix: the regressors the paper evaluated and omitted (Section 4.2.3).

"We also evaluated based on SVM and stochastic gradient descent, but found
that these performed poorly across all features and thus omit the results."
This bench runs LinearSVR and SGDRegressor on the same rank-prediction
setup (top-5 univariate features plus scaling, like the other weak
learners), averaged over every conference as Table 1 does, and checks they
do not dominate the best reported method.  A single conference can flip
either way — the omission claim is about the average.
"""

import numpy as np

from repro.ml import (
    BayesianRidge,
    LinearSVR,
    RandomForestRegressor,
    SGDRegressor,
    SelectKBest,
    StandardScaler,
    ndcg_at,
)


def _evaluate_selected(model, k, X_train, y_train, X_test, y_test, ndcg_n):
    selector = SelectKBest(k=k).fit(X_train, y_train)
    scaler = StandardScaler().fit(selector.transform(X_train))
    model.fit(scaler.transform(selector.transform(X_train)), y_train)
    predictions = model.predict(scaler.transform(selector.transform(X_test)))
    return ndcg_at(y_test, predictions, n=ndcg_n)


def test_omitted_models_trail_reported_ones(benchmark, rank_experiment):
    experiment = rank_experiment
    config = experiment.config
    conferences = experiment.mag.config.conferences

    def run():
        per_model: dict[str, list[float]] = {
            "LinearSVR": [],
            "SGD": [],
            "RanForest": [],
            "BayRidge": [],
        }
        for conference in conferences:
            by_year = experiment.feature_family(conference, "subgraph")
            X_train, y_train = experiment._stack_training(conference, by_year)
            X_test = by_year[config.test_year]
            y_test = experiment._targets(conference, config.test_year)
            per_model["LinearSVR"].append(
                _evaluate_selected(
                    LinearSVR(C=1.0), config.select_small,
                    X_train, y_train, X_test, y_test, config.ndcg_n,
                )
            )
            per_model["SGD"].append(
                _evaluate_selected(
                    SGDRegressor(max_iter=50, random_state=0), config.select_small,
                    X_train, y_train, X_test, y_test, config.ndcg_n,
                )
            )
            per_model["BayRidge"].append(
                _evaluate_selected(
                    BayesianRidge(), config.select_large,
                    X_train, y_train, X_test, y_test, config.ndcg_n,
                )
            )
            forest = RandomForestRegressor(
                n_estimators=config.forest_trees,
                max_features=config.forest_max_features,
                random_state=config.seed,
            )
            forest.fit(X_train, y_train)
            per_model["RanForest"].append(
                ndcg_at(y_test, forest.predict(X_test), n=config.ndcg_n)
            )
        return {name: float(np.mean(scores)) for name, scores in per_model.items()}

    averages = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Appendix -- omitted models on subgraph features (avg over conferences)")
    for name, score in averages.items():
        print(f"  {name:<10} NDCG@{config.ndcg_n} = {score:.3f}")

    best_reported = max(averages["RanForest"], averages["BayRidge"])
    # The omitted models must not dominate the best reported method.
    assert averages["LinearSVR"] <= best_reported + 0.05
    assert averages["SGD"] <= best_reported + 0.05
    for score in averages.values():
        assert 0.0 <= score <= 1.0
