"""Table 2: macro-F1 stability under the maximum-degree parameter.

Paper claims: LOAD (dense, fully connected label structure) is very stable
across d_max percentile levels; IMDB and MAG are less stable; for the two
larger networks the extraction "did not finish" without a degree cap, which
we mirror by guarding the uncapped run with the census's per-root subgraph
cap (a tripped guard renders as a dash, like the paper's "--").
"""

import math

from repro.experiments import render_table2
from repro.experiments.label_prediction import LabelPredictionExperiment
from benchmarks.conftest import label_task_config

PERCENTILES = (90, 92, 94, 96, 98, 100)
#: Per-root guard for the uncapped (100%) column, standing in for the
#: paper's "extraction did not finish" timeout.
UNCAPPED_GUARD = 150_000


def test_table2_dmax_stability(benchmark, label_graphs):
    def run():
        scores: dict[str, dict[float, float]] = {}
        for name, graph in label_graphs.items():
            config = label_task_config(per_label=30, n_repeats=3)
            experiment = LabelPredictionExperiment(graph, config)
            scores[name] = experiment.run_dmax_sweep(
                percentiles=PERCENTILES, max_subgraphs=UNCAPPED_GUARD
            )
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_table2(scores))
    for name, levels in scores.items():
        unfinished = [p for p, v in levels.items() if math.isnan(v)]
        for level in unfinished:
            print(f"{name} @ {level:.0f}%: did not finish (census guard tripped)")

    capped_levels = [float(p) for p in PERCENTILES[:-1]]
    for name in label_graphs:
        capped = [scores[name][p] for p in capped_levels]
        assert all(0.0 <= v <= 1.0 for v in capped)

    # Shape: LOAD (dense, fully connected labels) is the most stable
    # dataset across the capped levels.
    spreads = {
        name: max(scores[name][p] for p in capped_levels)
        - min(scores[name][p] for p in capped_levels)
        for name in label_graphs
    }
    print("spreads:", {k: round(v, 3) for k, v in spreads.items()})
    assert spreads["LOAD"] <= max(spreads.values())
    # Scores are meaningfully above chance at the 90% level everywhere.
    for name, graph in label_graphs.items():
        chance = 1.0 / len(graph.labelset)
        assert scores[name][90.0] > chance
