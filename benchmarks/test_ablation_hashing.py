"""Ablation: census keying by canonical tuple vs string vs rolling hash.

DESIGN.md calls out the Section 3.2 claim that the rolling integer hash is
cheaper than string conversion + hashing.  This bench times the three
keying modes of the census on identical workloads and checks their
outputs' consistency (string keys are bijective with canonical keys; hash
keys merge some classes but preserve totals).
"""

import numpy as np
import pytest

from repro.core.census import CensusConfig, census_total, subgraph_census
from repro.datasets import sample_nodes_per_label


@pytest.fixture(scope="module")
def workload(request):
    load = request.getfixturevalue("load_dataset")
    graph = load.graph
    nodes, _ = sample_nodes_per_label(graph, 6, rng=1)
    dmax = int(np.percentile(graph.degrees(), 90))
    return graph, nodes, dmax


def _run_all(graph, nodes, dmax, key):
    config = CensusConfig(max_edges=3, max_degree=dmax, key=key)
    return [subgraph_census(graph, int(node), config) for node in nodes]


@pytest.mark.parametrize("key", ["canonical", "string", "hash"])
def test_ablation_census_key_mode(benchmark, workload, key):
    graph, nodes, dmax = workload
    results = benchmark(lambda: _run_all(graph, nodes, dmax, key))
    assert all(census_total(c) > 0 for c in results)


def test_ablation_key_modes_agree(workload):
    graph, nodes, dmax = workload
    canonical = _run_all(graph, nodes, dmax, "canonical")
    strings = _run_all(graph, nodes, dmax, "string")
    hashed = _run_all(graph, nodes, dmax, "hash")
    for c, s, h in zip(canonical, strings, hashed):
        assert census_total(c) == census_total(s) == census_total(h)
        assert len(c) == len(s)
        assert len(h) <= len(c)
