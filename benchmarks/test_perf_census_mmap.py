"""Perf gate: the out-of-core mmap graph vs. the in-memory dict graph.

Two claims, one artefact (``BENCH_census_mmap.json``):

1. **Flat peak RSS.**  A synthetic circulant network is generated at a
   scale where neither its ``.hmg`` file nor its dict-backed in-memory
   form fits inside a fixed working-set budget over the interpreter
   baseline (a calibration subprocess measures the dict graph's
   footprint at 1/8 scale; the extrapolation must exceed the cap for
   the workload to count, and the file itself must out-size the budget
   so the run is genuinely out-of-core).  A full rank-prediction-style
   run (``census_stream`` → feature matrix → random-forest regressor →
   NDCG) executes in its own subprocess and its ``ru_maxrss`` is
   asserted under ``baseline + budget`` — the pipeline completes a job
   the dict graph could not, in bounded memory.  Ingestion
   (``build_mmap_graph``) gets a separate, larger budget: its working
   set is O(nodes + sort chunk) rather than O(1) in the graph, but
   still far under the O(edges) dict footprint.

2. **Cheap parallel startup.**  ``census_many`` at ``n_jobs=2`` over a
   *spawned* pool is timed over the mmap graph (workers re-open the
   mapping from its 81-byte pickled path) and over the dict twin
   (workers unpickle the whole graph).  Results are asserted
   bit-identical to the serial dict census before any number is
   reported; the mmap arm must win by ≥ 1.5x.  The gate is waived (with
   the reason recorded in the JSON) on single-core boxes, where a
   process pool can only measure its own overhead.

``--smoke`` shrinks both parts to seconds, skips the gate and the cap
assertions (a tiny graph cannot out-size any honest cap), and writes no
JSON artefact.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from _bench import bench_path, gate_block, write_bench
from repro.core.census import CensusConfig, subgraph_census
from repro.core.features import SubgraphFeatureExtractor
from repro.core.mmap_graph import MmapGraph
from repro.io.edgelist import read_edgelist
from repro.io.stream import write_mmap_graph

RESULT_PATH = bench_path("census_mmap")

#: The acceptance gate: parallel census speedup from not pickling the graph.
MIN_SPEEDUP = 1.5

#: The parallel gate needs a second core to have anything to measure.
MIN_CORES_FOR_GATE = 2

#: Full-scale workload: nodes * strides edges (~120 MiB on disk), sized so
#: both the file and the extrapolated dict-graph footprint overshoot the
#: pipeline's working-set budget severalfold.
FULL_NODES = 240_000
STRIDES = 10

#: Dict-graph calibration runs at 1/8 scale and extrapolates linearly.
CALIBRATION_DIVISOR = 8

#: Working-set budget (over the interpreter baseline) for the streaming
#: rank-prediction run: census rows, feature matrix, forest, artifact
#: store, and whatever mmap pages the censuses actually touch.  Sized
#: for the census engine's per-root temporaries (~19k subgraph rows per
#: root at this workload's degree and ``e_max``) — the same arenas a
#: dict-backed run allocates — with ~20 MiB headroom.
PIPELINE_BUDGET_KB = 64 * 1024

#: Ingestion budget: O(nodes) label/degree/id state plus one sort chunk
#: and the k-way merge blocks — larger than the pipeline's, still a
#: fraction of the dict footprint.
INGEST_BUDGET_KB = 96 * 1024

CHILD = Path(__file__).resolve().parent / "_census_mmap_child.py"
SRC = Path(__file__).resolve().parent.parent / "src"


def run_child(mode: str, params: dict) -> dict:
    """Run one `_census_mmap_child.py` mode; return its JSON report."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(CHILD), mode, json.dumps(params)],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    assert proc.returncode == 0, (
        f"{mode} child failed:\n{proc.stdout}\n{proc.stderr}"
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _timed_census_many(graph, roots, config, mp_context):
    extractor = SubgraphFeatureExtractor(
        config, n_jobs=2, mp_context=mp_context
    )
    started = time.perf_counter()
    results = extractor.census_many(graph, roots)
    return time.perf_counter() - started, results


def test_out_of_core_census(benchmark, smoke, tmp_path):
    nodes = 2_000 if smoke else FULL_NODES
    strides = 3 if smoke else STRIDES
    num_roots = 12 if smoke else 48
    emax = 2 if smoke else 3
    trees = 5 if smoke else 20
    chunk_edges = 1 << (10 if smoke else 16)

    # -- part 1: bounded-memory ingest + rank-style run ------------------
    baseline_kb = run_child("baseline", {})["peak_rss_kb"]

    edgelist = tmp_path / "full.edges"
    run_child(
        "generate", {"out": str(edgelist), "nodes": nodes, "strides": strides}
    )
    hmg = tmp_path / "full.hmg"
    ingest = run_child(
        "ingest",
        {"edgelist": str(edgelist), "out": str(hmg), "chunk_edges": chunk_edges},
    )
    cap_kb = baseline_kb + PIPELINE_BUDGET_KB
    ingest_cap_kb = baseline_kb + INGEST_BUDGET_KB

    calib_edges = tmp_path / "calib.edges"
    run_child(
        "generate",
        {
            "out": str(calib_edges),
            "nodes": nodes // CALIBRATION_DIVISOR,
            "strides": strides,
        },
    )
    calibration = run_child("dict_rss", {"edgelist": str(calib_edges)})
    per_edge_kb = max(
        0.0, calibration["peak_rss_kb"] - baseline_kb
    ) / calibration["num_edges"]
    dict_extrapolated_kb = baseline_kb + per_edge_kb * nodes * strides

    pipeline = benchmark.pedantic(
        lambda: run_child(
            "pipeline",
            {
                "graph": str(hmg),
                "num_roots": num_roots,
                "emax": emax,
                "batch_size": 16,
                "trees": trees,
            },
        ),
        rounds=1,
        iterations=1,
    )
    assert pipeline["mmap_backed"], "pipeline fell back to buffered reads"
    assert pipeline["num_roots"] == num_roots
    assert 0.0 <= pipeline["ndcg"] <= 1.0

    # -- part 2: parallel census over mmap vs dict, bit-identical --------
    # The calibration-scale graph is the dict arm; its mmap twin differs
    # only in storage, so the wall-clock gap is pure pool-startup cost.
    dict_graph = read_edgelist(calib_edges)
    dict_graph.flat()
    mmap_twin = MmapGraph(write_mmap_graph(dict_graph, tmp_path / "twin.hmg"))
    config = CensusConfig(max_edges=2, mask_start_label=True)
    step = max(1, dict_graph.num_nodes // 24)
    roots = list(range(0, dict_graph.num_nodes, step))[:24]

    expected = [subgraph_census(dict_graph, r, config) for r in roots]
    dict_s, dict_results = _timed_census_many(
        dict_graph, roots, config, mp_context="spawn"
    )
    mmap_s, mmap_results = _timed_census_many(
        mmap_twin, roots, config, mp_context="spawn"
    )
    assert mmap_results == expected, "mmap census diverged from dict engine"
    assert dict_results == expected, "parallel dict census diverged from serial"
    speedup = dict_s / mmap_s

    cores = os.cpu_count() or 1
    gated = cores >= MIN_CORES_FOR_GATE
    print()
    print(
        f"out-of-core census: {nodes * strides} edges, "
        f".hmg {ingest['file_bytes'] / 1e6:.1f} MB, "
        f"ingest {ingest['seconds']:.1f}s @ {ingest['peak_rss_kb'] / 1024:.0f} MB "
        f"(cap {ingest_cap_kb / 1024:.0f} MB), "
        f"pipeline @ {pipeline['peak_rss_kb'] / 1024:.0f} MB "
        f"(cap {cap_kb / 1024:.0f} MB, dict extrapolates to "
        f"{dict_extrapolated_kb / 1024:.0f} MB); "
        f"spawn census_many x2: dict {dict_s:.2f}s vs mmap {mmap_s:.2f}s "
        f"-> {speedup:.2f}x (gate {MIN_SPEEDUP}x, {cores} cores"
        + ("" if gated else ", waived: needs >= 2 cores")
        + (", smoke: gates+JSON skipped)" if smoke else ")")
    )

    if smoke:
        return

    # The workload only proves anything if the graph out-sizes the very
    # budget the out-of-core pipeline is held to, in both of its other
    # representations: the raw file and the extrapolated dict footprint.
    assert ingest["file_bytes"] / 1024 > PIPELINE_BUDGET_KB, (
        f"workload too small: .hmg file is {ingest['file_bytes']} bytes, "
        f"under the {PIPELINE_BUDGET_KB} KiB working-set budget"
    )
    assert dict_extrapolated_kb > cap_kb, (
        f"workload too small: dict graph extrapolates to "
        f"{dict_extrapolated_kb:.0f} KiB, under the {cap_kb:.0f} KiB cap"
    )
    assert pipeline["peak_rss_kb"] <= cap_kb, (
        f"pipeline peak RSS {pipeline['peak_rss_kb']:.0f} KiB over the "
        f"{cap_kb:.0f} KiB cap"
    )
    assert ingest["peak_rss_kb"] <= ingest_cap_kb, (
        f"ingest peak RSS {ingest['peak_rss_kb']:.0f} KiB over the "
        f"{ingest_cap_kb:.0f} KiB ingest cap"
    )

    write_bench(
        "census_mmap",
        workload={
            "graph": f"circulant, {nodes} nodes x {strides} strides",
            "num_nodes": nodes,
            "num_edges": nodes * strides,
            "num_roots": num_roots,
            "e_max": emax,
            "mask_start_label": True,
            "chunk_edges": chunk_edges,
        },
        results={
            "rss": {
                "cap_kb": cap_kb,
                "ingest_cap_kb": ingest_cap_kb,
                "baseline_kb": baseline_kb,
                "pipeline_budget_kb": PIPELINE_BUDGET_KB,
                "ingest_budget_kb": INGEST_BUDGET_KB,
                "file_bytes": ingest["file_bytes"],
                "ingest_peak_kb": ingest["peak_rss_kb"],
                "pipeline_peak_kb": pipeline["peak_rss_kb"],
                "dict_extrapolated_kb": dict_extrapolated_kb,
                "dict_calibration_edges": calibration["num_edges"],
            },
            "ingest_s": ingest["seconds"],
            "pipeline_census_s": pipeline["census_seconds"],
            "pipeline_total_s": pipeline["total_seconds"],
            "pipeline_ndcg": pipeline["ndcg"],
            "parallel": {
                "n_jobs": 2,
                "mp_context": "spawn",
                "num_roots": len(roots),
                "dict_s": dict_s,
                "mmap_s": mmap_s,
                "speedup": speedup,
            },
            "cpu_cores": cores,
        },
        gate=gate_block(
            MIN_SPEEDUP,
            applied=gated,
            waiver=None
            if gated
            else f"parallel gate needs >= {MIN_CORES_FOR_GATE} cores, "
            f"box has {cores}",
        ),
    )

    if gated:
        assert speedup >= MIN_SPEEDUP, (
            f"mmap parallel census speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP}x gate"
        )
