"""Perf gate: the network substrate under both of its production roles.

Two measurements on one artefact:

* **Remote sharded census** — a 2-worker TCP fleet (in-process threads,
  so the numbers isolate protocol + pickle overhead, not machine count)
  censuses the same root set as the local pool; the bench records
  roots/s for both and their ratio, and asserts bit-identical results
  (the acceptance criterion that matters at any speed).
* **Serve over TCP** — the replay harness from ``test_perf_serve`` runs
  against ``127.0.0.1`` instead of a unix socket, recording sustained
  req/s with client-side p50/p99.

Gates: remote census overhead ratio and TCP serve throughput both need
real parallelism — the workers and the daemon's thread pool only
overlap past one core — so on a single-core runner both gates are
waived and the JSON records why.  ``--smoke`` shrinks the workload,
skips the gate, and does not write the artefact.

Writes ``BENCH_net.json`` next to the repo root.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time

import numpy as np

from _bench import gate_block, write_bench
from repro.core.census import CensusConfig
from repro.datasets.synthetic import affinity_graph
from repro.dist import (
    PartitionConfig,
    ShardWorker,
    partition_graph,
    sharded_census_map,
)
from repro.net import NetClient, NetError, RetryPolicy
from repro.obs import fresh_telemetry
from repro.serve import ReplayConfig, ServeConfig
from repro.serve.replay import run_in_process

#: TCP serve must sustain this many mixed requests/s when gated.
MIN_TCP_RPS = 800.0

#: Remote census may cost at most this multiple of local wall time
#: (2 workers on loopback; the budget is protocol + blob overhead).
MAX_REMOTE_OVERHEAD = 3.0

#: Worker fan-out and the daemon's loop+pool both need a second core.
MIN_CORES_FOR_GATE = 2

WORKER_COUNT = 2


def _bench_graph(scale: int = 1):
    return affinity_graph(
        label_sizes={"a": 40 * scale, "b": 35 * scale, "c": 25 * scale},
        affinity={("a", "b"): 1.0, ("b", "c"): 0.7, ("a", "c"): 0.3},
        mean_degree=3.0,
        rng=np.random.default_rng(0),
    )


class _Fleet:
    """N in-process TCP ShardWorkers (same shape as the dist tests)."""

    def __init__(self, count: int):
        self.workers = [ShardWorker("127.0.0.1:0") for _ in range(count)]
        self.threads = []
        self._started = threading.Semaphore(0)
        for worker in self.workers:
            thread = threading.Thread(
                target=self._serve, args=(worker,), daemon=True
            )
            thread.start()
            self.threads.append(thread)
        for _ in self.workers:
            assert self._started.acquire(timeout=10), "worker failed to start"

    def _serve(self, worker: ShardWorker) -> None:
        async def main():
            ready = asyncio.Event()
            task = asyncio.ensure_future(worker.run(ready))
            await ready.wait()
            self._started.release()
            await task

        asyncio.run(main())

    @property
    def endpoints(self) -> list[str]:
        return [str(worker.endpoint) for worker in self.workers]

    def __enter__(self) -> "_Fleet":
        return self

    def __exit__(self, *exc_info) -> None:
        for worker in self.workers:
            try:
                with NetClient(
                    worker.endpoint, retry=RetryPolicy(retries=0)
                ) as client:
                    client.call({"op": "shutdown"})
            except NetError:
                pass
        for thread in self.threads:
            thread.join(timeout=5)


def test_net_remote_census_and_tcp_serve(smoke):
    scale = 1 if smoke else 3
    graph = _bench_graph(scale)
    config = CensusConfig(max_edges=3)
    pset = partition_graph(
        graph, PartitionConfig(num_partitions=4), config
    )
    roots = list(range(graph.num_nodes))

    # -- remote sharded census vs the local pool --------------------------
    with fresh_telemetry():
        started = time.perf_counter()
        local = sharded_census_map(graph, roots, config, pset)
        local_s = time.perf_counter() - started
    with _Fleet(WORKER_COUNT) as fleet:
        with fresh_telemetry() as telemetry:
            started = time.perf_counter()
            remote = sharded_census_map(
                graph,
                roots,
                config,
                pset,
                executor="remote",
                workers=fleet.endpoints,
            )
            remote_s = time.perf_counter() - started
            net_counters = telemetry.as_dict()["counters"]
    assert remote == local, "remote census diverged from the local pool"
    assert net_counters["net/shards_shipped"] == len(pset)
    overhead = remote_s / local_s if local_s > 0 else float("inf")
    remote_rps = len(roots) / remote_s

    # -- serve over TCP ---------------------------------------------------
    requests = 300 if smoke else 3000
    with fresh_telemetry():
        report, service = run_in_process(
            graph,
            "127.0.0.1:0",
            serve_config=ServeConfig(emax=3, dmax=6),
            replay_config=ReplayConfig(
                requests=requests, connections=8, write_fraction=0.02, seed=1
            ),
        )
    assert report.errors == 0, f"TCP replay saw errors: {report.error_counts}"
    assert report.requests == requests
    tcp_rps = report.throughput_rps

    cores = os.cpu_count() or 1
    gated = cores >= MIN_CORES_FOR_GATE
    print()
    print(
        f"net perf: remote census {remote_rps:.0f} roots/s over "
        f"{WORKER_COUNT} TCP workers ({overhead:.2f}x local pool), "
        f"serve-over-TCP {report.summary()} "
        f"({cores} cores"
        + ("" if gated else ", waived: needs >= 2 cores")
        + (", smoke: gate+JSON skipped)" if smoke else ")")
    )

    if smoke:
        return

    waiver = None if gated else f"needs >= {MIN_CORES_FOR_GATE} cores, has {cores}"
    write_bench(
        "net",
        workload={
            "graph": "affinity graph (3 labels)",
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "num_roots": len(roots),
            "partitions": len(pset),
            "workers": WORKER_COUNT,
            "transport": "tcp",
            "serve_requests": requests,
            "e_max": config.max_edges,
        },
        results={
            "local_census_s": local_s,
            "remote_census_s": remote_s,
            "remote_overhead": overhead,
            "remote_roots_per_s": remote_rps,
            "shards_shipped": int(net_counters["net/shards_shipped"]),
            "tcp_throughput_rps": tcp_rps,
            "tcp_p50_ms": report.percentile(50) * 1e3,
            "tcp_p99_ms": report.percentile(99) * 1e3,
        },
        # min_speedup records the overhead ceiling's reciprocal role:
        # the shared field stays the 1.0 identity and the real
        # thresholds ride next to it.
        gate=gate_block(1.0, applied=gated, waiver=waiver)
        | {"max_remote_overhead": MAX_REMOTE_OVERHEAD, "min_tcp_rps": MIN_TCP_RPS},
    )
    if gated:
        assert overhead <= MAX_REMOTE_OVERHEAD, (
            f"remote census cost {overhead:.2f}x local, "
            f"budget is {MAX_REMOTE_OVERHEAD}x"
        )
        assert tcp_rps >= MIN_TCP_RPS, (
            f"TCP serve sustained {tcp_rps:.0f} req/s, gate is {MIN_TCP_RPS:.0f}"
        )
