"""Table 3: feature-extraction time per node.

Paper claims (shape): the subgraph census is orders of magnitude slower per
node than the sampled embedding baselines; its per-node distribution is
heavily right-skewed (max >> p95 >> mean is possible), because census cost
follows the degree distribution.
"""

import numpy as np

from repro.datasets import sample_nodes_per_label
from repro.experiments import render_table3
from repro.experiments.runtime import runtime_report
from benchmarks.conftest import BENCH_EMBEDDING


def test_table3_extraction_runtime(benchmark, label_graphs):
    def run():
        reports = []
        for name, graph in label_graphs.items():
            nodes, _ = sample_nodes_per_label(graph, 10, rng=0)
            reports.append(
                runtime_report(
                    name,
                    graph,
                    nodes,
                    emax=3,
                    dmax_percentile=90.0,
                    embedding_params=BENCH_EMBEDDING,
                )
            )
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(render_table3(reports))

    for report in reports:
        # Percentile ordering is internally consistent.
        assert report.census_p75 <= report.census_p90 <= report.census_p95
        assert report.census_max >= report.census_p95
        # Skew: the worst node costs several times the mean (Table 3's
        # outlier columns; the paper sees up to 100x).
        assert report.census_max > 1.5 * report.census_mean

    # Census per node is slower than per-node embedding cost for at least
    # two of the three datasets (the paper: slower on all three by 10-100x;
    # our embeddings are amortised over smaller graphs, so allow one flip).
    slower = sum(
        1
        for report in reports
        if report.census_mean > max(report.embedding_mean.values())
    )
    assert slower >= 2
