"""Ablation: directed vs undirected features on the citation network.

Section 5 reports a *negative* result the directed-ablation bench must not
contradict: on academic citation networks (the only evaluation data with
meaningful edge directions) the authors "found no significant difference in
the results" between directed and undirected subgraph features.  This bench
runs the rank-prediction task with both feature variants on the synthetic
MAG and checks the NDCG gap is small — unlike the planted-direction world
of ``test_ablation_directed.py`` where direction is the whole signal.
"""

import numpy as np

from repro.core.census import CensusConfig
from repro.core.features import FeatureSpace, SubgraphFeatureExtractor
from repro.extensions import typed_subgraph_census
from repro.ml import RandomForestRegressor, ndcg_at


def test_directed_mag_no_significant_difference(benchmark, mag_world, rank_config):
    conference = mag_world.config.conferences[0]
    config = rank_config
    years = [*config.train_years, config.test_year]

    def run():
        # Undirected subgraph features.
        extractor = SubgraphFeatureExtractor(CensusConfig(max_edges=config.emax))
        undirected_censuses = {}
        directed_censuses = {}
        for year in years:
            graph = mag_world.build_rank_graph(conference, year - 1)
            digraph = mag_world.build_rank_digraph(conference, year - 1)
            roots = [graph.index(inst) for inst in mag_world.institutions]
            undirected_censuses[year] = extractor.census_many(graph, roots)
            directed_censuses[year] = [
                typed_subgraph_census(digraph, digraph.index(inst), config.emax)
                for inst in mag_world.institutions
            ]

        def evaluate(censuses_by_year):
            space = FeatureSpace()
            for year in config.train_years:
                space.fit(censuses_by_year[year])
            X_train = np.vstack(
                [space.to_matrix(censuses_by_year[y]) for y in config.train_years]
            )
            y_train = np.concatenate(
                [
                    [mag_world.relevance(conference, y)[i] for i in mag_world.institutions]
                    for y in config.train_years
                ]
            )
            X_test = space.to_matrix(censuses_by_year[config.test_year])
            y_test = np.array(
                [
                    mag_world.relevance(conference, config.test_year)[i]
                    for i in mag_world.institutions
                ]
            )
            model = RandomForestRegressor(
                n_estimators=config.forest_trees,
                max_features=config.forest_max_features,
                random_state=config.seed,
            )
            model.fit(X_train, y_train)
            return ndcg_at(y_test, model.predict(X_test), n=config.ndcg_n), len(space)

        undirected_score, undirected_vocab = evaluate(undirected_censuses)
        directed_score, directed_vocab = evaluate(directed_censuses)
        return undirected_score, undirected_vocab, directed_score, directed_vocab

    undirected_score, undirected_vocab, directed_score, directed_vocab = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    print()
    print(f"Ablation -- directed vs undirected on MAG ({conference})")
    print(f"  undirected: NDCG {undirected_score:.3f} ({undirected_vocab} features)")
    print(f"  directed:   NDCG {directed_score:.3f} ({directed_vocab} features)")

    # Direction refines the vocabulary...
    assert directed_vocab >= undirected_vocab
    # ...but, as the paper reports, does not change the outcome materially.
    assert abs(directed_score - undirected_score) < 0.15
