"""Ablation: vocabulary pruning of rare subgraph codes.

The census vocabulary is heavy-tailed: most codes occur around a single
root.  ``FeatureSpace.prune`` drops codes below a support threshold; this
bench measures how much of the matrix width disappears at what cost in
downstream macro-F1 on the LOAD network — the practical trade-off a user
of the library faces before fitting linear models on census counts.
"""

import numpy as np

from repro.core.census import CensusConfig
from repro.core.features import FeatureSpace, SubgraphFeatureExtractor
from repro.experiments.label_prediction import LabelPredictionExperiment
from repro.ml import StandardScaler, macro_f1, train_test_split, tune_regularization
from repro.ml.preprocessing import log1p_counts
from benchmarks.conftest import label_task_config

SUPPORT_LEVELS = (1, 2, 4, 8)


def test_ablation_vocabulary_pruning(benchmark, load_dataset):
    graph = load_dataset.graph
    # e_max = 4: the heavy-tailed regime where pruning has bite (at the
    # default e_max = 3 the LOAD vocabulary is barely tail-heavy).
    config = label_task_config(per_label=30, emax=4)
    experiment = LabelPredictionExperiment(graph, config)
    dmax = int(np.percentile(graph.degrees(), 90))

    def run():
        census_config = CensusConfig(
            max_edges=config.emax, max_degree=dmax, mask_start_label=True
        )
        extractor = SubgraphFeatureExtractor(census_config)
        censuses = extractor.census_many(graph, experiment.nodes)
        full = FeatureSpace().fit(censuses)
        rows = []
        for support in SUPPORT_LEVELS:
            space = full.prune(censuses, min_nodes=support)
            X = log1p_counts(space.to_matrix(censuses))
            X_train, X_test, y_train, y_test = train_test_split(
                X, experiment.targets, test_size=0.3, rng=0,
                stratify=experiment.targets,
            )
            scaler = StandardScaler().fit(X_train)
            model = tune_regularization(
                scaler.transform(X_train), y_train, grid=(0.1, 1.0), rng=0
            )
            f1 = macro_f1(y_test, model.predict(scaler.transform(X_test)))
            rows.append({"support": support, "columns": len(space), "macro_f1": f1})
        return len(full), rows

    full_width, rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(f"Ablation -- vocabulary pruning (LOAD, full width {full_width})")
    print(f"{'min support':>11} {'columns':>8} {'macroF1':>8}")
    for row in rows:
        print(f"{row['support']:>11} {row['columns']:>8} {row['macro_f1']:>8.3f}")

    # Width shrinks monotonically with the support threshold.
    widths = [row["columns"] for row in rows]
    assert widths == sorted(widths, reverse=True)
    assert widths[0] == full_width  # support 1 keeps every observed code
    # Moderate pruning does not destroy the features.
    best = max(row["macro_f1"] for row in rows)
    assert rows[1]["macro_f1"] >= best - 0.15
