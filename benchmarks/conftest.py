"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures, prints it in
paper-like text form, and asserts the qualitative *shape* the paper reports
(who wins, where it degrades).  Heavy artefacts — the synthetic worlds, the
full rank-prediction grid — are session-scoped so the cost is paid once.

Sizing: the worlds are laptop-scale versions of the paper's networks and
the census runs at ``e_max = 3`` (the paper uses 5–6 on a C++ engine); the
deviations and their rationale are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.datasets import (
    ImdbConfig,
    LoadConfig,
    MagConfig,
    SyntheticIMDB,
    SyntheticLOAD,
    SyntheticMAG,
)
from repro.experiments import (
    EmbeddingParams,
    LabelTaskConfig,
    RankPredictionExperiment,
    RankTaskConfig,
)

#: Embedding preset for all benches (see EmbeddingParams.fast docs).
BENCH_EMBEDDING = EmbeddingParams.fast()


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run perf benches on a tiny workload: no gate, no JSON artefact",
    )


@pytest.fixture(scope="session")
def smoke(request) -> bool:
    """True when ``--smoke`` was passed: benches shrink their workload and
    skip the speedup gate so the harness itself can be exercised quickly."""
    return request.config.getoption("--smoke")


@pytest.fixture(scope="session")
def mag_world() -> SyntheticMAG:
    """The rank-prediction world: 5 conferences, 2007-2015, 60 institutions."""
    return SyntheticMAG(MagConfig())


@pytest.fixture(scope="session")
def rank_config() -> RankTaskConfig:
    return RankTaskConfig(
        train_years=tuple(range(2011, 2015)),
        test_year=2015,
        emax=3,
        forest_trees=150,
        embedding_params=BENCH_EMBEDDING,
        seed=0,
    )


@pytest.fixture(scope="session")
def rank_experiment(mag_world, rank_config) -> RankPredictionExperiment:
    return RankPredictionExperiment(mag_world, rank_config)


@pytest.fixture(scope="session")
def rank_result(rank_experiment):
    """The full Figure 3 grid, computed once for fig3/table1 benches."""
    return rank_experiment.run()


@pytest.fixture(scope="session")
def load_dataset() -> SyntheticLOAD:
    return SyntheticLOAD(LoadConfig())


@pytest.fixture(scope="session")
def imdb_dataset() -> SyntheticIMDB:
    return SyntheticIMDB(ImdbConfig())


@pytest.fixture(scope="session")
def mag_label_graph(mag_world):
    """The six-label MAG view for label prediction (Figure 2 right).

    Three years keep venue/field node degrees moderate so the per-root
    census stays bench-sized (the paper's full MAG run took hours on C++).
    """
    return mag_world.build_label_graph(years=mag_world.config.years[-3:])


@pytest.fixture(scope="session")
def label_graphs(load_dataset, imdb_dataset, mag_label_graph):
    """The three evaluation networks keyed by paper name."""
    return {
        "LOAD": load_dataset.graph,
        "IMDB": imdb_dataset.graph,
        "MAG": mag_label_graph,
    }


def label_task_config(**overrides) -> LabelTaskConfig:
    """Bench-sized label-prediction config shared across Figure 5 benches."""
    defaults = dict(
        per_label=32,
        emax=3,
        dmax_percentile=90.0,
        n_repeats=4,
        embedding_params=BENCH_EMBEDDING,
        logreg_grid=(0.1, 1.0, 10.0),
        seed=0,
    )
    defaults.update(overrides)
    return LabelTaskConfig(**defaults)
