"""Shared writer for the ``BENCH_*.json`` perf artefacts.

Every ``test_perf_*`` bench records its workload, timings, and gate
verdict through :func:`write_bench` so the artefacts stay structurally
comparable across PRs: one schema version, one ``workload`` block
describing what was measured, and one ``gate`` block recording whether
the speedup gate was enforced — and, when it was waived (e.g. too few
cores for a parallelism gate), the reason, so a green CI run never
silently means "gate not checked".
"""

from __future__ import annotations

import json
from pathlib import Path

#: Bump when the shared artefact layout changes shape (individual benches
#: may add fields freely; removing or renaming shared ones bumps this).
BENCH_SCHEMA_VERSION = 1

REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_path(name: str) -> Path:
    """Where ``BENCH_{name}.json`` lives: next to the repo root."""
    return REPO_ROOT / f"BENCH_{name}.json"


def gate_block(
    min_speedup: float, *, applied: bool = True, waiver: str | None = None
) -> dict:
    """The gate record: threshold, whether it was enforced, and why not.

    A waived gate MUST record its reason and an applied gate must not
    carry one — the artefact is the audit trail for "did this PR's perf
    claim actually get checked on this box".
    """
    if applied and waiver is not None:
        raise ValueError("an applied gate cannot carry a waiver")
    if not applied and waiver is None:
        raise ValueError("a waived gate must record its reason")
    return {
        "min_speedup": float(min_speedup),
        "applied": bool(applied),
        "waiver": waiver,
    }


def write_bench(
    name: str, *, workload: dict, results: dict, gate: dict | None = None
) -> Path:
    """Write ``BENCH_{name}.json`` and return the path.

    ``results`` keys land at the top level of the payload (next to
    ``workload``), preserving each bench's historical field names.
    """
    payload: dict = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": workload,
    }
    payload.update(results)
    if gate is not None:
        payload["gate"] = gate
    path = bench_path(name)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
