"""Shared writer for the ``BENCH_*.json`` perf artefacts.

Every ``test_perf_*`` bench records its workload, timings, and gate
verdict through :func:`write_bench` so the artefacts stay structurally
comparable across PRs: one schema version, one ``workload`` block
describing what was measured, and one ``gate`` block recording whether
the speedup gate was enforced — and, when it was waived (e.g. too few
cores for a parallelism gate), the reason, so a green CI run never
silently means "gate not checked".

``python -m benchmarks._bench summary`` renders the whole family as one
trajectory table — every ``BENCH_*.json`` at the repo root, its
headline metric, and its gate verdict — so a PR's perf story is one
glance instead of seven files.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Bump when the shared artefact layout changes shape (individual benches
#: may add fields freely; removing or renaming shared ones bumps this).
BENCH_SCHEMA_VERSION = 1

REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_path(name: str) -> Path:
    """Where ``BENCH_{name}.json`` lives: next to the repo root."""
    return REPO_ROOT / f"BENCH_{name}.json"


def gate_block(
    min_speedup: float, *, applied: bool = True, waiver: str | None = None
) -> dict:
    """The gate record: threshold, whether it was enforced, and why not.

    A waived gate MUST record its reason and an applied gate must not
    carry one — the artefact is the audit trail for "did this PR's perf
    claim actually get checked on this box".
    """
    if applied and waiver is not None:
        raise ValueError("an applied gate cannot carry a waiver")
    if not applied and waiver is None:
        raise ValueError("a waived gate must record its reason")
    return {
        "min_speedup": float(min_speedup),
        "applied": bool(applied),
        "waiver": waiver,
    }


def write_bench(
    name: str, *, workload: dict, results: dict, gate: dict | None = None
) -> Path:
    """Write ``BENCH_{name}.json`` and return the path.

    ``results`` keys land at the top level of the payload (next to
    ``workload``), preserving each bench's historical field names.
    """
    payload: dict = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": workload,
    }
    payload.update(results)
    if gate is not None:
        payload["gate"] = gate
    path = bench_path(name)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


#: Headline metric per artefact, preference-ordered: the first key
#: present at an artefact's top level names its trajectory column.
HEADLINE_METRICS = (
    ("speedup", "{:.2f}x"),
    ("throughput_rps", "{:.0f} req/s"),
    ("tcp_throughput_rps", "{:.0f} req/s"),
    ("roots_per_s", "{:.0f} roots/s"),
    ("remote_roots_per_s", "{:.0f} roots/s"),
    ("total_s", "{:.2f} s"),
    ("elapsed_s", "{:.2f} s"),
)


def _headline(payload: dict) -> str:
    for key, fmt in HEADLINE_METRICS:
        value = payload.get(key)
        if isinstance(value, (int, float)):
            return f"{key}={fmt.format(value)}"
    for key, value in payload.items():
        if key in ("schema_version", "cpu_cores") or isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            return f"{key}={value:.3g}"
    return "-"


def _gate_cell(payload: dict) -> str:
    gate = payload.get("gate")
    if not isinstance(gate, dict):
        return "none"
    if gate.get("applied"):
        return "enforced"
    return f"waived: {gate.get('waiver', '?')}"


def summarize(root: Path = REPO_ROOT) -> list[tuple[str, str, str]]:
    """One (bench, headline, gate) row per ``BENCH_*.json`` under ``root``."""
    rows = []
    for path in sorted(root.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            rows.append((name, f"unreadable: {exc}", "-"))
            continue
        rows.append((name, _headline(payload), _gate_cell(payload)))
    return rows


def print_summary(root: Path = REPO_ROOT) -> None:
    rows = summarize(root)
    if not rows:
        print(f"no BENCH_*.json artefacts under {root}")
        return
    header = ("bench", "headline", "gate")
    widths = [
        max(len(header[col]), max(len(row[col]) for row in rows))
        for col in range(3)
    ]
    line = "  ".join(header[col].ljust(widths[col]) for col in range(3))
    print(line)
    print("  ".join("-" * width for width in widths))
    for row in rows:
        print("  ".join(row[col].ljust(widths[col]) for col in range(3)))


if __name__ == "__main__":
    if sys.argv[1:] != ["summary"]:
        print("usage: python -m benchmarks._bench summary", file=sys.stderr)
        raise SystemExit(2)
    print_summary()
