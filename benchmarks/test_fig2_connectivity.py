"""Figure 2: label connectivity graphs of the three evaluation networks.

Paper claim: MAG's rank view links I-A-P with paper-paper citations; the
six-label MAG view is a tree of labels around P (plus the P loop); LOAD is
fully connected including all four self loops; IMDB is a star through M
with no loops.
"""

from repro.core import label_connectivity
from repro.datasets import IMDB_SCHEMA, LOAD_SCHEMA, MAG_LABEL_SCHEMA


def test_fig2_label_connectivity(benchmark, label_graphs, mag_world):
    def run():
        return {
            name: label_connectivity(graph) for name, graph in label_graphs.items()
        } | {"MAG-rank": label_connectivity(mag_world.build_rank_graph("KDD", 2014))}

    connectivity = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Figure 2 -- label connectivity graphs")
    for name, lc in connectivity.items():
        print(f"[{name}]")
        print(lc.render())

    # LOAD: complete over 4 labels with all self loops -> 10 pairs.
    load = connectivity["LOAD"]
    assert load.has_loops
    assert len(load.label_pairs()) == 10
    assert LOAD_SCHEMA.validate(load) == []

    # IMDB: star through M, no loops, exactly 5 pairs.
    imdb = connectivity["IMDB"]
    assert not imdb.has_loops
    assert len(imdb.label_pairs()) == 5
    assert IMDB_SCHEMA.validate(imdb) == []

    # MAG label view: P is the hub label, P-P citations give the only loop.
    mag = connectivity["MAG"]
    assert mag.has_loops
    assert MAG_LABEL_SCHEMA.validate(mag) == []

    # The e_max bound differs accordingly (Section 3.1).
    assert imdb.collision_free_emax() == 5
    assert load.collision_free_emax() == 4
