"""Subprocess workers for the out-of-core census benchmark.

``test_perf_census_mmap.py`` measures peak RSS, and ``ru_maxrss`` is a
per-process high-water mark — measuring inside the pytest process would
report the harness's own footprint, not the pipeline's.  Each mode below
therefore runs in a fresh interpreter and prints a single JSON line:

* ``baseline``  — import the pipeline modules and report the interpreter's
  resting footprint (the floor every cap calculation starts from).
* ``generate``  — stream a synthetic circulant edge list to disk: ``v``
  lines for ``nodes`` round-robin-labelled nodes, then one ``e`` line per
  (node, stride) pair.  Distinct strides below ``nodes / 2`` give a
  duplicate-free, self-loop-free graph of exactly ``nodes * strides``
  edges without the generator ever holding an edge set in memory.
* ``ingest``    — run :func:`repro.io.stream.build_mmap_graph` over such a
  file and report its wall-clock and peak RSS.
* ``dict_rss``  — load the same format with ``read_edgelist`` into a
  dict-backed graph (plus its census adjacency snapshot) and report peak
  RSS; the bench extrapolates this per-edge footprint to full scale.
* ``pipeline``  — the rank-prediction-style run under test: open the
  ``.hmg`` with :class:`~repro.core.mmap_graph.MmapGraph`, stream a root
  census through :func:`~repro.io.stream.census_stream` into a bounded
  :class:`~repro.runtime.store.ArtifactStore`, build a log1p feature
  matrix, train a random-forest regressor, and score NDCG on the held-out
  half — reporting peak RSS and timings.

Usage: ``python _census_mmap_child.py <mode> '<json-params>'``.
"""

from __future__ import annotations

import json
import sys
import time


def emit(payload: dict) -> None:
    # The JSON line is this child's protocol output, not a diagnostic;
    # sys.stdout.write keeps the no-bare-print guard meaningful.
    sys.stdout.write(json.dumps(payload) + "\n")
    sys.stdout.flush()


def peak_rss_kb() -> float:
    from repro.obs.manifest import peak_rss_kb as _peak

    return _peak() or 0.0


def mode_baseline(params: dict) -> None:
    # The import surface of the pipeline child, nothing else.
    import numpy  # noqa: F401

    from repro.core.mmap_graph import MmapGraph  # noqa: F401
    from repro.io.stream import census_stream  # noqa: F401
    from repro.ml import RandomForestRegressor  # noqa: F401

    emit({"peak_rss_kb": peak_rss_kb()})


def mode_generate(params: dict) -> None:
    nodes, strides = params["nodes"], params["strides"]
    labels = "ABC"
    with open(params["out"], "w", encoding="utf-8") as handle:
        for i in range(nodes):
            handle.write(f"v {i} {labels[i % len(labels)]}\n")
        for stride in range(1, strides + 1):
            for i in range(nodes):
                handle.write(f"e {i} {(i + stride) % nodes}\n")
    emit({"nodes": nodes, "edges": nodes * strides})


def mode_ingest(params: dict) -> None:
    import os

    from repro.io.stream import build_mmap_graph

    started = time.perf_counter()
    path = build_mmap_graph(
        params["edgelist"],
        params["out"],
        store_ids=False,  # roots are addressed by index out-of-core
        chunk_edges=params["chunk_edges"],
    )
    emit(
        {
            "seconds": time.perf_counter() - started,
            "peak_rss_kb": peak_rss_kb(),
            "file_bytes": os.path.getsize(path),
        }
    )


def mode_dict_rss(params: dict) -> None:
    from repro.io.edgelist import read_edgelist

    graph = read_edgelist(params["edgelist"])
    graph.flat()  # the snapshot every census over a dict graph builds
    emit({"peak_rss_kb": peak_rss_kb(), "num_edges": graph.num_edges})


def mode_pipeline(params: dict) -> None:
    import numpy as np

    from repro.core.census import CensusConfig
    from repro.core.features import FeatureSpace
    from repro.core.mmap_graph import MmapGraph
    from repro.io.stream import census_stream
    from repro.ml import RandomForestRegressor, log1p_counts, ndcg_at
    from repro.runtime.context import RunContext
    from repro.runtime.store import ArtifactStore

    started = time.perf_counter()
    graph = MmapGraph(params["graph"])
    num_roots = params["num_roots"]
    step = max(1, graph.num_nodes // num_roots)
    roots = list(range(0, graph.num_nodes, step))[:num_roots]
    config = CensusConfig(max_edges=params["emax"], mask_start_label=True)
    store = ArtifactStore(max_entries=max(64, 2 * params["batch_size"]))
    census_started = time.perf_counter()
    censuses = [
        census
        for _, census in census_stream(
            graph,
            roots,
            config,
            batch_size=params["batch_size"],
            ctx=RunContext(store=store),
        )
    ]
    census_seconds = time.perf_counter() - census_started
    space = FeatureSpace().fit(censuses)
    matrix = np.zeros((len(roots), len(space)), dtype=np.float64)
    for row, census in enumerate(censuses):
        for key, count in census.items():
            matrix[row, space.index(key)] = count
    matrix = log1p_counts(matrix)
    target = np.log1p([sum(census.values()) for census in censuses])
    half = len(roots) // 2
    model = RandomForestRegressor(
        n_estimators=params["trees"], random_state=0
    ).fit(matrix[:half], target[:half])
    score = ndcg_at(target[half:], model.predict(matrix[half:]), n=10)
    emit(
        {
            "peak_rss_kb": peak_rss_kb(),
            "mmap_backed": graph.mmap_backed,
            "census_seconds": census_seconds,
            "total_seconds": time.perf_counter() - started,
            "ndcg": float(score),
            "num_features": len(space),
            "num_roots": len(roots),
        }
    )


MODES = {
    "baseline": mode_baseline,
    "generate": mode_generate,
    "ingest": mode_ingest,
    "dict_rss": mode_dict_rss,
    "pipeline": mode_pipeline,
}


if __name__ == "__main__":
    MODES[sys.argv[1]](json.loads(sys.argv[2]))
