"""Figure 1C / Section 3.1: encoding-collision bounds by enumeration.

Paper claim: characteristic-sequence encodings are unique up to
``e_max = 5`` edges when the label connectivity graph has no self loops and
up to ``e_max = 4`` with loops; the first collisions appear one edge later.
"""

from repro.core import find_collisions


def test_fig1c_collision_bounds(benchmark):
    def run():
        with_loops = find_collisions(
            2, 5, allow_same_label_edges=True, stop_at_first=True
        )
        without_loops_clean = find_collisions(2, 5, allow_same_label_edges=False)
        without_loops_hit = find_collisions(
            3, 6, allow_same_label_edges=False, stop_at_first=True
        )
        return with_loops, without_loops_clean, without_loops_hit

    with_loops, without_loops_clean, without_loops_hit = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    print()
    print("Figure 1C / Section 3.1 -- encoding collision bounds")
    print(with_loops.summary())
    print(without_loops_clean.summary())
    print(without_loops_hit.summary())

    # Paper shape: e_max = 4 with label loops, e_max = 5 without.
    assert with_loops.first_collision_edges == 5
    assert with_loops.collision_free_emax == 4
    assert without_loops_clean.collisions == []
    assert without_loops_clean.collision_free_emax == 5
    assert without_loops_hit.first_collision_edges == 6


def test_fig1c_collision_example_renders(benchmark):
    """The colliding pair decodes into two readable non-isomorphic graphs
    (the right panel of Figure 1C)."""
    from repro.core import are_isomorphic

    report = benchmark.pedantic(
        lambda: find_collisions(2, 5, allow_same_label_edges=True, stop_at_first=True),
        rounds=1,
        iterations=1,
    )
    collision = report.collisions[0]
    print()
    print("colliding pair (same encoding, non-isomorphic):")
    print(" ", collision.first)
    print(" ", collision.second)
    assert not are_isomorphic(collision.first, collision.second)
    assert collision.first.encode(2) == collision.second.encode(2)
