"""Ablation: start-label masking for label prediction (Section 4.3.2).

The paper masks the start node's label during extraction to avoid leaking
the prediction target into the feature.  This bench quantifies the leak:
without masking, macro-F1 should be (near-)perfect because the root's own
label saturates every rooted count; with masking the task is real.
"""

import numpy as np

from repro.core.census import CensusConfig
from repro.core.features import FeatureSpace, SubgraphFeatureExtractor
from repro.experiments.label_prediction import LabelPredictionExperiment
from repro.ml import StandardScaler, macro_f1, train_test_split, tune_regularization
from repro.ml.preprocessing import log1p_counts
from benchmarks.conftest import label_task_config


def _score(X, y, seed=0):
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_size=0.3, rng=seed, stratify=y
    )
    scaler = StandardScaler().fit(X_train)
    model = tune_regularization(
        scaler.transform(X_train), y_train, grid=(0.1, 1.0), rng=seed
    )
    return macro_f1(y_test, model.predict(scaler.transform(X_test)))


def test_ablation_start_label_masking(benchmark, load_dataset):
    graph = load_dataset.graph
    config = label_task_config(per_label=30)
    experiment = LabelPredictionExperiment(graph, config)
    dmax = int(np.percentile(graph.degrees(), 90))

    def run():
        scores = {}
        for masked in (True, False):
            census = CensusConfig(
                max_edges=config.emax, max_degree=dmax, mask_start_label=masked
            )
            extractor = SubgraphFeatureExtractor(census)
            censuses = extractor.census_many(graph, experiment.nodes)
            space = FeatureSpace().fit(censuses)
            X = log1p_counts(space.to_matrix(censuses))
            scores[masked] = _score(X, experiment.targets)
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Ablation -- start-label masking (LOAD)")
    print(f"  masked:   macro-F1 {scores[True]:.3f}")
    print(f"  unmasked: macro-F1 {scores[False]:.3f} (label leak)")

    # Unmasked features leak the target and score very high.
    assert scores[False] > 0.8
    # Masked features still work but do not enjoy the leak.
    assert 0.0 < scores[True] <= scores[False] + 0.02
