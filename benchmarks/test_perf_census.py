"""Perf gate: the fast census engine vs. the reference implementation.

Times both engines over the same roots on the MAG label graph — the
Table-3-style workload (``e_max = 3``, ``d_max`` at the 90th degree
percentile, masked root) — and writes ``BENCH_census.json`` next to the
repo root so future PRs have a perf trajectory to compare against.

The gate asserts the fast engine is at least 3x faster in aggregate; the
engines' exact-equality parity is covered by tier-1 tests, but we
re-assert it here on the bench workload because a perf number for a
wrong answer is worthless.
"""

from __future__ import annotations

import time

import numpy as np

from _bench import bench_path, gate_block, write_bench
from repro.core.census import CensusConfig, subgraph_census
from repro.datasets import sample_nodes_per_label
from repro.experiments.common import percentile_degree

RESULT_PATH = bench_path("census")

#: The acceptance gate: aggregate fast-engine speedup on this workload.
MIN_SPEEDUP = 3.0


def _time_roots(graph, nodes, config, engine) -> np.ndarray:
    times = np.empty(len(nodes))
    for i, node in enumerate(nodes):
        started = time.perf_counter()
        subgraph_census(graph, node, config, engine=engine)
        times[i] = time.perf_counter() - started
    return times


def _summary(times: np.ndarray) -> dict:
    return {
        "mean_s": float(times.mean()),
        "p95_s": float(np.percentile(times, 95)),
        "max_s": float(times.max()),
        "total_s": float(times.sum()),
    }


def test_fast_engine_speedup(benchmark, mag_label_graph):
    graph = mag_label_graph
    dmax = percentile_degree(graph, 90.0)
    config = CensusConfig(max_edges=3, max_degree=dmax, mask_start_label=True)
    nodes, _ = sample_nodes_per_label(graph, 10, rng=0)
    nodes = [int(n) for n in nodes]
    graph.flat()  # build the adjacency snapshot outside the timed region

    fast = benchmark.pedantic(
        lambda: _time_roots(graph, nodes, config, "fast"), rounds=1, iterations=1
    )
    reference = _time_roots(graph, nodes, config, "reference")
    speedup = float(reference.sum() / fast.sum())

    # Parity on the bench workload itself.
    for node in nodes[:5]:
        assert subgraph_census(graph, node, config, engine="fast") == (
            subgraph_census(graph, node, config, engine="reference")
        )

    write_bench(
        "census",
        workload={
            "graph": "MAG label graph (3 years)",
            "num_nodes": graph.num_nodes,
            "num_roots": len(nodes),
            "e_max": config.max_edges,
            "d_max": dmax,
            "mask_start_label": True,
            "key": config.key,
        },
        results={
            "fast": _summary(fast),
            "reference": _summary(reference),
            "speedup": speedup,
        },
        gate=gate_block(MIN_SPEEDUP),
    )

    print()
    print(
        f"census perf: fast {fast.sum():.3f}s vs reference "
        f"{reference.sum():.3f}s over {len(nodes)} roots "
        f"-> {speedup:.2f}x (gate {MIN_SPEEDUP}x) -> {RESULT_PATH.name}"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"fast engine speedup {speedup:.2f}x below the {MIN_SPEEDUP}x gate"
    )
