"""Perf gate: the sampled census engine at the paper's ``e_max = 6``.

The paper runs its census at ``e_max = 5``–``6`` on a C++ engine; the
pure-Python exact engines only reach ``e_max = 3``–``4`` in reasonable
time, which is why every experiment in this repo deviates downward.  The
sampled engine closes that gap: budgeted probe draws with
Horvitz–Thompson weighting estimate the same per-root pattern counts at
a cost governed by the budget, not the (exponential) subgraph
population.

This bench charts the accuracy-vs-speed frontier on the Table-1
workload — the synthetic-MAG rank graphs the subgraph feature family is
built from — and gates the engine's two promises:

* **speed** — the sampled census is at least 10x faster than the exact
  fast engine at the gate budget on the ``e_max = 6`` workload;
* **accuracy** — feeding the estimates through the full Table-1
  subgraph-family pipeline (feature space, regressors, NDCG\\@20) loses
  at most one NDCG point against the exact pipeline;

plus the statistical contract: across randomized estimator seeds, the
per-root ``estimate ± half_width`` interval covers the exact total at
least as often as the configured confidence promises (minus three
binomial standard errors for the finite seed sample).

Writes ``BENCH_census_sampled.json`` next to the repo root so future
PRs have the frontier to compare against.  ``--smoke`` shrinks the
workload to seconds (``e_max = 3``, tiny world), skips the gates, and
does not write the JSON artefact.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from _bench import bench_path, gate_block, write_bench
from repro.core.census import CensusConfig, census_total, subgraph_census
from repro.core.sampled import SampledCensusConfig
from repro.datasets.mag import MagConfig, SyntheticMAG
from repro.experiments.rank_prediction import (
    RankPredictionExperiment,
    RankTaskConfig,
)

RESULT_PATH = bench_path("census_sampled")

#: The acceptance gates: census speedup at the gate budget, and the
#: Table-1 NDCG the estimates may cost against the exact pipeline.
MIN_SPEEDUP = 10.0
MAX_NDCG_LOSS = 0.01  # one NDCG point

#: Budget the gates are evaluated at (the frontier records more).
GATE_BUDGET = 500
FRONTIER_BUDGETS = (100, 200, 500, 1000)

#: Randomized seeds for the empirical CI-coverage check.
COVERAGE_SEEDS = 60

FAMILIES = ("subgraph",)
REGRESSORS = ("LinRegr", "RanForest")


def _world(smoke: bool) -> SyntheticMAG:
    if smoke:
        config = MagConfig(
            num_institutions=14,
            authors_per_institution=4,
            papers_per_conference_year=16,
            seed=7,
        )
    else:
        config = MagConfig(
            num_institutions=30,
            authors_per_institution=6,
            papers_per_conference_year=40,
            seed=7,
        )
    return SyntheticMAG(config)


def _task(mag: SyntheticMAG, smoke: bool, **overrides) -> RankTaskConfig:
    base = RankTaskConfig(
        train_years=(2014,) if smoke else (2013, 2014),
        test_year=2015,
        conferences=tuple(mag.config.conferences[:2]),
        emax=3 if smoke else 6,
        forest_trees=30 if smoke else 100,
        seed=0,
    )
    return replace(base, **overrides)


def _run_arm(mag: SyntheticMAG, config: RankTaskConfig):
    experiment = RankPredictionExperiment(mag, config)
    started = time.perf_counter()
    result = experiment.run(families=FAMILIES, regressors=REGRESSORS)
    return time.perf_counter() - started, result


def _mean_ndcg(result) -> float:
    return float(np.mean(list(result.ndcg.values())))


def test_sampled_census_frontier(benchmark, smoke):
    mag = _world(smoke)
    base = _task(mag, smoke)
    census_config = CensusConfig(max_edges=base.emax)
    budgets = (50, 100) if smoke else FRONTIER_BUDGETS
    gate_budget = budgets[-1] if smoke else GATE_BUDGET

    # --- census-only frontier on the test-year rank graph --------------
    graph = mag.build_rank_graph(
        base.conferences[0],
        base.test_year - 1,
        reference_depth=base.reference_depth,
    )
    graph.flat()  # adjacency snapshot shared by all arms, built once
    roots = [graph.index(inst) for inst in mag.institutions]
    roots = roots[: 4 if smoke else 10]

    started = time.perf_counter()
    exact = [
        subgraph_census(graph, root, census_config, engine="fast")
        for root in roots
    ]
    exact_census_s = time.perf_counter() - started
    exact_totals = np.array([census_total(c) for c in exact], dtype=float)

    frontier = []
    for budget in budgets:
        sampled_cfg = SampledCensusConfig(budget=budget, seed=0)
        started = time.perf_counter()
        estimates = [
            subgraph_census(
                graph, root, census_config, engine="sampled", sampled=sampled_cfg
            )
            for root in roots
        ]
        sampled_s = time.perf_counter() - started
        totals = np.array([census_total(c) for c in estimates], dtype=float)
        half_widths = np.array([c.report.half_width for c in estimates])
        rel_err = np.abs(totals - exact_totals) / exact_totals
        frontier.append(
            {
                "budget": budget,
                "sampled_s": float(sampled_s),
                "speedup": float(exact_census_s / sampled_s),
                "mean_rel_err": float(rel_err.mean()),
                "max_rel_err": float(rel_err.max()),
                "mean_half_width": float(half_widths.mean()),
            }
        )
    census_speedup = next(
        f["speedup"] for f in frontier if f["budget"] == gate_budget
    )

    # --- end-to-end Table-1 arms: exact vs sampled subgraph family -----
    sampled_task = _task(
        mag,
        smoke,
        engine="sampled",
        sampled=SampledCensusConfig(budget=gate_budget, seed=0),
    )
    sampled_s, sampled_result = benchmark.pedantic(
        lambda: _run_arm(mag, sampled_task), rounds=1, iterations=1
    )
    exact_s, exact_result = _run_arm(mag, base)
    exact_ndcg = _mean_ndcg(exact_result)
    sampled_ndcg = _mean_ndcg(sampled_result)
    ndcg_loss = exact_ndcg - sampled_ndcg
    pipeline_speedup = exact_s / sampled_s

    # --- CI coverage across randomized estimator seeds -----------------
    # One probe of the statistical contract per seed: does the reported
    # total ± half_width interval cover the exact total?
    truth = exact_totals[0]
    confidence = SampledCensusConfig().confidence
    hits = 0
    for seed in range(COVERAGE_SEEDS):
        est = subgraph_census(
            graph,
            roots[0],
            census_config,
            engine="sampled",
            sampled=SampledCensusConfig(budget=gate_budget, seed=seed),
        )
        if abs(census_total(est) - truth) <= est.report.half_width:
            hits += 1
    coverage = hits / COVERAGE_SEEDS
    # Three binomial standard errors of slack for the finite seed sample.
    coverage_floor = confidence - 3 * float(
        np.sqrt(confidence * (1 - confidence) / COVERAGE_SEEDS)
    )

    print()
    for point in frontier:
        print(
            f"  budget {point['budget']:>5}: {point['sampled_s']:.3f}s "
            f"({point['speedup']:6.1f}x), mean rel err "
            f"{point['mean_rel_err']:.3f}"
        )
    print(
        f"sampled census perf: e_max={base.emax}, exact census "
        f"{exact_census_s:.2f}s, gate budget {gate_budget} -> "
        f"{census_speedup:.1f}x (gate {MIN_SPEEDUP}x); Table-1 NDCG exact "
        f"{exact_ndcg:.4f} vs sampled {sampled_ndcg:.4f} (loss "
        f"{ndcg_loss:+.4f}, gate {MAX_NDCG_LOSS}); coverage {coverage:.2f} "
        f"(floor {coverage_floor:.2f})"
        + (" [smoke: gates skipped]" if smoke else f" -> {RESULT_PATH.name}")
    )

    if smoke:
        return

    write_bench(
        "census_sampled",
        workload={
            "world": "synthetic MAG, 30 institutions",
            "conferences": list(base.conferences),
            "families": list(FAMILIES),
            "regressors": list(REGRESSORS),
            "train_years": list(base.train_years),
            "forest_trees": base.forest_trees,
            "emax": base.emax,
            "num_census_roots": len(roots),
            "gate_budget": gate_budget,
            "coverage_seeds": COVERAGE_SEEDS,
        },
        results={
            "exact_census_s": float(exact_census_s),
            "frontier": frontier,
            "census_speedup": float(census_speedup),
            "pipeline_exact_s": float(exact_s),
            "pipeline_sampled_s": float(sampled_s),
            "pipeline_speedup": float(pipeline_speedup),
            "exact_ndcg": exact_ndcg,
            "sampled_ndcg": sampled_ndcg,
            "ndcg_loss": float(ndcg_loss),
            "max_ndcg_loss": MAX_NDCG_LOSS,
            "ci_confidence": confidence,
            "ci_coverage": coverage,
            "ci_coverage_floor": coverage_floor,
        },
        gate=gate_block(MIN_SPEEDUP),
    )

    assert census_speedup >= MIN_SPEEDUP, (
        f"sampled census speedup {census_speedup:.1f}x below the "
        f"{MIN_SPEEDUP}x gate at budget {gate_budget}"
    )
    assert ndcg_loss <= MAX_NDCG_LOSS, (
        f"sampled pipeline lost {ndcg_loss:.4f} NDCG, above the "
        f"{MAX_NDCG_LOSS} gate"
    )
    assert coverage >= coverage_floor, (
        f"empirical CI coverage {coverage:.2f} below the statistical "
        f"floor {coverage_floor:.2f} for {confidence:.2f} confidence"
    )
