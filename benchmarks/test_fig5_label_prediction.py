"""Figure 5A-C: label prediction macro-F1 vs training-set size.

Paper claims (shape): heterogeneous subgraph features outperform all three
embeddings by a large margin on every dataset; among the embeddings LINE is
the strongest; all methods benefit from more training data on the hardest
dataset (IMDB).
"""

import numpy as np

from repro.experiments import render_sweep
from repro.experiments.label_prediction import LabelPredictionExperiment
from benchmarks.conftest import label_task_config

FRACTIONS = (0.1, 0.3, 0.5, 0.7, 0.9)


def _run_dataset(graph):
    config = label_task_config(train_fractions=FRACTIONS)
    experiment = LabelPredictionExperiment(graph, config)
    return experiment.run_training_sweep()


def test_fig5abc_label_prediction(benchmark, label_graphs):
    sweeps = benchmark.pedantic(
        lambda: {name: _run_dataset(graph) for name, graph in label_graphs.items()},
        rounds=1,
        iterations=1,
    )

    print()
    for name, sweep in sweeps.items():
        print(render_sweep(f"Figure 5 ({name}) -- macro-F1 vs training size", sweep))
        print()

    for name, sweep in sweeps.items():
        # Subgraph features beat every embedding on the averaged curve.
        subgraph_curve = np.mean([sweep.mean("subgraph", x) for x in FRACTIONS])
        for method in ("node2vec", "deepwalk", "line"):
            method_curve = np.mean([sweep.mean(method, x) for x in FRACTIONS])
            assert subgraph_curve > method_curve, (
                f"{name}: subgraph {subgraph_curve:.3f} vs {method} {method_curve:.3f}"
            )
        # Subgraph features are well above label-count chance at 90% train.
        chance = 1.0 / len(label_graphs[name].labelset)
        assert sweep.mean("subgraph", 0.9) > 1.5 * chance

    # More training data helps subgraph features on the hardest dataset.
    imdb = sweeps["IMDB"]
    assert imdb.mean("subgraph", 0.9) >= imdb.mean("subgraph", 0.1) - 0.05
