"""Figure 4: the most discriminative subgraphs per conference.

Paper claims: random-forest importances over subgraph features identify
interpretable discriminative structures — notably cross-institution
collaboration patterns (authors of different institutions sharing a paper).
"""

from repro.core import realize_code
from repro.core.census import CensusConfig, effective_labelset
from repro.core.interpret import rank_features
from repro.experiments.importance import discriminative_subgraphs


def test_fig4_discriminative_subgraphs(benchmark, mag_world, rank_config, rank_experiment):
    conferences = mag_world.config.conferences[:2]  # two conferences suffice

    reports = benchmark.pedantic(
        lambda: discriminative_subgraphs(
            mag_world, rank_config, conferences=conferences, top=2
        ),
        rounds=1,
        iterations=1,
    )

    graph = mag_world.build_rank_graph(conferences[0], rank_config.train_years[0] - 1)
    labelset = effective_labelset(graph, CensusConfig(max_edges=rank_config.emax))

    print()
    print("Figure 4 -- most discriminative subgraphs (random forest)")
    for report in reports:
        print(report.render(labelset))

    assert len(reports) == len(conferences)
    for report in reports:
        assert len(report.ranking) == 2
        assert report.ranking[0].importance >= report.ranking[1].importance
        assert report.ranking[0].importance > 0
        # Each top feature decodes into a realisable labelled subgraph.
        for feature in report.ranking:
            realised = realize_code(feature.code)
            assert realised is not None

    # Interpretability claim: at least one top subgraph involves an
    # institution together with author/paper structure (the paper's
    # cross-institution observation needs I and A in one feature).
    names = set()
    for report in reports:
        for feature in report.ranking:
            for seq in feature.code:
                names.add(labelset.name(seq[0]))
    assert "A" in names or "I" in names
