"""Table 1: average NDCG over conferences per method and feature type.

Paper claims (shape): the best cells belong to random forests with subgraph
or combined features; subgraph features beat classic for Bayesian ridge;
all embedding rows trail the label-aware rows, with DeepWalk weakest and
LINE the best embedding for random forests.
"""

from repro.experiments import render_table1


def test_table1_average_ndcg(benchmark, rank_result):
    result = benchmark.pedantic(lambda: rank_result, rounds=1, iterations=1)

    print()
    print(render_table1(result))

    table = result.average_table()

    # Label-aware features dominate embeddings for the stable methods.
    for regressor in ("RanForest", "BayRidge"):
        weakest_informative = min(
            table[(regressor, "classic")],
            table[(regressor, "subgraph")],
            table[(regressor, "combined")],
        )
        best_embedded = max(
            table[(regressor, "node2vec")],
            table[(regressor, "deepwalk")],
            table[(regressor, "line")],
        )
        assert weakest_informative > best_embedded - 0.05

    # Subgraph features are competitive with classic features for the
    # forest (paper: a tie at 0.68 vs 0.64) and ahead for Bayesian ridge.
    assert table[("RanForest", "subgraph")] >= table[("RanForest", "classic")] - 0.1
    assert table[("BayRidge", "subgraph")] >= table[("BayRidge", "deepwalk")]

    # The single best informative cell beats the single best embedded cell.
    informative_best = max(
        table[(r, f)]
        for r in ("LinRegr", "DecTree", "RanForest", "BayRidge")
        for f in ("classic", "subgraph", "combined")
    )
    embedded_best = max(
        table[(r, f)]
        for r in ("LinRegr", "DecTree", "RanForest", "BayRidge")
        for f in ("node2vec", "deepwalk", "line")
    )
    assert informative_best > embedded_best
