"""Figure 5D-F: label prediction with partially removed node labels.

Paper claims (shape): subgraph-feature performance drops as node labels are
replaced by an unlabeled-label, but stays above node2vec and DeepWalk even
at 75% removal; embeddings are invariant (flat lines) because they ignore
labels entirely.
"""

import numpy as np

from repro.experiments import render_sweep
from repro.experiments.label_prediction import LabelPredictionExperiment
from benchmarks.conftest import label_task_config

REMOVALS = (0.0, 0.25, 0.5, 0.75)


def test_fig5def_label_removal(benchmark, label_graphs):
    def run():
        sweeps = {}
        for name, graph in label_graphs.items():
            config = label_task_config(
                removal_fractions=REMOVALS, n_repeats=3
            )
            experiment = LabelPredictionExperiment(graph, config)
            sweeps[name] = experiment.run_label_removal()
        return sweeps

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    for name, sweep in sweeps.items():
        print(render_sweep(f"Figure 5 ({name}) -- macro-F1 vs removed labels", sweep))
        print()

    for name, sweep in sweeps.items():
        # Embeddings are invariant to label removal: identical score lists.
        for method in ("node2vec", "deepwalk", "line"):
            base = sweep.scores[(method, 0.0)]
            for removal in REMOVALS[1:]:
                assert sweep.scores[(method, removal)] == base

        # Subgraph features degrade (or stay flat) with removal overall.
        assert (
            sweep.mean("subgraph", 0.75) <= sweep.mean("subgraph", 0.0) + 0.05
        )

        # With full labels, subgraph features beat the walk embeddings.
        walk_best_full = max(
            sweep.mean("node2vec", 0.0), sweep.mean("deepwalk", 0.0)
        )
        assert sweep.mean("subgraph", 0.0) > walk_best_full, name

    # Even at 75% removal, subgraph features stay at or above the weaker
    # walks on most datasets (the paper's robustness claim; at bench-scale
    # repeat counts the star-shaped IMDB — the paper's own closest call —
    # can dip within noise).
    robust = sum(
        1
        for sweep in sweeps.values()
        if sweep.mean("subgraph", 0.75)
        > max(sweep.mean("node2vec", 0.75), sweep.mean("deepwalk", 0.75)) - 0.03
    )
    assert robust >= 2
