"""Perf gate: the feature-serving daemon under a mixed read/update trace.

Runs a live :class:`~repro.serve.daemon.ServeDaemon` on a unix socket
and fires a deterministic replay trace at it — thousands of
``features``/``rank``/``label`` reads interleaved with edge mutations
(2% of the trace), each mutation incrementally repairing only its
d_max-ball of rooted censuses.  The client-side report (throughput,
p50/p99 latency) is the bench's product; the server-side run manifest
is asserted to carry the serve distributions and repair counters the
acceptance criteria name.

Gate: sustained throughput of at least ``MIN_RPS`` mixed requests/s.
The daemon overlaps its event loop with worker threads, so on a
single-core runner only the overhead is measurable and the gate is
waived (the JSON records why).  ``--smoke`` shrinks the trace to
seconds, skips the gate, and does not write the JSON artefact.

Writes ``BENCH_serve.json`` next to the repo root.
"""

from __future__ import annotations

import os

import numpy as np

from _bench import gate_block, write_bench
from repro.datasets.synthetic import affinity_graph
from repro.obs import fresh_telemetry
from repro.obs.manifest import build_manifest
from repro.serve import ReplayConfig, ServeConfig
from repro.serve.replay import run_in_process

#: The acceptance gate: sustained mixed read/update throughput.
MIN_RPS = 1000.0

#: Loop + worker threads need a second core to overlap.
MIN_CORES_FOR_GATE = 2

#: Edge-mutation share of the trace ("mixed" per the acceptance
#: criteria; each mutation exclusively repairs its census ball).
WRITE_FRACTION = 0.02


def _serve_graph():
    return affinity_graph(
        label_sizes={"a": 40, "b": 35, "c": 25},
        affinity={("a", "b"): 1.0, ("b", "c"): 0.7, ("a", "c"): 0.3},
        mean_degree=3.0,
        rng=np.random.default_rng(0),
    )


def test_serve_replay_throughput(smoke, tmp_path):
    graph = _serve_graph()
    requests = 300 if smoke else 3000
    serve_config = ServeConfig(emax=3, dmax=6)
    replay_config = ReplayConfig(
        requests=requests,
        connections=8,
        write_fraction=WRITE_FRACTION,
        seed=1,
    )

    with fresh_telemetry():
        report, service = run_in_process(
            graph,
            tmp_path / "serve-bench.sock",
            serve_config=serve_config,
            replay_config=replay_config,
        )
        manifest = build_manifest("serve-bench", config={})

    assert report.errors == 0, f"replay saw errors: {report.error_counts}"
    assert report.requests == requests

    # The manifest must carry the serving observability the acceptance
    # criteria name: latency distribution with percentiles + repair and
    # degradation counters.
    latency = manifest["distributions"]["serve/latency_s"]
    assert latency["count"] == requests
    assert latency["p99"] > 0
    assert latency["p50"] > 0
    counters = manifest["counters"]
    assert counters["serve/requests"] == requests
    assert counters["serve/mutations"] == service.mutations > 0
    assert counters["serve/repaired_roots"] == service.repaired_roots > 0
    assert "serve/shed_requests" in counters
    assert "serve/timeouts" in counters

    rps = report.throughput_rps
    cores = os.cpu_count() or 1
    gated = cores >= MIN_CORES_FOR_GATE
    print()
    print(
        f"serve replay perf: {report.summary()}; "
        f"{service.mutations} mutations repaired {service.repaired_roots} "
        f"roots, migrated {service.migrated_roots} "
        f"(gate {MIN_RPS:.0f} req/s, {cores} cores"
        + ("" if gated else ", waived: needs >= 2 cores")
        + (", smoke: gate+JSON skipped)" if smoke else ")")
    )

    if smoke:
        return

    waiver = None if gated else f"needs >= {MIN_CORES_FOR_GATE} cores, has {cores}"
    write_bench(
        "serve",
        workload={
            "graph": "affinity graph (3 labels)",
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "requests": requests,
            "connections": replay_config.connections,
            "write_fraction": WRITE_FRACTION,
            "read_mix": list(list(pair) for pair in replay_config.read_mix),
            "e_max": serve_config.emax,
            "d_max": serve_config.dmax,
            "engine": serve_config.engine,
        },
        results={
            "throughput_rps": rps,
            "p50_ms": report.percentile(50) * 1e3,
            "p90_ms": report.percentile(90) * 1e3,
            "p99_ms": report.percentile(99) * 1e3,
            "server_p50_ms": latency["p50"] * 1e3,
            "server_p99_ms": latency["p99"] * 1e3,
            "mutations": service.mutations,
            "repaired_roots": service.repaired_roots,
            "migrated_roots": service.migrated_roots,
            "shed_requests": int(counters["serve/shed_requests"]),
            "timeouts": int(counters["serve/timeouts"]),
        },
        # This gate is a throughput floor, not a speedup ratio; the
        # shared min_speedup field stays at the 1.0 identity and
        # min_rps carries the real threshold.
        gate=gate_block(1.0, applied=gated, waiver=waiver)
        | {"min_rps": MIN_RPS},
    )
    if gated:
        assert rps >= MIN_RPS, (
            f"serve replay sustained {rps:.0f} req/s, gate is {MIN_RPS:.0f}"
        )
