"""Perf gate: the sparse + parallel experiment pipeline vs. the baseline.

Runs the Table-1 rank-prediction grid end to end on a small MAG world
twice: once on the fast path (sparse count matrices, per-year feature
reuse across families, batched forest engine, resolved ``n_jobs``) and
once on the baseline path (dense matrices, no feature reuse, reference
forest engine, sequential grid).  Writes ``BENCH_experiments.json`` next
to the repo root so future PRs have a perf trajectory to compare against.

The gate asserts the fast path is at least 2.5x faster end to end AND
that both paths produce the *identical* NDCG grid — the sparse layout,
the feature cache, the batched trees, and the process fan-out are all
bit-exact reformulations, so any drift is a bug, not noise.

``--smoke`` shrinks the workload to seconds, skips the gate, and does
not write the JSON artefact.
"""

from __future__ import annotations

import time
from dataclasses import replace

from _bench import bench_path, gate_block, write_bench
from repro.datasets.mag import MagConfig, SyntheticMAG
from repro.experiments.rank_prediction import (
    RankPredictionExperiment,
    RankTaskConfig,
)

RESULT_PATH = bench_path("experiments")

#: The acceptance gate: end-to-end fast-path speedup on this workload.
MIN_SPEEDUP = 2.5

#: Families whose Table-1 columns the bench reproduces.  ``combined``
#: matters for the perf story: without feature reuse it recomputes both
#: count families from scratch.
FAMILIES = ("classic", "subgraph", "combined")

REGRESSORS = ("LinRegr", "BayRidge", "RanForest")

#: The fast path under test: every optimisation this PR added, enabled.
FAST = dict(layout="sparse", reuse_features=True, forest_engine="fast", n_jobs=None)

#: The baseline: the pipeline exactly as it stood before this PR.
BASELINE = dict(
    layout="dense", reuse_features=False, forest_engine="reference", n_jobs=1
)


def _world(smoke: bool) -> SyntheticMAG:
    if smoke:
        config = MagConfig(
            num_institutions=14,
            authors_per_institution=4,
            papers_per_conference_year=16,
            seed=7,
        )
    else:
        config = MagConfig(
            num_institutions=30,
            authors_per_institution=6,
            papers_per_conference_year=40,
            seed=7,
        )
    return SyntheticMAG(config)


def _task(mag: SyntheticMAG, smoke: bool, **overrides) -> RankTaskConfig:
    base = RankTaskConfig(
        train_years=(2013, 2014) if smoke else (2011, 2012, 2013, 2014),
        test_year=2015,
        conferences=tuple(mag.config.conferences[:2]),
        emax=2 if smoke else 3,
        forest_trees=30 if smoke else 300,
        seed=0,
    )
    return replace(base, **overrides)


def _run_arm(mag: SyntheticMAG, smoke: bool, arm: dict):
    config = _task(mag, smoke, **arm)
    experiment = RankPredictionExperiment(mag, config)
    started = time.perf_counter()
    result = experiment.run(families=FAMILIES, regressors=REGRESSORS)
    return time.perf_counter() - started, result


def test_experiment_pipeline_speedup(benchmark, smoke):
    mag = _world(smoke)

    # Interleave the arms and keep the fastest round of each: wall-clock
    # noise on a shared box easily reaches +-20%, which would swamp the
    # gate if each arm were timed once.
    rounds = 1 if smoke else 2
    fast_s, fast = benchmark.pedantic(
        lambda: _run_arm(mag, smoke, FAST), rounds=1, iterations=1
    )
    baseline_s, baseline = _run_arm(mag, smoke, BASELINE)
    for _ in range(rounds - 1):
        fast_s = min(fast_s, _run_arm(mag, smoke, FAST)[0])
        baseline_s = min(baseline_s, _run_arm(mag, smoke, BASELINE)[0])
    speedup = baseline_s / fast_s

    # Score parity first: a perf number for a different answer is worthless.
    assert fast.ndcg == baseline.ndcg, (
        "fast-path NDCG grid differs from the baseline grid"
    )

    print()
    print(
        f"experiment perf: fast {fast_s:.2f}s vs baseline {baseline_s:.2f}s "
        f"-> {speedup:.2f}x (gate {MIN_SPEEDUP}x)"
        + (" [smoke: gate skipped]" if smoke else f" -> {RESULT_PATH.name}")
    )

    if smoke:
        return

    write_bench(
        "experiments",
        workload={
            "world": "synthetic MAG, 30 institutions",
            "conferences": list(_task(mag, smoke).conferences),
            "families": list(FAMILIES),
            "regressors": list(REGRESSORS),
            "train_years": list(_task(mag, smoke).train_years),
            "forest_trees": _task(mag, smoke).forest_trees,
            "emax": _task(mag, smoke).emax,
        },
        results={
            "fast": dict(FAST),
            "baseline": dict(BASELINE),
            "fast_s": float(fast_s),
            "baseline_s": float(baseline_s),
            "speedup": float(speedup),
            "scores_identical": True,
        },
        gate=gate_block(MIN_SPEEDUP),
    )

    assert speedup >= MIN_SPEEDUP, (
        f"experiment pipeline speedup {speedup:.2f}x below the {MIN_SPEEDUP}x gate"
    )
