"""Ablation: the heterogeneous grouping heuristic (Section 3.2).

The heuristic reuses the encoding computed for the first new same-label
leaf of a group instead of recomputing it per neighbour; the paper argues
it cuts per-node key computations from degree(v) to min(degree(v), |L|).
This bench times the census with the heuristic on and off on the IMDB
star network (many same-label leaves around movies - the best case) and
checks the results agree exactly.
"""

import numpy as np
import pytest

from repro.core.census import CensusConfig, subgraph_census
from repro.datasets import sample_nodes_per_label


@pytest.fixture(scope="module")
def workload(request):
    imdb = request.getfixturevalue("imdb_dataset")
    graph = imdb.graph
    # Movies have many same-label neighbours: the heuristic's best case.
    movies = graph.nodes_with_label(graph.labelset.index("M"))[:20]
    dmax = int(np.percentile(graph.degrees(), 90))
    return graph, [int(m) for m in movies], dmax


def _run_all(graph, nodes, dmax, grouping):
    config = CensusConfig(max_edges=3, max_degree=dmax, group_by_label=grouping)
    return [subgraph_census(graph, node, config) for node in nodes]


@pytest.mark.parametrize("grouping", [True, False], ids=["grouping-on", "grouping-off"])
def test_ablation_grouping_heuristic(benchmark, workload, grouping):
    graph, nodes, dmax = workload
    results = benchmark(lambda: _run_all(graph, nodes, dmax, grouping))
    assert len(results) == len(nodes)


def test_ablation_grouping_results_identical(workload):
    graph, nodes, dmax = workload
    on = _run_all(graph, nodes, dmax, True)
    off = _run_all(graph, nodes, dmax, False)
    for a, b in zip(on, off):
        assert a == b
