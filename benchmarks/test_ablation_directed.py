"""Ablation: directed subgraph features (the paper's future work).

Section 5 suspects that "for denser directed networks, directed subgraph
features may turn out to be more performant than the undirected variety".
This bench plants a purely directional signal — source / relay / sink roles
that share one node label and differ only in edge orientation — and shows
that directed (edge-typed) censuses recover the roles while undirected
censuses cannot see them at all.
"""

import numpy as np

from repro.core import CensusConfig, HeteroGraph, subgraph_census
from repro.core.features import FeatureSpace
from repro.extensions import EdgeTypedGraph, directed_census_matrix
from repro.ml import RandomForestClassifier, macro_f1, train_test_split


def _directional_world(num_per_role=60, seed=0):
    """Nodes of one label; roles differ only in edge direction mix."""
    rng = np.random.default_rng(seed)
    roles = (
        ["source"] * num_per_role + ["relay"] * num_per_role + ["sink"] * num_per_role
    )
    n = len(roles)
    node_labels = {f"v{i}": "N" for i in range(n)}
    edges = set()

    def want_out(role):
        return {"source": 0.9, "relay": 0.5, "sink": 0.1}[role]

    attempts = 0
    while len(edges) < 4 * n and attempts < 40 * n:
        attempts += 1
        i, j = rng.integers(0, n, 2)
        if i == j:
            continue
        # orient by the two roles' out-preferences
        p = want_out(roles[i]) * (1 - want_out(roles[j]))
        q = want_out(roles[j]) * (1 - want_out(roles[i]))
        if p + q == 0:
            continue
        if rng.random() < p / (p + q):
            edge = (f"v{i}", f"v{j}")
        else:
            edge = (f"v{j}", f"v{i}")
        if edge not in edges and (edge[1], edge[0]) not in edges:
            edges.add(edge)
    return node_labels, sorted(edges), np.array(roles)


def _score(X, y, seed=0):
    X_train, X_test, y_train, y_test = train_test_split(
        np.log1p(X), y, test_size=0.3, rng=seed, stratify=y
    )
    model = RandomForestClassifier(n_estimators=40, random_state=seed)
    model.fit(X_train, y_train)
    return macro_f1(y_test, model.predict(X_test))


def test_ablation_directed_features(benchmark):
    node_labels, directed_edges, roles = _directional_world()

    def run():
        # Directed (edge-typed) features.
        digraph = EdgeTypedGraph.from_directed(node_labels, directed_edges)
        nodes = list(range(digraph.num_nodes))
        X_directed, _ = directed_census_matrix(digraph, nodes, max_edges=3)

        # Undirected features on the shadow graph.
        shadow = HeteroGraph.from_edges(node_labels, directed_edges)
        config = CensusConfig(max_edges=3)
        censuses = [subgraph_census(shadow, v, config) for v in nodes]
        space = FeatureSpace().fit(censuses)
        X_undirected = space.to_matrix(censuses)
        return X_directed, X_undirected

    X_directed, X_undirected = benchmark.pedantic(run, rounds=1, iterations=1)

    directed_f1 = _score(X_directed, roles)
    undirected_f1 = _score(X_undirected, roles)

    print()
    print("Ablation -- directed subgraph features (planted orientation roles)")
    print(f"  directed features:   {X_directed.shape[1]:>5} columns, macro-F1 {directed_f1:.3f}")
    print(f"  undirected features: {X_undirected.shape[1]:>5} columns, macro-F1 {undirected_f1:.3f}")

    # The signal is purely directional: directed features must dominate.
    assert directed_f1 > undirected_f1 + 0.15
    assert directed_f1 > 0.45
