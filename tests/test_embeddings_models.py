"""Tests for the skip-gram trainer and the three embedding baselines."""

import numpy as np
import pytest

from repro.core.graph import HeteroGraph
from repro.embeddings import DeepWalk, LINE, Node2Vec, SkipGramTrainer
from repro.embeddings.skipgram import walks_to_pairs
from repro.embeddings.walks import uniform_random_walks

ENGINES = ("fast", "reference")


@pytest.fixture(scope="module")
def community_graph():
    """Two dense communities with a thin bridge; labels alternate."""
    rng = np.random.default_rng(0)
    half = 30
    labels = {f"v{i}": ("A" if i % 2 else "B") for i in range(2 * half)}
    edges = set()
    for block in range(2):
        for _ in range(250):
            a, b = rng.integers(0, half, 2)
            if a != b:
                u, v = sorted((block * half + a, block * half + b))
                edges.add((f"v{u}", f"v{v}"))
    for _ in range(4):
        a, b = rng.integers(0, half, 2)
        edges.add((f"v{a}", f"v{half + b}"))
    return HeteroGraph.from_edges(labels, edges), half


def _community_separation(embedding: np.ndarray, half: int) -> float:
    normed = embedding / (np.linalg.norm(embedding, axis=1, keepdims=True) + 1e-12)
    within = float((normed[:half] @ normed[:half].T).mean())
    across = float((normed[:half] @ normed[half:].T).mean())
    return within - across


class TestWalksToPairs:
    def test_pairs_within_window_matrix(self):
        rng = np.random.default_rng(0)
        walks = np.array([[1, 2, 3, 4, 5]], dtype=np.int64)
        pairs = walks_to_pairs(walks, window=2, rng=rng)
        assert pairs.shape[1] == 2
        positions = {v: i for i, v in enumerate(walks[0])}
        for centre, context in pairs:
            assert abs(positions[centre] - positions[context]) <= 2

    def test_pairs_within_window_legacy_list(self):
        rng = np.random.default_rng(0)
        walks = [np.array([1, 2, 3, 4, 5])]
        pairs = walks_to_pairs(walks, window=2, rng=rng)
        assert pairs.shape[1] == 2

    def test_short_walks_skipped(self):
        rng = np.random.default_rng(0)
        assert walks_to_pairs([np.array([7])], window=3, rng=rng).shape == (0, 2)
        padded = np.array([[7, -1, -1]], dtype=np.int64)
        assert walks_to_pairs(padded, window=3, rng=rng, engine="reference").shape == (0, 2)

    def test_padded_rows_never_pair_the_sentinel(self):
        rng = np.random.default_rng(1)
        walks = np.array([[0, 1, 2, -1, -1], [3, -1, -1, -1, -1]], dtype=np.int64)
        pairs = walks_to_pairs(walks, window=3, rng=rng)
        assert (pairs >= 0).all()

    def test_engines_match_on_full_corpus(self):
        """On a pad-free corpus both extraction engines consume the rng
        identically, so their pair multisets coincide exactly."""
        graph = HeteroGraph.from_edges(
            {"a": "X", "b": "X", "c": "X"},
            [("a", "b"), ("b", "c"), ("a", "c")],
        )
        walks = uniform_random_walks(graph, num_walks=3, walk_length=6, rng=0)
        fast = walks_to_pairs(walks, window=3, rng=np.random.default_rng(5))
        reference = walks_to_pairs(
            walks, window=3, rng=np.random.default_rng(5), engine="reference"
        )
        assert fast.shape == reference.shape
        key = lambda arr: sorted(map(tuple, arr.tolist()))
        assert key(fast) == key(reference)

    def test_bad_window(self):
        with pytest.raises(ValueError):
            walks_to_pairs([], window=0, rng=np.random.default_rng(0))

    def test_bad_engine(self):
        with pytest.raises(ValueError):
            walks_to_pairs(
                np.zeros((1, 3), dtype=np.int64),
                window=1,
                rng=np.random.default_rng(0),
                engine="turbo",
            )


class TestSkipGram:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_output_shape(self, engine):
        walks = [np.array([0, 1, 2, 1, 0])] * 20
        trainer = SkipGramTrainer(dim=8, window=2, seed=0, engine=engine)
        embedding = trainer.fit(walks, num_nodes=3)
        assert embedding.shape == (3, 8)
        assert np.all(np.isfinite(embedding))

    def test_matrix_corpus_accepted(self):
        walks = np.tile(np.array([0, 1, 2, 1, 0], dtype=np.int64), (20, 1))
        embedding = SkipGramTrainer(dim=8, window=2, seed=0).fit(walks, num_nodes=3)
        assert embedding.shape == (3, 8)

    def test_empty_corpus_rejected(self):
        trainer = SkipGramTrainer(dim=4, seed=0)
        with pytest.raises(ValueError):
            trainer.fit([np.array([1])], num_nodes=2)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_cooccurring_nodes_closer(self, engine):
        """Nodes that always co-occur end up more similar than strangers."""
        walks = []
        for _ in range(300):
            walks.append(np.array([0, 1] * 4))
            walks.append(np.array([2, 3] * 4))
        embedding = SkipGramTrainer(
            dim=16, window=2, epochs=3, seed=0, engine=engine
        ).fit(walks, 4)
        normed = embedding / np.linalg.norm(embedding, axis=1, keepdims=True)
        together = normed[0] @ normed[1]
        apart = normed[0] @ normed[3]
        assert together > apart

    @pytest.mark.parametrize("engine", ENGINES)
    def test_deterministic(self, engine):
        walks = np.tile(np.array([0, 1, 2, 1, 0], dtype=np.int64), (30, 1))
        a = SkipGramTrainer(dim=8, window=2, seed=3, engine=engine).fit(walks, 3)
        b = SkipGramTrainer(dim=8, window=2, seed=3, engine=engine).fit(walks, 3)
        assert np.array_equal(a, b)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SkipGramTrainer(dim=0)
        with pytest.raises(ValueError):
            SkipGramTrainer(negative=0)
        with pytest.raises(ValueError):
            SkipGramTrainer(epochs=0)
        with pytest.raises(ValueError):
            SkipGramTrainer(engine="turbo")


class TestBaselines:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_deepwalk_separates_communities(self, community_graph, engine):
        graph, half = community_graph
        model = DeepWalk(
            dim=24, num_walks=10, walk_length=30, window=5, seed=0, engine=engine
        )
        model.fit(graph)
        assert _community_separation(model.embedding_, half) > 0.2

    def test_node2vec_separates_communities(self, community_graph):
        graph, half = community_graph
        model = Node2Vec(dim=24, num_walks=10, walk_length=30, window=5, seed=0)
        model.fit(graph)
        assert _community_separation(model.embedding_, half) > 0.2

    @pytest.mark.parametrize("engine", ENGINES)
    def test_line_separates_communities(self, community_graph, engine):
        graph, half = community_graph
        model = LINE(dim=24, num_samples=60_000, seed=0, engine=engine)
        model.fit(graph)
        assert _community_separation(model.embedding_, half) > 0.1

    def test_line_concatenates_two_halves(self, community_graph):
        graph, _ = community_graph
        model = LINE(dim=10, num_samples=5_000, seed=0).fit(graph)
        assert model.embedding_.shape == (graph.num_nodes, 10)

    def test_line_needs_edges(self):
        graph = HeteroGraph.from_edges({"a": "A"}, [])
        with pytest.raises(ValueError):
            LINE(dim=4, num_samples=10).fit(graph)

    def test_transform_before_fit_raises(self, community_graph):
        graph, _ = community_graph
        with pytest.raises(RuntimeError):
            DeepWalk().transform([0])
        with pytest.raises(RuntimeError):
            LINE().transform([0])

    def test_transform_selects_rows(self, community_graph):
        graph, _ = community_graph
        model = DeepWalk(dim=8, num_walks=2, walk_length=10, seed=0).fit(graph)
        rows = model.transform([3, 5])
        assert np.array_equal(rows[0], model.embedding_[3])
        assert np.array_equal(rows[1], model.embedding_[5])

    @pytest.mark.parametrize("engine", ENGINES)
    def test_deterministic_with_seed(self, community_graph, engine):
        graph, _ = community_graph
        a = DeepWalk(dim=8, num_walks=2, walk_length=10, seed=4, engine=engine).fit(graph)
        b = DeepWalk(dim=8, num_walks=2, walk_length=10, seed=4, engine=engine).fit(graph)
        assert np.array_equal(a.embedding_, b.embedding_)

    def test_line_dim_validation(self):
        with pytest.raises(ValueError):
            LINE(dim=1)

    def test_line_engine_validation(self):
        with pytest.raises(ValueError):
            LINE(engine="turbo")
        with pytest.raises(ValueError):
            LINE(n_jobs=0)


class TestNJobsReproducibility:
    """Same seed => identical embeddings for any worker count (satellite)."""

    @pytest.fixture(scope="class")
    def small_graph(self):
        rng = np.random.default_rng(1)
        labels = {f"v{i}": "X" for i in range(20)}
        edges = set()
        while len(edges) < 50:
            a, b = rng.integers(0, 20, 2)
            if a != b:
                edges.add((f"v{min(a, b)}", f"v{max(a, b)}"))
        return HeteroGraph.from_edges(labels, edges)

    def test_deepwalk_n_jobs_identical(self, small_graph):
        kwargs = dict(dim=8, num_walks=4, walk_length=10, window=3, seed=7)
        serial = DeepWalk(n_jobs=1, **kwargs).fit(small_graph).embedding_
        parallel = DeepWalk(n_jobs=4, **kwargs).fit(small_graph).embedding_
        assert np.array_equal(serial, parallel)

    def test_node2vec_n_jobs_identical(self, small_graph):
        kwargs = dict(
            dim=8, num_walks=4, walk_length=10, window=3, p=0.5, q=2.0, seed=7
        )
        serial = Node2Vec(n_jobs=1, **kwargs).fit(small_graph).embedding_
        parallel = Node2Vec(n_jobs=4, **kwargs).fit(small_graph).embedding_
        assert np.array_equal(serial, parallel)

    def test_line_n_jobs_identical(self, small_graph):
        kwargs = dict(dim=8, num_samples=4_000, seed=7)
        serial = LINE(n_jobs=1, **kwargs).fit(small_graph).embedding_
        parallel = LINE(n_jobs=4, **kwargs).fit(small_graph).embedding_
        assert np.array_equal(serial, parallel)
