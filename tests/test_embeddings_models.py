"""Tests for the skip-gram trainer and the three embedding baselines."""

import numpy as np
import pytest

from repro.core.graph import HeteroGraph
from repro.embeddings import DeepWalk, LINE, Node2Vec, SkipGramTrainer
from repro.embeddings.skipgram import walks_to_pairs


@pytest.fixture(scope="module")
def community_graph():
    """Two dense communities with a thin bridge; labels alternate."""
    rng = np.random.default_rng(0)
    half = 30
    labels = {f"v{i}": ("A" if i % 2 else "B") for i in range(2 * half)}
    edges = set()
    for block in range(2):
        for _ in range(250):
            a, b = rng.integers(0, half, 2)
            if a != b:
                u, v = sorted((block * half + a, block * half + b))
                edges.add((f"v{u}", f"v{v}"))
    for _ in range(4):
        a, b = rng.integers(0, half, 2)
        edges.add((f"v{a}", f"v{half + b}"))
    return HeteroGraph.from_edges(labels, edges), half


def _community_separation(embedding: np.ndarray, half: int) -> float:
    normed = embedding / (np.linalg.norm(embedding, axis=1, keepdims=True) + 1e-12)
    within = float((normed[:half] @ normed[:half].T).mean())
    across = float((normed[:half] @ normed[half:].T).mean())
    return within - across


class TestWalksToPairs:
    def test_pairs_within_window(self):
        rng = np.random.default_rng(0)
        walks = [np.array([1, 2, 3, 4, 5])]
        pairs = walks_to_pairs(walks, window=2, rng=rng)
        assert pairs.shape[1] == 2
        for centre, context in pairs:
            positions = {v: i for i, v in enumerate(walks[0])}
            assert abs(positions[centre] - positions[context]) <= 2

    def test_short_walks_skipped(self):
        rng = np.random.default_rng(0)
        pairs = walks_to_pairs([np.array([7])], window=3, rng=rng)
        assert pairs.shape == (0, 2)

    def test_bad_window(self):
        with pytest.raises(ValueError):
            walks_to_pairs([], window=0, rng=np.random.default_rng(0))


class TestSkipGram:
    def test_output_shape(self):
        walks = [np.array([0, 1, 2, 1, 0])] * 20
        trainer = SkipGramTrainer(dim=8, window=2, seed=0)
        embedding = trainer.fit(walks, num_nodes=3)
        assert embedding.shape == (3, 8)
        assert np.all(np.isfinite(embedding))

    def test_empty_corpus_rejected(self):
        trainer = SkipGramTrainer(dim=4, seed=0)
        with pytest.raises(ValueError):
            trainer.fit([np.array([1])], num_nodes=2)

    def test_cooccurring_nodes_closer(self):
        """Nodes that always co-occur end up more similar than strangers."""
        rng = np.random.default_rng(0)
        walks = []
        for _ in range(300):
            walks.append(np.array([0, 1] * 4))
            walks.append(np.array([2, 3] * 4))
        embedding = SkipGramTrainer(dim=16, window=2, epochs=3, seed=0).fit(walks, 4)
        normed = embedding / np.linalg.norm(embedding, axis=1, keepdims=True)
        together = normed[0] @ normed[1]
        apart = normed[0] @ normed[3]
        assert together > apart

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SkipGramTrainer(dim=0)
        with pytest.raises(ValueError):
            SkipGramTrainer(negative=0)
        with pytest.raises(ValueError):
            SkipGramTrainer(epochs=0)


class TestBaselines:
    def test_deepwalk_separates_communities(self, community_graph):
        graph, half = community_graph
        model = DeepWalk(dim=24, num_walks=10, walk_length=30, window=5, seed=0)
        model.fit(graph)
        assert _community_separation(model.embedding_, half) > 0.2

    def test_node2vec_separates_communities(self, community_graph):
        graph, half = community_graph
        model = Node2Vec(dim=24, num_walks=10, walk_length=30, window=5, seed=0)
        model.fit(graph)
        assert _community_separation(model.embedding_, half) > 0.2

    def test_line_separates_communities(self, community_graph):
        graph, half = community_graph
        model = LINE(dim=24, num_samples=60_000, seed=0)
        model.fit(graph)
        assert _community_separation(model.embedding_, half) > 0.1

    def test_line_concatenates_two_halves(self, community_graph):
        graph, _ = community_graph
        model = LINE(dim=10, num_samples=5_000, seed=0).fit(graph)
        assert model.embedding_.shape == (graph.num_nodes, 10)

    def test_line_needs_edges(self):
        graph = HeteroGraph.from_edges({"a": "A"}, [])
        with pytest.raises(ValueError):
            LINE(dim=4, num_samples=10).fit(graph)

    def test_transform_before_fit_raises(self, community_graph):
        graph, _ = community_graph
        with pytest.raises(RuntimeError):
            DeepWalk().transform([0])
        with pytest.raises(RuntimeError):
            LINE().transform([0])

    def test_transform_selects_rows(self, community_graph):
        graph, _ = community_graph
        model = DeepWalk(dim=8, num_walks=2, walk_length=10, seed=0).fit(graph)
        rows = model.transform([3, 5])
        assert np.array_equal(rows[0], model.embedding_[3])
        assert np.array_equal(rows[1], model.embedding_[5])

    def test_deterministic_with_seed(self, community_graph):
        graph, _ = community_graph
        a = DeepWalk(dim=8, num_walks=2, walk_length=10, seed=4).fit(graph)
        b = DeepWalk(dim=8, num_walks=2, walk_length=10, seed=4).fit(graph)
        assert np.array_equal(a.embedding_, b.embedding_)

    def test_line_dim_validation(self):
        with pytest.raises(ValueError):
            LINE(dim=1)
