"""Tests for estimator plumbing and input validation."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ReproError
from repro.ml.base import BaseEstimator, check_array, check_X_y


class TestCheckArray:
    def test_promotes_1d_to_column(self):
        X = check_array([1.0, 2.0, 3.0])
        assert X.shape == (3, 1)

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_array(np.ones((2, 2, 2)))

    def test_rejects_empty_features(self):
        with pytest.raises(ValueError, match="no features"):
            check_array(np.ones((3, 0)))

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError, match="at least 5"):
            check_array(np.ones((3, 2)), min_samples=5)

    def test_rejects_nan_and_inf(self):
        X = np.ones((3, 2))
        X[0, 0] = np.inf
        with pytest.raises(ValueError, match="NaN or infinity"):
            check_array(X)

    def test_casts_to_float(self):
        X = check_array(np.array([[1, 2], [3, 4]], dtype=np.int64))
        assert X.dtype == np.float64


class TestCheckXY:
    def test_regression_casts_y(self):
        X, y = check_X_y([[1.0], [2.0]], [1, 2])
        assert y.dtype == np.float64

    def test_classification_keeps_labels(self):
        X, y = check_X_y([[1.0], [2.0]], ["a", "b"], classification=True)
        assert y.dtype.kind == "U"

    def test_rejects_2d_y(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            check_X_y(np.ones((2, 2)), np.ones((2, 2)))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="samples"):
            check_X_y(np.ones((3, 2)), np.ones(2))

    def test_rejects_nan_target(self):
        with pytest.raises(ValueError, match="NaN"):
            check_X_y(np.ones((2, 1)), [1.0, np.nan])


class TestBaseEstimator:
    def test_check_fitted_raises_before_fit(self):
        class Model(BaseEstimator):
            pass

        with pytest.raises(NotFittedError, match="Model"):
            Model()._check_fitted()

    def test_get_params_skips_private_and_fitted(self):
        class Model(BaseEstimator):
            def __init__(self):
                self.alpha = 1.0
                self.coef_ = np.ones(2)
                self._secret = "x"

        params = Model().get_params()
        assert params == {"alpha": 1.0}

    def test_repr_lists_params(self):
        class Model(BaseEstimator):
            def __init__(self):
                self.alpha = 2.5

        assert repr(Model()) == "Model(alpha=2.5)"


class TestExceptionHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro.exceptions import (
            CensusError,
            EncodingError,
            FeatureError,
            GraphError,
            LabelError,
            NotFittedError,
        )

        for exc in (
            CensusError,
            EncodingError,
            FeatureError,
            GraphError,
            LabelError,
            NotFittedError,
        ):
            assert issubclass(exc, ReproError)

    def test_one_except_catches_everything(self):
        from repro.core import HeteroGraph

        with pytest.raises(ReproError):
            HeteroGraph.from_edges({"a": "A"}, [("a", "a")])
