"""Unit tests for random-walk corpora (batched fast engine + reference)."""

import numpy as np
import pytest

from repro.core.graph import HeteroGraph
from repro.embeddings import walks as walks_module
from repro.embeddings.walks import (
    node2vec_walks,
    uniform_random_walks,
    walk_lengths,
    walk_node_frequencies,
)

ENGINES = ("fast", "reference")


@pytest.fixture
def line_graph():
    """Path a-b-c-d."""
    return HeteroGraph.from_edges(
        {"a": "X", "b": "X", "c": "X", "d": "X"},
        [("a", "b"), ("b", "c"), ("c", "d")],
    )


@pytest.fixture
def path10():
    return HeteroGraph.from_edges(
        {f"v{i}": "X" for i in range(10)},
        [(f"v{i}", f"v{i + 1}") for i in range(9)],
    )


def _assert_walks_follow_edges(graph, walks):
    for row in walks:
        row = row[row >= 0]
        for u, v in zip(row, row[1:]):
            assert graph.has_edge(int(u), int(v))


class TestUniformWalks:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_matrix_shape_and_dtype(self, line_graph, engine):
        walks = uniform_random_walks(
            line_graph, num_walks=3, walk_length=5, rng=0, engine=engine
        )
        assert walks.shape == (3 * line_graph.num_nodes, 5)
        assert walks.dtype == np.int64

    @pytest.mark.parametrize("engine", ENGINES)
    def test_no_padding_on_connected_graph(self, line_graph, engine):
        walks = uniform_random_walks(
            line_graph, num_walks=2, walk_length=7, rng=0, engine=engine
        )
        assert (walks >= 0).all()
        assert (walk_lengths(walks) == 7).all()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_steps_follow_edges(self, line_graph, engine):
        walks = uniform_random_walks(
            line_graph, num_walks=2, walk_length=10, rng=1, engine=engine
        )
        _assert_walks_follow_edges(line_graph, walks)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_isolated_node_pads_with_sentinel(self, engine):
        graph = HeteroGraph.from_edges({"a": "X", "b": "X", "i": "X"}, [("a", "b")])
        walks = uniform_random_walks(
            graph, num_walks=1, walk_length=5, rng=0, engine=engine
        )
        isolated = walks[walks[:, 0] == graph.index("i")]
        assert isolated.shape[0] == 1
        assert (isolated[:, 1:] == -1).all()
        assert walk_lengths(isolated).tolist() == [1]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_restricted_start_nodes(self, line_graph, engine):
        walks = uniform_random_walks(
            line_graph, num_walks=2, walk_length=3, rng=0, nodes=[0], engine=engine
        )
        assert walks.shape == (2, 3)
        assert (walks[:, 0] == 0).all()

    def test_bad_params(self, line_graph):
        with pytest.raises(ValueError):
            uniform_random_walks(line_graph, num_walks=0)
        with pytest.raises(ValueError):
            uniform_random_walks(line_graph, walk_length=0)
        with pytest.raises(ValueError):
            uniform_random_walks(line_graph, engine="turbo")
        with pytest.raises(ValueError):
            uniform_random_walks(line_graph, n_jobs=0)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_seeded_bit_exactness(self, line_graph, engine):
        a = uniform_random_walks(line_graph, num_walks=2, walk_length=5, rng=3, engine=engine)
        b = uniform_random_walks(line_graph, num_walks=2, walk_length=5, rng=3, engine=engine)
        assert np.array_equal(a, b)

    def test_reference_engine_pinned_corpus(self, line_graph):
        """The reference engine is the behavioural oracle: its seeded output
        is pinned so accidental stream changes are caught."""
        walks = uniform_random_walks(
            line_graph, num_walks=1, walk_length=4, rng=42, engine="reference"
        )
        again = uniform_random_walks(
            line_graph, num_walks=1, walk_length=4, rng=42, engine="reference"
        )
        assert np.array_equal(walks, again)
        assert sorted(walks[:, 0].tolist()) == [0, 1, 2, 3]

    def test_engines_agree_distributionally(self, line_graph):
        """Both engines sample the same uniform-walk distribution: interior
        transition frequencies match within sampling noise."""
        counts = {}
        for engine in ENGINES:
            walks = uniform_random_walks(
                line_graph, num_walks=400, walk_length=5, rng=11, engine=engine
            )
            transitions = np.zeros((4, 4))
            for row in walks:
                for u, v in zip(row, row[1:]):
                    transitions[u, v] += 1
            counts[engine] = transitions / transitions.sum()
        assert np.allclose(counts["fast"], counts["reference"], atol=0.02)

    def test_n_jobs_invariance(self, line_graph):
        base = uniform_random_walks(line_graph, num_walks=4, walk_length=6, rng=5)
        for n_jobs in (2, 4):
            sharded = uniform_random_walks(
                line_graph, num_walks=4, walk_length=6, rng=5, n_jobs=n_jobs
            )
            assert np.array_equal(base, sharded)

    def test_n_jobs_invariance_reference_engine(self, line_graph):
        base = uniform_random_walks(
            line_graph, num_walks=3, walk_length=5, rng=6, engine="reference"
        )
        sharded = uniform_random_walks(
            line_graph, num_walks=3, walk_length=5, rng=6, engine="reference", n_jobs=3
        )
        assert np.array_equal(base, sharded)

    def test_generator_rng_accepted(self, line_graph):
        rng = np.random.default_rng(9)
        walks = uniform_random_walks(line_graph, num_walks=2, walk_length=5, rng=rng)
        assert walks.shape == (8, 5)


class TestNode2VecWalks:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_default_params_match_uniform(self, line_graph, engine):
        """p = q = 1 short-circuits to the uniform walker (same stream)."""
        uniform = uniform_random_walks(
            line_graph, num_walks=2, walk_length=5, rng=9, engine=engine
        )
        biased = node2vec_walks(
            line_graph, num_walks=2, walk_length=5, p=1, q=1, rng=9, engine=engine
        )
        assert np.array_equal(uniform, biased)

    def test_degenerate_delegation_fires(self, line_graph, monkeypatch):
        """The p == q == 1 fast path really does call uniform_random_walks."""
        calls = []
        real = walks_module.uniform_random_walks

        def spy(*args, **kwargs):
            calls.append((args, kwargs))
            return real(*args, **kwargs)

        monkeypatch.setattr(walks_module, "uniform_random_walks", spy)
        node2vec_walks(line_graph, num_walks=2, walk_length=5, p=1.0, q=1.0, rng=0)
        assert len(calls) == 1
        node2vec_walks(line_graph, num_walks=2, walk_length=5, p=0.5, q=1.0, rng=0)
        assert len(calls) == 1  # biased regime does NOT delegate

    @pytest.mark.parametrize("engine", ENGINES)
    def test_steps_follow_edges(self, line_graph, engine):
        walks = node2vec_walks(
            line_graph, num_walks=2, walk_length=8, p=0.5, q=2.0, rng=2, engine=engine
        )
        _assert_walks_follow_edges(line_graph, walks)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_high_p_discourages_backtracking(self, path10, engine):
        """On a path graph a huge p makes immediate returns rare."""
        returns = total = 0
        walks = node2vec_walks(
            path10, num_walks=20, walk_length=10, p=1000.0, q=1.0, rng=0, engine=engine
        )
        for walk in walks:
            walk = walk[walk >= 0]
            for i in range(2, len(walk)):
                total += 1
                if walk[i] == walk[i - 2]:
                    returns += 1
        # interior path nodes only return when forced (dead ends aside)
        assert returns / total < 0.2

    @pytest.mark.parametrize("engine", ENGINES)
    def test_low_p_encourages_backtracking(self, path10, engine):
        """p -> 0 forces returns; for the fast engine this regime also
        exercises the exact per-node fallback after rejection rounds."""
        returns = total = 0
        walks = node2vec_walks(
            path10, num_walks=20, walk_length=10, p=0.001, q=1.0, rng=0, engine=engine
        )
        for walk in walks:
            walk = walk[walk >= 0]
            for i in range(2, len(walk)):
                total += 1
                if walk[i] == walk[i - 2]:
                    returns += 1
        assert returns / total > 0.8

    def test_engines_agree_distributionally_biased(self):
        """Fast rejection sampling and the reference exact draw sample the
        same second-order distribution (triangle + pendant graph)."""
        graph = HeteroGraph.from_edges(
            {"a": "X", "b": "X", "c": "X", "d": "X"},
            [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")],
        )
        counts = {}
        for engine in ENGINES:
            walks = node2vec_walks(
                graph, num_walks=600, walk_length=4, p=0.5, q=2.0, rng=21, engine=engine
            )
            transitions = np.zeros((4, 4, 4))
            for row in walks:
                row = row[row >= 0]
                for i in range(2, len(row)):
                    transitions[row[i - 2], row[i - 1], row[i]] += 1
            counts[engine] = transitions / transitions.sum()
        assert np.allclose(counts["fast"], counts["reference"], atol=0.02)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_seeded_bit_exactness(self, path10, engine):
        a = node2vec_walks(path10, 2, 6, p=0.5, q=2.0, rng=4, engine=engine)
        b = node2vec_walks(path10, 2, 6, p=0.5, q=2.0, rng=4, engine=engine)
        assert np.array_equal(a, b)

    def test_n_jobs_invariance_biased(self, path10):
        base = node2vec_walks(path10, num_walks=4, walk_length=6, p=0.5, q=2.0, rng=8)
        sharded = node2vec_walks(
            path10, num_walks=4, walk_length=6, p=0.5, q=2.0, rng=8, n_jobs=4
        )
        assert np.array_equal(base, sharded)

    def test_isolated_start_biased(self):
        graph = HeteroGraph.from_edges(
            {"a": "X", "b": "X", "c": "X", "i": "X"},
            [("a", "b"), ("b", "c")],
        )
        walks = node2vec_walks(graph, 2, 6, p=0.5, q=2.0, rng=0)
        isolated = walks[walks[:, 0] == graph.index("i")]
        assert (isolated[:, 1:] == -1).all()

    def test_bad_pq(self, line_graph):
        with pytest.raises(ValueError):
            node2vec_walks(line_graph, p=0.0)
        with pytest.raises(ValueError):
            node2vec_walks(line_graph, q=-1.0)


class TestFrequencies:
    def test_counts_matrix_corpus(self):
        walks = np.array([[0, 1, 0, -1], [2, 1, -1, -1]], dtype=np.int64)
        frequencies = walk_node_frequencies(walks, 4)
        assert frequencies.tolist() == [2.0, 2.0, 1.0, 0.0]

    def test_counts_legacy_list_corpus(self):
        walks = [np.array([0, 1, 0]), np.array([2])]
        frequencies = walk_node_frequencies(walks, 4)
        assert frequencies.tolist() == [2.0, 1.0, 1.0, 0.0]

    def test_matches_between_forms(self, line_graph):
        matrix = uniform_random_walks(line_graph, num_walks=3, walk_length=5, rng=0)
        rows = [row[row >= 0] for row in matrix]
        assert np.array_equal(
            walk_node_frequencies(matrix, 4), walk_node_frequencies(rows, 4)
        )


class TestWalkLengths:
    def test_lengths(self):
        walks = np.array([[3, 2, 1], [4, -1, -1]], dtype=np.int64)
        assert walk_lengths(walks).tolist() == [3, 1]
