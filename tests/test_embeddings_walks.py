"""Unit tests for random-walk corpora."""

import numpy as np
import pytest

from repro.core.graph import HeteroGraph
from repro.embeddings.walks import (
    node2vec_walks,
    uniform_random_walks,
    walk_node_frequencies,
)


@pytest.fixture
def line_graph():
    """Path a-b-c-d."""
    return HeteroGraph.from_edges(
        {"a": "X", "b": "X", "c": "X", "d": "X"},
        [("a", "b"), ("b", "c"), ("c", "d")],
    )


class TestUniformWalks:
    def test_walk_count(self, line_graph):
        walks = uniform_random_walks(line_graph, num_walks=3, walk_length=5, rng=0)
        assert len(walks) == 3 * line_graph.num_nodes

    def test_walk_length_bound(self, line_graph):
        walks = uniform_random_walks(line_graph, num_walks=2, walk_length=7, rng=0)
        assert all(1 <= len(w) <= 7 for w in walks)

    def test_steps_follow_edges(self, line_graph):
        walks = uniform_random_walks(line_graph, num_walks=2, walk_length=10, rng=1)
        for walk in walks:
            for u, v in zip(walk, walk[1:]):
                assert line_graph.has_edge(int(u), int(v))

    def test_isolated_node_stops(self):
        graph = HeteroGraph.from_edges({"a": "X", "b": "X", "i": "X"}, [("a", "b")])
        walks = uniform_random_walks(graph, num_walks=1, walk_length=5, rng=0)
        isolated_walks = [w for w in walks if w[0] == graph.index("i")]
        assert all(len(w) == 1 for w in isolated_walks)

    def test_restricted_start_nodes(self, line_graph):
        walks = uniform_random_walks(
            line_graph, num_walks=2, walk_length=3, rng=0, nodes=[0]
        )
        assert len(walks) == 2
        assert all(w[0] == 0 for w in walks)

    def test_bad_params(self, line_graph):
        with pytest.raises(ValueError):
            uniform_random_walks(line_graph, num_walks=0)
        with pytest.raises(ValueError):
            uniform_random_walks(line_graph, walk_length=0)

    def test_deterministic(self, line_graph):
        a = uniform_random_walks(line_graph, num_walks=2, walk_length=5, rng=3)
        b = uniform_random_walks(line_graph, num_walks=2, walk_length=5, rng=3)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))


class TestNode2VecWalks:
    def test_default_params_match_uniform(self, line_graph):
        """p = q = 1 short-circuits to the uniform walker (same stream)."""
        uniform = uniform_random_walks(line_graph, num_walks=2, walk_length=5, rng=9)
        biased = node2vec_walks(line_graph, num_walks=2, walk_length=5, p=1, q=1, rng=9)
        assert all(np.array_equal(a, b) for a, b in zip(uniform, biased))

    def test_steps_follow_edges(self, line_graph):
        walks = node2vec_walks(
            line_graph, num_walks=2, walk_length=8, p=0.5, q=2.0, rng=2
        )
        for walk in walks:
            for u, v in zip(walk, walk[1:]):
                assert line_graph.has_edge(int(u), int(v))

    def test_high_p_discourages_backtracking(self):
        """On a path graph a huge p makes immediate returns rare."""
        graph = HeteroGraph.from_edges(
            {f"v{i}": "X" for i in range(10)},
            [(f"v{i}", f"v{i + 1}") for i in range(9)],
        )
        returns = total = 0
        walks = node2vec_walks(
            graph, num_walks=20, walk_length=10, p=1000.0, q=1.0, rng=0
        )
        for walk in walks:
            for i in range(2, len(walk)):
                total += 1
                if walk[i] == walk[i - 2]:
                    returns += 1
        # interior path nodes only return when forced (dead ends aside)
        assert returns / total < 0.2

    def test_low_p_encourages_backtracking(self):
        graph = HeteroGraph.from_edges(
            {f"v{i}": "X" for i in range(10)},
            [(f"v{i}", f"v{i + 1}") for i in range(9)],
        )
        returns = total = 0
        walks = node2vec_walks(
            graph, num_walks=20, walk_length=10, p=0.001, q=1.0, rng=0
        )
        for walk in walks:
            for i in range(2, len(walk)):
                total += 1
                if walk[i] == walk[i - 2]:
                    returns += 1
        assert returns / total > 0.8

    def test_bad_pq(self, line_graph):
        with pytest.raises(ValueError):
            node2vec_walks(line_graph, p=0.0)
        with pytest.raises(ValueError):
            node2vec_walks(line_graph, q=-1.0)


class TestFrequencies:
    def test_counts_every_occurrence(self, line_graph):
        walks = [np.array([0, 1, 0]), np.array([2])]
        frequencies = walk_node_frequencies(walks, 4)
        assert frequencies.tolist() == [2.0, 1.0, 1.0, 0.0]
