"""Unit tests for the HeteroGraph data structure."""

import numpy as np
import pytest

from repro.core.graph import HeteroGraph
from repro.core.labels import LabelSet
from repro.exceptions import GraphError


class TestConstruction:
    def test_basic_counts(self, publication_graph):
        assert publication_graph.num_nodes == 7
        assert publication_graph.num_edges == 8

    def test_isolated_nodes_allowed(self):
        g = HeteroGraph.from_edges({"a": "A", "b": "B"}, [])
        assert g.num_nodes == 2
        assert g.num_edges == 0
        assert g.degree(0) == 0

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self loop"):
            HeteroGraph.from_edges({"a": "A"}, [("a", "a")])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError, match="duplicate edge"):
            HeteroGraph.from_edges(
                {"a": "A", "b": "B"}, [("a", "b"), ("b", "a")]
            )

    def test_unknown_node_in_edge_rejected(self):
        with pytest.raises(GraphError, match="unknown node"):
            HeteroGraph.from_edges({"a": "A"}, [("a", "ghost")])

    def test_explicit_labelset(self):
        ls = LabelSet(("X", "Y", "Z"))
        g = HeteroGraph.from_edges({"a": "Y"}, [], labelset=ls)
        assert g.labelset is ls
        assert g.label_of(0) == 1


class TestAccessors:
    def test_index_id_roundtrip(self, publication_graph):
        for node_id in publication_graph.node_ids:
            assert publication_graph.node_id(publication_graph.index(node_id)) == node_id

    def test_unknown_id_raises(self, publication_graph):
        with pytest.raises(GraphError):
            publication_graph.index("ghost")

    def test_node_id_out_of_range_raises(self, publication_graph):
        with pytest.raises(GraphError):
            publication_graph.node_id(99)

    def test_label_name_of(self, publication_graph):
        assert publication_graph.label_name_of("i1") == "I"
        assert publication_graph.label_name_of("p2") == "P"

    def test_degrees(self, publication_graph):
        degrees = publication_graph.degrees()
        p1 = publication_graph.index("p1")
        assert degrees[p1] == 4
        assert degrees.sum() == 2 * publication_graph.num_edges

    def test_labels_readonly(self, publication_graph):
        labels = publication_graph.labels
        with pytest.raises(ValueError):
            labels[0] = 2

    def test_label_counts(self, publication_graph):
        counts = publication_graph.label_counts()
        ls = publication_graph.labelset
        assert counts[ls.index("I")] == 2
        assert counts[ls.index("A")] == 3
        assert counts[ls.index("P")] == 2

    def test_nodes_with_label(self, publication_graph):
        ls = publication_graph.labelset
        papers = publication_graph.nodes_with_label(ls.index("P"))
        names = {publication_graph.node_id(int(i)) for i in papers}
        assert names == {"p1", "p2"}


class TestAdjacency:
    def test_neighbors_sorted_by_label(self, publication_graph):
        g = publication_graph
        p1 = g.index("p1")
        labels = [g.label_of(int(v)) for v in g.neighbors(p1)]
        assert labels == sorted(labels)

    def test_neighbors_with_label(self, publication_graph):
        g = publication_graph
        p1 = g.index("p1")
        authors = g.neighbors_with_label(p1, g.labelset.index("A"))
        assert {g.node_id(int(a)) for a in authors} == {"a1", "a2", "a3"}

    def test_label_degree(self, publication_graph):
        g = publication_graph
        a3 = g.index("a3")
        assert g.label_degree(a3, g.labelset.index("P")) == 2
        assert g.label_degree(a3, g.labelset.index("I")) == 1
        assert g.label_degree(a3, g.labelset.index("A")) == 0

    def test_neighbor_label_runs_cover_all(self, publication_graph):
        g = publication_graph
        for v in range(g.num_nodes):
            run_total = sum(len(run) for _, run in g.neighbor_label_runs(v))
            assert run_total == g.degree(v)

    def test_has_edge_symmetric(self, publication_graph):
        g = publication_graph
        for u, v in g.edges():
            assert g.has_edge(u, v)
            assert g.has_edge(v, u)

    def test_has_edge_negative(self, publication_graph):
        g = publication_graph
        assert not g.has_edge(g.index("i1"), g.index("p1"))

    def test_edges_each_once(self, publication_graph):
        edges = list(publication_graph.edges())
        assert len(edges) == publication_graph.num_edges
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == len(edges)


class TestConversion:
    def test_networkx_roundtrip(self, publication_graph):
        import networkx as nx

        nxg = publication_graph.to_networkx()
        assert isinstance(nxg, nx.Graph)
        back = HeteroGraph.from_networkx(nxg, labelset=publication_graph.labelset)
        assert back.num_nodes == publication_graph.num_nodes
        assert back.num_edges == publication_graph.num_edges
        assert set(map(frozenset, nxg.edges())) == {
            frozenset(
                (publication_graph.node_id(u), publication_graph.node_id(v))
            )
            for u, v in publication_graph.edges()
        }

    def test_from_networkx_missing_label_raises(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_node("a")
        with pytest.raises(GraphError, match="missing"):
            HeteroGraph.from_networkx(nxg)

    def test_from_networkx_directed_rejected(self):
        import networkx as nx

        with pytest.raises(GraphError, match="undirected"):
            HeteroGraph.from_networkx(nx.DiGraph())


class TestSubgraph:
    def test_induced_subgraph(self, publication_graph):
        g = publication_graph
        keep = [g.index(n) for n in ("a1", "a2", "p1", "i1")]
        sub = g.subgraph(keep)
        assert sub.num_nodes == 4
        # edges among kept nodes: i1-a1, i1-a2, a1-p1, a2-p1
        assert sub.num_edges == 4
        assert sub.labelset == g.labelset

    def test_subgraph_out_of_range(self, publication_graph):
        with pytest.raises(GraphError):
            publication_graph.subgraph([99])

    def test_subgraph_empty_edges(self, publication_graph):
        g = publication_graph
        sub = g.subgraph([g.index("i1"), g.index("p2")])
        assert sub.num_edges == 0


class TestComponents:
    def test_single_component(self, publication_graph):
        components = publication_graph.connected_components()
        assert len(components) == 1
        assert len(components[0]) == publication_graph.num_nodes

    def test_multiple_components_sorted_by_size(self):
        g = HeteroGraph.from_edges(
            {"a": "A", "b": "B", "c": "A", "x": "B", "iso": "A"},
            [("a", "b"), ("b", "c"), ("x", "a")],
        )
        components = g.connected_components()
        sizes = [len(c) for c in components]
        assert sizes == [4, 1]

    def test_largest_component(self):
        g = HeteroGraph.from_edges(
            {"a": "A", "b": "B", "iso": "A"}, [("a", "b")]
        )
        largest = g.largest_component()
        assert largest.num_nodes == 2
        assert largest.num_edges == 1

    def test_isolated_nodes_are_singletons(self):
        g = HeteroGraph.from_edges({"a": "A", "b": "B"}, [])
        assert len(g.connected_components()) == 2


class TestMutableHeteroGraph:
    def _graph(self):
        from repro.core.graph import MutableHeteroGraph

        base = HeteroGraph.from_edges(
            {"a": "A", "b": "B", "c": "C", "d": "A"},
            [("a", "b"), ("b", "c"), ("c", "d")],
        )
        return base, MutableHeteroGraph.from_graph(base)

    def test_from_graph_leaves_source_untouched(self):
        base, mutable = self._graph()
        fp = base.fingerprint()
        mutable.add_edge("a", "c")
        assert base.num_edges == 3
        assert not base.has_edge(base.index("a"), base.index("c"))
        assert base.fingerprint() == fp

    def test_no_stale_flat_after_mutation(self):
        # The regression this guards: flat() and fingerprint() are
        # cached, and a mutation must invalidate both — a stale flat
        # adjacency would hand the census a pre-mutation graph.
        _, mutable = self._graph()
        flat_before = mutable.flat()
        fp_before = mutable.fingerprint()
        mutable.add_edge("a", "c")
        flat_after = mutable.flat()
        fp_after = mutable.fingerprint()
        assert fp_after != fp_before
        assert flat_after is not flat_before
        assert len(flat_after.neighbors) == len(flat_before.neighbors) + 2
        mutable.remove_edge("a", "c")
        assert mutable.fingerprint() == fp_before

    def test_add_remove_round_trip_is_identity(self):
        base, mutable = self._graph()
        mutable.add_edge("a", "d")
        mutable.remove_edge("a", "d")
        assert mutable.num_edges == base.num_edges
        for node in range(base.num_nodes):
            assert np.array_equal(mutable.neighbors(node), base.neighbors(node))
            for label in range(len(base.labelset)):
                assert np.array_equal(
                    mutable.neighbors_with_label(node, label),
                    base.neighbors_with_label(node, label),
                )

    def test_neighbor_runs_stay_label_sorted(self):
        _, mutable = self._graph()
        mutable.add_edge("a", "c")
        mutable.add_edge("a", "d")
        a = mutable.index("a")
        neighbors = mutable.neighbors(a)
        labels = [int(mutable.labels[v]) for v in neighbors]
        assert labels == sorted(labels)
        for label in range(len(mutable.labelset)):
            run = mutable.neighbors_with_label(a, label)
            assert np.array_equal(run, np.sort(run))

    def test_validation_errors(self):
        _, mutable = self._graph()
        with pytest.raises(GraphError):
            mutable.add_edge("a", "a")  # self loop
        with pytest.raises(GraphError):
            mutable.add_edge("a", "b")  # duplicate
        with pytest.raises(GraphError):
            mutable.add_edge("a", "nope")  # unknown node
        with pytest.raises(GraphError):
            mutable.remove_edge("a", "c")  # no such edge
        with pytest.raises(GraphError):
            mutable.remove_edge("a", "a")

    def test_snapshot_is_immutable_copy(self):
        from repro.core.graph import MutableHeteroGraph

        _, mutable = self._graph()
        mutable.add_edge("a", "c")
        frozen = mutable.snapshot()
        assert type(frozen) is HeteroGraph
        assert frozen.fingerprint() == mutable.fingerprint()
        mutable.remove_edge("a", "c")
        assert frozen.has_edge(frozen.index("a"), frozen.index("c"))
        assert isinstance(mutable, MutableHeteroGraph)

    def test_pickle_round_trip(self):
        import pickle

        from repro.core.graph import MutableHeteroGraph

        _, mutable = self._graph()
        mutable.add_edge("a", "c")
        clone = pickle.loads(pickle.dumps(mutable))
        assert type(clone) is MutableHeteroGraph
        assert clone.fingerprint() == mutable.fingerprint()
        clone.add_edge("a", "d")  # still mutable after the round trip
        assert clone.num_edges == mutable.num_edges + 1
