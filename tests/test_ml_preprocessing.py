"""Unit tests for scaling, count transforms, and splitting."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.ml.preprocessing import (
    StandardScaler,
    kfold_indices,
    log1p_counts,
    train_test_split,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_no_nan(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        assert np.allclose(Z[:, 0], 0.0)

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_feature_mismatch_raises(self):
        scaler = StandardScaler().fit(np.ones((5, 3)))
        with pytest.raises(ValueError):
            scaler.transform(np.ones((5, 2)))

    def test_without_mean_or_std(self):
        X = np.array([[1.0, 10.0], [3.0, 30.0]])
        no_mean = StandardScaler(with_mean=False).fit_transform(X)
        assert np.all(no_mean >= 0)
        no_std = StandardScaler(with_std=False).fit_transform(X)
        assert np.allclose(no_std.mean(axis=0), 0.0)


class TestLog1pCounts:
    def test_values(self):
        X = np.array([[0.0, 1.0], [3.0, 7.0]])
        assert np.allclose(log1p_counts(X), np.log1p(X))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            log1p_counts(np.array([[-1.0]]))


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(-1, 1)
        X_train, X_test = train_test_split(X, test_size=0.25, rng=0)
        assert len(X_test) == 25
        assert len(X_train) == 75

    def test_partition_is_exact(self):
        X = np.arange(40)
        X_train, X_test = train_test_split(X, test_size=0.3, rng=1)
        assert sorted(np.concatenate([X_train, X_test])) == list(range(40))

    def test_multiple_arrays_aligned(self):
        X = np.arange(50).reshape(-1, 1)
        y = np.arange(50) * 10
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2, rng=2)
        assert np.array_equal(X_train.ravel() * 10, y_train)
        assert np.array_equal(X_test.ravel() * 10, y_test)

    def test_deterministic_with_seed(self):
        X = np.arange(30)
        a = train_test_split(X, test_size=0.5, rng=7)
        b = train_test_split(X, test_size=0.5, rng=7)
        assert np.array_equal(a[0], b[0])

    def test_stratified_preserves_proportions(self):
        y = np.array(["a"] * 60 + ["b"] * 20)
        X = np.arange(80)
        _, _, y_train, y_test = train_test_split(X, y, test_size=0.25, rng=3, stratify=y)
        assert np.sum(y_test == "a") == 15
        assert np.sum(y_test == "b") == 5

    def test_stratified_keeps_every_class_in_train(self):
        y = np.array(["a"] * 10 + ["b"] * 2)
        X = np.arange(12)
        for seed in range(5):
            _, _, y_train, _ = train_test_split(X, y, test_size=0.5, rng=seed, stratify=y)
            assert set(y_train) == {"a", "b"}

    def test_bad_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(10), test_size=0.0)
        with pytest.raises(ValueError):
            train_test_split(np.arange(10), test_size=1.0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(10), np.arange(5), test_size=0.5)

    def test_no_arrays_raises(self):
        with pytest.raises(ValueError):
            train_test_split(test_size=0.5)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(1), test_size=0.5)


class TestKFold:
    def test_partitions_cover_everything(self):
        folds = list(kfold_indices(20, 4, rng=0))
        assert len(folds) == 4
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test) == list(range(20))

    def test_train_test_disjoint(self):
        for train, test in kfold_indices(15, 3, rng=1):
            assert set(train).isdisjoint(test)
            assert len(train) + len(test) == 15

    def test_bad_folds(self):
        with pytest.raises(ValueError):
            list(kfold_indices(10, 1))
        with pytest.raises(ValueError):
            list(kfold_indices(2, 5))
